"""Figure 8, right chart — Neurosys (experiment F8-NEU).

Paper observation (Section 6.2): the protocol layer's *command* collective
in front of each of Neurosys's six data collectives dominates at small
problem sizes — up to 160% overhead at 16×16 — and decays as per-iteration
computation grows: 85% (32×32), 34% (64×64), 2.7% (128×128).  The decay of
the piggyback/command overhead with problem size is the asserted shape.
"""

import pytest

from repro.apps import neurosys
from repro.apps.neurosys import NeurosysParams
from repro.apps.workloads import WorkloadPoint
from repro.bench import measure_point, verify_variants_agree
from repro.runtime.config import Variant

from benchmarks.conftest import bench_config

SIZES = {
    "16x16-scaled": NeurosysParams(grid=4, iterations=40),
    "32x32-scaled": NeurosysParams(grid=8, iterations=40),
    "64x64-scaled": NeurosysParams(grid=16, iterations=40),
    "128x128-scaled": NeurosysParams(grid=32, iterations=40),
}


def _run(params: NeurosysParams, variant: Variant) -> None:
    from dataclasses import replace

    from repro.api import Session

    cfg = replace(bench_config(), variant=variant)
    Session().run("neurosys", cfg, params=params)


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.parametrize("variant", list(Variant))
def test_fig8_neurosys_bar(benchmark, size, variant):
    benchmark.group = f"fig8-neurosys-{size}"
    benchmark.name = variant.value
    benchmark.pedantic(_run, args=(SIZES[size], variant), rounds=1, iterations=1)


def test_neurosys_command_overhead_decays_with_size():
    """The 160% → 2.7% decay curve, at simulator scale."""
    cfg = bench_config()
    overheads = {}
    for grid in (4, 16, 32):
        point = WorkloadPoint(
            "neurosys", f"{grid}x{grid}", "-",
            NeurosysParams(grid=grid, iterations=25),
        )
        result = measure_point(
            neurosys.SPEC, point, cfg,
            variants=(Variant.UNMODIFIED, Variant.PIGGYBACK),
            repeats=2,
        )
        assert verify_variants_agree(result)
        overheads[grid] = result.overheads()[Variant.PIGGYBACK]
    assert overheads[4] > overheads[16] > overheads[32], (
        f"command-collective overhead should decay with size: {overheads}"
    )


def test_neurosys_message_count_doubles_under_layer():
    """Mechanism check: the layer sends a command collective before each
    data collective, so delivered message counts roughly double."""
    from dataclasses import replace

    from repro.api import Session

    session = Session()
    params = NeurosysParams(grid=4, iterations=10)
    cfg_piggy = replace(bench_config(), variant=Variant.PIGGYBACK)
    cfg_plain = replace(bench_config(), variant=Variant.UNMODIFIED)
    with_layer = session.run("neurosys", cfg_piggy, params=params)
    plain = session.run("neurosys", cfg_plain, params=params)
    ratio = with_layer.network_messages / plain.network_messages
    assert ratio >= 1.7, f"expected ~2x messages, got {ratio:.2f}x"
