"""Experiment A-CKPT: state-saving cost versus state size.

The paper's dense-CG observation — checkpoint cost is dominated by the
application-state volume — reduced to its mechanism: serialise/deserialise
cost and stored bytes as functions of payload size, for the framed-pickle
checkpoint format and the managed heap.

The second half measures the tiered storage engine (:mod:`repro.ckpt`):
full pickle snapshots versus incremental (content-addressed delta) versus
incremental+compressed generations, on synthetic evolving state and on the
paper's Laplace and dense-CG applications, with bytes written reported per
generation.
"""

import numpy as np
import pytest

from repro.apps.workloads import SCALED_CKPT_CHUNK_SIZE, SCALED_CKPT_CODEC
from repro.runtime.config import RunConfig
from repro.runtime.driver import run_with_recovery
from repro.statesave.format import CheckpointData
from repro.statesave.heap import ManagedHeap
from repro.statesave.storage import Storage
from repro.util.serialization import dumps_framed, loads_framed

SIZES = {"64KB": 8_192, "1MB": 131_072, "8MB": 1_048_576}  # float64 counts


def make_ckpt(n_floats: int) -> CheckpointData:
    return CheckpointData(
        rank=0,
        epoch=1,
        protocol={"epoch": 1},
        app_state={"grid": np.arange(n_floats, dtype=np.float64)},
    )


@pytest.mark.parametrize("label", list(SIZES))
def test_serialize_cost_vs_size(benchmark, label):
    benchmark.group = "ckpt-serialize"
    data = make_ckpt(SIZES[label])

    blob = benchmark(dumps_framed, data)
    assert len(blob) >= SIZES[label] * 8


@pytest.mark.parametrize("label", list(SIZES))
def test_restore_cost_vs_size(benchmark, label):
    benchmark.group = "ckpt-restore"
    blob = dumps_framed(make_ckpt(SIZES[label]))

    data = benchmark(loads_framed, blob)
    assert data.app_state["grid"].shape[0] == SIZES[label]


@pytest.mark.parametrize("backend", ["memory", "disk"])
def test_storage_write_cost(benchmark, backend, tmp_path):
    benchmark.group = "ckpt-storage"
    storage = Storage(None if backend == "memory" else str(tmp_path))
    data = make_ckpt(131_072)  # 1 MB

    def run():
        storage.write_state(0, 1, data)

    benchmark(run)
    assert storage.bytes_written > 0


def test_heap_snapshot_cost(benchmark):
    benchmark.group = "ckpt-heap"
    heap = ManagedHeap()
    for i in range(64):
        heap.alloc_array(f"block{i}", (4096,))

    def run():
        return dumps_framed(heap.snapshot())

    blob = benchmark(run)
    assert len(blob) > 64 * 4096 * 8


def test_cost_scales_linearly():
    """Sanity: serialise time grows roughly linearly with payload size (no
    quadratic copies hiding in the checkpoint path)."""
    import time

    times = {}
    for label, n in SIZES.items():
        data = make_ckpt(n)
        t0 = time.perf_counter()
        for _ in range(3):
            dumps_framed(data)
        times[label] = (time.perf_counter() - t0) / 3
    ratio = times["8MB"] / max(times["64KB"], 1e-9)
    assert ratio < 400, f"8MB/64KB serialise ratio {ratio:.0f} looks superlinear"


# --------------------------------------------------------------------- #
# Experiment B-CKPT: the tiered engine — full vs incremental vs compressed.
# --------------------------------------------------------------------- #

#: The three storage strategies under comparison; chunk size is small
#: relative to the scaled app states so delta granularity is meaningful.
ENGINE_CONFIGS = {
    "full-pickle": dict(incremental=False, codec="none"),
    "incremental": dict(incremental=True, codec="none"),
    "incremental+zlib": dict(incremental=True, codec=SCALED_CKPT_CODEC),
}

ENGINE_CHUNK = SCALED_CKPT_CHUNK_SIZE


def evolving_state(step: int, n_const: int = 65_536, n_hot: int = 4_096):
    """A realistic generation series: a large constant block (the dense-CG
    matrix analogue) plus a small mutating block (the solution vectors)."""
    constant = np.arange(n_const, dtype=np.float64)  # same bytes every step
    hot = np.full(n_hot, float(step))
    return CheckpointData(
        rank=0, epoch=step, protocol={"epoch": step},
        app_state={"matrix": constant, "vectors": hot},
    )


@pytest.mark.parametrize("strategy", list(ENGINE_CONFIGS))
def test_engine_write_cost(benchmark, strategy):
    """Wall cost of saving one more generation under each strategy."""
    benchmark.group = "ckpt-engine-write"
    storage = Storage(None, chunk_size=ENGINE_CHUNK, **ENGINE_CONFIGS[strategy])
    step = 0
    storage.write_state(0, step, evolving_state(step))

    def run():
        nonlocal step
        step += 1
        storage.write_state(0, step, evolving_state(step))

    benchmark(run)
    benchmark.extra_info["bytes_per_generation"] = (
        storage.bytes_written // max(1, len(storage.store.history))
    )


def test_engine_bytes_full_vs_incremental_vs_compressed():
    """Ten generations of evolving state: the delta engine must beat the
    flat store, and compression must beat delta alone."""
    totals = {}
    for strategy, knobs in ENGINE_CONFIGS.items():
        storage = Storage(None, chunk_size=ENGINE_CHUNK, **knobs)
        for step in range(1, 11):
            storage.write_state(0, step, evolving_state(step))
        totals[strategy] = storage.bytes_written
        assert storage.read_state(0, 10).app_state["vectors"][0] == 10.0
    assert totals["incremental"] < totals["full-pickle"] / 3
    assert totals["incremental+zlib"] < totals["incremental"]


def _per_generation_state_bytes(storage: Storage) -> dict[int, int]:
    """Bytes written per checkpoint generation, summed over ranks."""
    per_gen: dict[int, int] = {}
    for manifest in storage.store.history:
        if manifest.stream.endswith("/state"):
            per_gen[manifest.generation] = (
                per_gen.get(manifest.generation, 0) + manifest.stored_bytes
            )
    return dict(sorted(per_gen.items()))


def _run_paper_app(app_name: str, storage: Storage):
    from repro.apps import dense_cg, laplace

    if app_name == "laplace":
        app = laplace.build(laplace.LaplaceParams(n=32, iterations=100))
    else:
        app = dense_cg.build(dense_cg.CGParams(n=48, iterations=60))
    config = RunConfig(
        nprocs=4, seed=7, checkpoint_interval=0.0025, detector_timeout=0.05,
        ckpt_chunk_size=ENGINE_CHUNK,
    )
    return run_with_recovery(app, config, storage=storage)


@pytest.mark.parametrize("app_name", ["laplace", "dense_cg"])
def test_paper_apps_incremental_compressed_beats_full(app_name):
    """Acceptance shape: on the paper's applications, incremental+compressed
    generations write measurably fewer bytes than full pickle snapshots.
    The simulation itself is storage-agnostic, so all three runs take
    identical checkpoints and the byte counts are directly comparable."""
    bytes_written = {}
    per_generation = {}
    outcomes = {}
    for strategy, knobs in ENGINE_CONFIGS.items():
        storage = Storage(None, chunk_size=ENGINE_CHUNK, **knobs)
        outcome = _run_paper_app(app_name, storage)
        assert outcome.checkpoints_committed >= 1
        bytes_written[strategy] = outcome.storage_bytes_written
        per_generation[strategy] = _per_generation_state_bytes(storage)
        outcomes[strategy] = outcome.results
    # Storage strategy must never change the computation.
    assert outcomes["full-pickle"] == outcomes["incremental+zlib"]
    # Every strategy saw the same generations (the per-generation report).
    assert (
        per_generation["incremental"].keys()
        == per_generation["full-pickle"].keys() != set()
    )
    full = bytes_written["full-pickle"]
    packed = bytes_written["incremental+zlib"]
    assert bytes_written["incremental"] <= full
    assert packed < 0.9 * full, (
        f"{app_name}: incremental+zlib wrote {packed} vs full {full} "
        f"({packed / full:.0%}) — not measurably fewer"
    )


def test_dense_cg_constant_matrix_dedupes():
    """The CG matrix block never changes after generation 1: the delta
    engine must reuse chunks across generations where the flat store
    rewrites the full state every wave."""
    storage = Storage(None, chunk_size=ENGINE_CHUNK, incremental=True)
    _run_paper_app("dense_cg", storage)
    assert storage.store.chunks_reused > 0
    per_gen = _per_generation_state_bytes(storage)
    first = min(per_gen)
    later = [g for g in per_gen if g != first]
    assert later, "expected more than one checkpoint generation"
    # Later generations write less than the first (which had no prior
    # generation to dedupe against).
    assert sum(per_gen[g] for g in later) / len(later) < per_gen[first]
