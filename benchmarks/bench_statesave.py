"""Experiment A-CKPT: state-saving cost versus state size.

The paper's dense-CG observation — checkpoint cost is dominated by the
application-state volume — reduced to its mechanism: serialise/deserialise
cost and stored bytes as functions of payload size, for the framed-pickle
checkpoint format and the managed heap.
"""

import numpy as np
import pytest

from repro.statesave.format import CheckpointData
from repro.statesave.heap import ManagedHeap
from repro.statesave.storage import Storage
from repro.util.serialization import dumps_framed, loads_framed

SIZES = {"64KB": 8_192, "1MB": 131_072, "8MB": 1_048_576}  # float64 counts


def make_ckpt(n_floats: int) -> CheckpointData:
    return CheckpointData(
        rank=0,
        epoch=1,
        protocol={"epoch": 1},
        app_state={"grid": np.arange(n_floats, dtype=np.float64)},
    )


@pytest.mark.parametrize("label", list(SIZES))
def test_serialize_cost_vs_size(benchmark, label):
    benchmark.group = "ckpt-serialize"
    data = make_ckpt(SIZES[label])

    blob = benchmark(dumps_framed, data)
    assert len(blob) >= SIZES[label] * 8


@pytest.mark.parametrize("label", list(SIZES))
def test_restore_cost_vs_size(benchmark, label):
    benchmark.group = "ckpt-restore"
    blob = dumps_framed(make_ckpt(SIZES[label]))

    data = benchmark(loads_framed, blob)
    assert data.app_state["grid"].shape[0] == SIZES[label]


@pytest.mark.parametrize("backend", ["memory", "disk"])
def test_storage_write_cost(benchmark, backend, tmp_path):
    benchmark.group = "ckpt-storage"
    storage = Storage(None if backend == "memory" else str(tmp_path))
    data = make_ckpt(131_072)  # 1 MB

    def run():
        storage.write_state(0, 1, data)

    benchmark(run)
    assert storage.bytes_written > 0


def test_heap_snapshot_cost(benchmark):
    benchmark.group = "ckpt-heap"
    heap = ManagedHeap()
    for i in range(64):
        heap.alloc_array(f"block{i}", (4096,))

    def run():
        return dumps_framed(heap.snapshot())

    blob = benchmark(run)
    assert len(blob) > 64 * 4096 * 8


def test_cost_scales_linearly():
    """Sanity: serialise time grows roughly linearly with payload size (no
    quadratic copies hiding in the checkpoint path)."""
    import time

    times = {}
    for label, n in SIZES.items():
        data = make_ckpt(n)
        t0 = time.perf_counter()
        for _ in range(3):
            dumps_framed(data)
        times[label] = (time.perf_counter() - t0) / 3
    ratio = times["8MB"] / max(times["64KB"], 1e-9)
    assert ratio < 400, f"8MB/64KB serialise ratio {ratio:.0f} looks superlinear"
