"""Experiment A-PROT: protocol micro-costs.

Per-operation throughput of the pieces that run on every message:
classification, counter bookkeeping, match logging, and the late-message
log — the constant factors behind the layer's per-message overhead —
plus the simulator's scheduler baton handoff, which sits under every
simulated MPI call, and the :mod:`repro.trace` emission path (off, the
single attribute read every hot path pays; on, the full ring append).
"""

import os

import pytest

from repro.farm.bench import BenchRecorder
from repro.farm.engine import FarmStats
from repro.protocol.classify import classify_by_color, classify_by_epoch
from repro.protocol.logs import LateMessageLog, LateRecord, MatchLog, MatchRecord
from repro.protocol.state import ProtocolState
from repro.simmpi import SUM, run_simple
from repro.simmpi.simulator import SimConfig, Simulator
from repro.trace import TraceRecorder

N = 5000


def test_classification_by_epoch(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_epoch(i % 3, 1).value != ""
        return out

    assert benchmark(run) == N


def test_classification_by_color(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_color(i & 1, 4, bool(i & 2)).value != ""
        return out

    assert benchmark(run) == N


def test_send_bookkeeping(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=8)
        for i in range(N):
            state.note_send(1 + (i % 7))
        return state.next_message_id

    assert benchmark(run) == N


def test_match_log_append(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = MatchLog()
        for i in range(N):
            log.append(MatchRecord(source=i % 4, tag=1, message_id=i, was_late=False))
        return len(log)

    assert benchmark(run) == N


def test_late_log_append_and_consume(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = LateMessageLog()
        for i in range(1000):
            log.append(LateRecord(source=i % 4, tag=1, message_id=i, payload=i))
        consumed = 0
        for i in range(1000):
            if log.take_by_id(i % 4, i) is not None:
                consumed += 1
        return consumed

    assert benchmark(run) == 1000


def test_epoch_transition(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=16)
        for _ in range(200):
            state.note_send(1)
            state.epoch_transition()
        return state.epoch

    assert benchmark(run) == 200


def test_snapshot_cost(benchmark):
    benchmark.group = "protocol-micro"
    state = ProtocolState(rank=0, nprocs=16)

    def run():
        return state.snapshot_for_checkpoint()

    snap = benchmark(run)
    assert snap.rank == 0


def test_scheduler_baton_handoff(benchmark):
    """Scheduler hot path: baton handoffs with 8 parked rank threads.

    Every simulated MPI call hands the baton rank → scheduler → rank.
    With per-proc events a handoff wakes exactly the target thread; the
    previous shared-condition design ``notify_all``-ed every handoff,
    waking all nprocs parked threads per MPI call (O(nprocs) spurious
    wakeups), which dominated simulator wall time at higher rank counts.
    """
    benchmark.group = "protocol-micro"

    def ring(ctx):
        peer = (ctx.rank + 1) % ctx.size
        for i in range(60):
            ctx.comm.send(i, peer, tag=1)
            ctx.comm.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        return 1

    def run():
        return sum(run_simple(ring, nprocs=8, seed=3).results)

    assert benchmark(run) == 8


# --------------------------------------------------------------------- #
# Trace-emission overhead (the tentpole's cost envelope).
#
# The two simulator benchmarks below differ only in whether a recorder is
# armed: tracing off must be indistinguishable from the pre-trace
# baseline (every emission site is one attribute read + None check), and
# tracing on must stay within ~10% (one dataclass append per event into a
# bounded deque).  The bench-smoke JSON artifact exhibits the ratio.
# --------------------------------------------------------------------- #


def _ring(ctx):
    peer = (ctx.rank + 1) % ctx.size
    for i in range(60):
        ctx.comm.send(i, peer, tag=1)
        ctx.comm.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
    return 1


def test_sim_run_tracing_off(benchmark):
    benchmark.group = "trace-overhead"

    def run():
        sim = Simulator(SimConfig(nprocs=8, seed=3), _ring)
        return sum(sim.run().results)

    assert benchmark(run) == 8


def test_sim_run_tracing_on(benchmark):
    benchmark.group = "trace-overhead"

    def run():
        sim = Simulator(
            SimConfig(nprocs=8, seed=3), _ring, tracer=TraceRecorder()
        )
        return sum(sim.run().results)

    assert benchmark(run) == 8


def test_trace_emit_throughput(benchmark):
    """Raw cost of one emit: timestamp + dataclass + deque append."""
    benchmark.group = "trace-overhead"

    def run():
        recorder = TraceRecorder(capacity=1024)
        for i in range(N):
            recorder.emit("sched", "grant", t=float(i), rank=i & 7)
        return len(recorder)

    assert benchmark(run) == 1024


# --------------------------------------------------------------------- #
# Rank scaling: threads core vs cooperative core.
#
# The same seeded workload under both execution cores, across rank
# counts.  Both cores run identical scheduling decisions (round_robin,
# zero network jitter: no RNG draws anywhere), so the measured gap is
# purely the control-transfer mechanism — an OS baton handoff (two event
# waits and a context switch, ~25us) versus a generator resume (~1us).
# The threaded core is excluded at 1024 ranks: a thread per rank at that
# scale exhausts default thread/stack budgets on small CI runners, which
# is exactly the scaling wall the cooperative core removes.
#
# Medians land in ``_SCALING_MEDIANS`` and, when ``RANK_SCALING_BENCH``
# names a trajectory file, ``test_rank_scaling_record`` stamps them into
# the BENCH trajectory (labels ``rank_scaling.<workload>.n<N>.<core>``,
# coop records carrying ``speedup_vs_threads``).
# --------------------------------------------------------------------- #

RING_ITERS = 10

#: ``(workload, nprocs, core) -> median seconds`` from this process's run.
_SCALING_MEDIANS: dict = {}


def _co_scaling_ring(ctx):
    peer = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    for i in range(RING_ITERS):
        yield from ctx.comm.co_send(i, peer, tag=1)
        yield from ctx.comm.co_recv(source=left, tag=1)
    return 1


def _co_scaling_allreduce(ctx):
    total = 0
    for _ in range(4):
        total = yield from ctx.comm.co_allreduce(1, SUM)
    return total


_SCALING_WORKLOADS = {
    "ring": (_co_scaling_ring, lambda n: n),
    "allreduce": (_co_scaling_allreduce, lambda n: n * n),
}

_SCALING_CELLS = [
    (8, "threads"), (8, "coop"),
    (64, "threads"), (64, "coop"),
    (256, "threads"), (256, "coop"),
    (1024, "coop"),
]


def _scaling_config(nprocs, core):
    # round_robin + zero jitter keeps numpy out of both cores' hot loops,
    # so the comparison isolates the handoff mechanism itself.
    return SimConfig(
        nprocs=nprocs, seed=3, sim_core=core,
        sched_policy="round_robin", jitter=0.0,
    )


@pytest.mark.parametrize("nprocs,core", _SCALING_CELLS)
@pytest.mark.parametrize("workload", sorted(_SCALING_WORKLOADS))
def test_rank_scaling(benchmark, workload, nprocs, core):
    benchmark.group = f"rank-scaling-{workload}"
    main, expected = _SCALING_WORKLOADS[workload]

    def run():
        sim = Simulator(_scaling_config(nprocs, core), main)
        return sum(sim.run().results)

    assert benchmark(run) == expected(nprocs)
    _SCALING_MEDIANS[(workload, nprocs, core)] = benchmark.stats.stats.median


def test_rank_scaling_record():
    """Stamp the rank-scaling medians into the BENCH trajectory.

    Opt-in (``RANK_SCALING_BENCH=<path>``): a plain test run must not
    grow the checked-in trajectory.  Runs after the parametrized cells
    above (pytest executes a module in definition order), so the medians
    dict is full whenever the benchmarks actually ran.
    """
    path = os.environ.get("RANK_SCALING_BENCH")
    if not path:
        pytest.skip("set RANK_SCALING_BENCH=<trajectory path> to record")
    if not _SCALING_MEDIANS:
        pytest.skip("no rank-scaling samples collected in this run")
    recorder = BenchRecorder(path)
    for (workload, nprocs, core), median in sorted(_SCALING_MEDIANS.items()):
        extra = {"workload": workload, "ranks": nprocs, "sim_core": core}
        threads_median = _SCALING_MEDIANS.get((workload, nprocs, "threads"))
        if core == "coop" and threads_median:
            extra["speedup_vs_threads"] = round(threads_median / median, 3)
        recorder.record(
            f"rank_scaling.{workload}.n{nprocs}.{core}",
            FarmStats(cells=1, misses=1, executed=1, wall_seconds=median),
            extra=extra,
        )
    # Regression floor for the tentpole's headline number: a quiet runner
    # measures ~5.5-5.8x at 64 ranks; 3x means the coop win regressed.
    ring = _SCALING_MEDIANS
    if ("ring", 64, "threads") in ring and ("ring", 64, "coop") in ring:
        speedup = ring[("ring", 64, "threads")] / ring[("ring", 64, "coop")]
        assert speedup >= 3.0, f"coop speedup at 64 ranks regressed: {speedup:.2f}x"
