"""Experiment A-PROT: protocol micro-costs.

Per-operation throughput of the pieces that run on every message:
classification, counter bookkeeping, match logging, and the late-message
log — the constant factors behind the layer's per-message overhead —
plus the simulator's scheduler baton handoff, which sits under every
simulated MPI call.
"""

from repro.protocol.classify import classify_by_color, classify_by_epoch
from repro.protocol.logs import LateMessageLog, LateRecord, MatchLog, MatchRecord
from repro.protocol.state import ProtocolState
from repro.simmpi import run_simple

N = 5000


def test_classification_by_epoch(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_epoch(i % 3, 1).value != ""
        return out

    assert benchmark(run) == N


def test_classification_by_color(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_color(i & 1, 4, bool(i & 2)).value != ""
        return out

    assert benchmark(run) == N


def test_send_bookkeeping(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=8)
        for i in range(N):
            state.note_send(1 + (i % 7))
        return state.next_message_id

    assert benchmark(run) == N


def test_match_log_append(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = MatchLog()
        for i in range(N):
            log.append(MatchRecord(source=i % 4, tag=1, message_id=i, was_late=False))
        return len(log)

    assert benchmark(run) == N


def test_late_log_append_and_consume(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = LateMessageLog()
        for i in range(1000):
            log.append(LateRecord(source=i % 4, tag=1, message_id=i, payload=i))
        consumed = 0
        for i in range(1000):
            if log.take_by_id(i % 4, i) is not None:
                consumed += 1
        return consumed

    assert benchmark(run) == 1000


def test_epoch_transition(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=16)
        for _ in range(200):
            state.note_send(1)
            state.epoch_transition()
        return state.epoch

    assert benchmark(run) == 200


def test_snapshot_cost(benchmark):
    benchmark.group = "protocol-micro"
    state = ProtocolState(rank=0, nprocs=16)

    def run():
        return state.snapshot_for_checkpoint()

    snap = benchmark(run)
    assert snap.rank == 0


def test_scheduler_baton_handoff(benchmark):
    """Scheduler hot path: baton handoffs with 8 parked rank threads.

    Every simulated MPI call hands the baton rank → scheduler → rank.
    With per-proc events a handoff wakes exactly the target thread; the
    previous shared-condition design ``notify_all``-ed every handoff,
    waking all nprocs parked threads per MPI call (O(nprocs) spurious
    wakeups), which dominated simulator wall time at higher rank counts.
    """
    benchmark.group = "protocol-micro"

    def ring(ctx):
        peer = (ctx.rank + 1) % ctx.size
        for i in range(60):
            ctx.comm.send(i, peer, tag=1)
            ctx.comm.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        return 1

    def run():
        return sum(run_simple(ring, nprocs=8, seed=3).results)

    assert benchmark(run) == 8
