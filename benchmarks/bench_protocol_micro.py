"""Experiment A-PROT: protocol micro-costs.

Per-operation throughput of the pieces that run on every message:
classification, counter bookkeeping, match logging, and the late-message
log — the constant factors behind the layer's per-message overhead —
plus the simulator's scheduler baton handoff, which sits under every
simulated MPI call, and the :mod:`repro.trace` emission path (off, the
single attribute read every hot path pays; on, the full ring append).
"""

from repro.protocol.classify import classify_by_color, classify_by_epoch
from repro.protocol.logs import LateMessageLog, LateRecord, MatchLog, MatchRecord
from repro.protocol.state import ProtocolState
from repro.simmpi import run_simple
from repro.simmpi.simulator import SimConfig, Simulator
from repro.trace import TraceRecorder

N = 5000


def test_classification_by_epoch(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_epoch(i % 3, 1).value != ""
        return out

    assert benchmark(run) == N


def test_classification_by_color(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_color(i & 1, 4, bool(i & 2)).value != ""
        return out

    assert benchmark(run) == N


def test_send_bookkeeping(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=8)
        for i in range(N):
            state.note_send(1 + (i % 7))
        return state.next_message_id

    assert benchmark(run) == N


def test_match_log_append(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = MatchLog()
        for i in range(N):
            log.append(MatchRecord(source=i % 4, tag=1, message_id=i, was_late=False))
        return len(log)

    assert benchmark(run) == N


def test_late_log_append_and_consume(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = LateMessageLog()
        for i in range(1000):
            log.append(LateRecord(source=i % 4, tag=1, message_id=i, payload=i))
        consumed = 0
        for i in range(1000):
            if log.take_by_id(i % 4, i) is not None:
                consumed += 1
        return consumed

    assert benchmark(run) == 1000


def test_epoch_transition(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=16)
        for _ in range(200):
            state.note_send(1)
            state.epoch_transition()
        return state.epoch

    assert benchmark(run) == 200


def test_snapshot_cost(benchmark):
    benchmark.group = "protocol-micro"
    state = ProtocolState(rank=0, nprocs=16)

    def run():
        return state.snapshot_for_checkpoint()

    snap = benchmark(run)
    assert snap.rank == 0


def test_scheduler_baton_handoff(benchmark):
    """Scheduler hot path: baton handoffs with 8 parked rank threads.

    Every simulated MPI call hands the baton rank → scheduler → rank.
    With per-proc events a handoff wakes exactly the target thread; the
    previous shared-condition design ``notify_all``-ed every handoff,
    waking all nprocs parked threads per MPI call (O(nprocs) spurious
    wakeups), which dominated simulator wall time at higher rank counts.
    """
    benchmark.group = "protocol-micro"

    def ring(ctx):
        peer = (ctx.rank + 1) % ctx.size
        for i in range(60):
            ctx.comm.send(i, peer, tag=1)
            ctx.comm.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        return 1

    def run():
        return sum(run_simple(ring, nprocs=8, seed=3).results)

    assert benchmark(run) == 8


# --------------------------------------------------------------------- #
# Trace-emission overhead (the tentpole's cost envelope).
#
# The two simulator benchmarks below differ only in whether a recorder is
# armed: tracing off must be indistinguishable from the pre-trace
# baseline (every emission site is one attribute read + None check), and
# tracing on must stay within ~10% (one dataclass append per event into a
# bounded deque).  The bench-smoke JSON artifact exhibits the ratio.
# --------------------------------------------------------------------- #


def _ring(ctx):
    peer = (ctx.rank + 1) % ctx.size
    for i in range(60):
        ctx.comm.send(i, peer, tag=1)
        ctx.comm.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
    return 1


def test_sim_run_tracing_off(benchmark):
    benchmark.group = "trace-overhead"

    def run():
        sim = Simulator(SimConfig(nprocs=8, seed=3), _ring)
        return sum(sim.run().results)

    assert benchmark(run) == 8


def test_sim_run_tracing_on(benchmark):
    benchmark.group = "trace-overhead"

    def run():
        sim = Simulator(
            SimConfig(nprocs=8, seed=3), _ring, tracer=TraceRecorder()
        )
        return sum(sim.run().results)

    assert benchmark(run) == 8


def test_trace_emit_throughput(benchmark):
    """Raw cost of one emit: timestamp + dataclass + deque append."""
    benchmark.group = "trace-overhead"

    def run():
        recorder = TraceRecorder(capacity=1024)
        for i in range(N):
            recorder.emit("sched", "grant", t=float(i), rank=i & 7)
        return len(recorder)

    assert benchmark(run) == 1024
