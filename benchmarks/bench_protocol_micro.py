"""Experiment A-PROT: protocol micro-costs.

Per-operation throughput of the pieces that run on every message:
classification, counter bookkeeping, match logging, and the late-message
log — the constant factors behind the layer's per-message overhead.
"""

import pytest

from repro.protocol.classify import classify_by_color, classify_by_epoch
from repro.protocol.logs import LateMessageLog, LateRecord, MatchLog, MatchRecord
from repro.protocol.state import ProtocolState

N = 5000


def test_classification_by_epoch(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_epoch(i % 3, 1).value != ""
        return out

    assert benchmark(run) == N


def test_classification_by_color(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        out = 0
        for i in range(N):
            out += classify_by_color(i & 1, 4, bool(i & 2)).value != ""
        return out

    assert benchmark(run) == N


def test_send_bookkeeping(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=8)
        for i in range(N):
            state.note_send(1 + (i % 7))
        return state.next_message_id

    assert benchmark(run) == N


def test_match_log_append(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = MatchLog()
        for i in range(N):
            log.append(MatchRecord(source=i % 4, tag=1, message_id=i, was_late=False))
        return len(log)

    assert benchmark(run) == N


def test_late_log_append_and_consume(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        log = LateMessageLog()
        for i in range(1000):
            log.append(LateRecord(source=i % 4, tag=1, message_id=i, payload=i))
        consumed = 0
        for i in range(1000):
            if log.take_by_id(i % 4, i) is not None:
                consumed += 1
        return consumed

    assert benchmark(run) == 1000


def test_epoch_transition(benchmark):
    benchmark.group = "protocol-micro"

    def run():
        state = ProtocolState(rank=0, nprocs=16)
        for _ in range(200):
            state.note_send(1)
            state.epoch_transition()
        return state.epoch

    assert benchmark(run) == 200


def test_snapshot_cost(benchmark):
    benchmark.group = "protocol-micro"
    state = ProtocolState(rank=0, nprocs=16)

    def run():
        return state.snapshot_for_checkpoint()

    snap = benchmark(run)
    assert snap.rank == 0
