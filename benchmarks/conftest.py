"""Shared helpers for the benchmark suite.

Every ``bench_fig8_*`` module measures one chart of the paper's Figure 8
with the four build variants of Section 6.2.  Benchmark-suite sizes are
scaled below the EXPERIMENTS.md sizes so ``pytest benchmarks/
--benchmark-only`` completes quickly; the shapes (who is more expensive,
how overhead moves with problem size) are asserted, not absolute times.
"""

import pytest

from repro.apps.workloads import DEFAULT_CHECKPOINT_INTERVAL
from repro.runtime.config import RunConfig


def bench_config(nprocs: int = 4, seed: int = 7) -> RunConfig:
    return RunConfig(
        nprocs=nprocs,
        seed=seed,
        checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
        detector_timeout=0.05,
    )


@pytest.fixture(scope="session")
def base_config():
    return bench_config()
