"""Figure 8, middle chart — Laplace Solver (experiment F8-LAP).

Paper observation (Section 6.2): total checkpointing overhead stays small
(≤ 2.1% on their testbed) because the application state is small and the
halo-row messages are large relative to the piggybacked word.  At simulator
scale the absolute percentages are larger (everything is Python), so the
asserted shape is *relative*: Laplace's full-checkpoint overhead must be a
small multiple of its piggyback-only overhead, and far below dense CG's
state-driven overhead at comparable wall time.
"""

import pytest

from repro.apps import laplace
from repro.apps.laplace import LaplaceParams
from repro.apps.workloads import WorkloadPoint
from repro.bench import measure_point, verify_variants_agree
from repro.runtime.config import Variant

from benchmarks.conftest import bench_config

SIZES = {
    "small": LaplaceParams(n=64, iterations=60),
    "medium": LaplaceParams(n=128, iterations=60),
    "large": LaplaceParams(n=256, iterations=60),
}


def _run(params: LaplaceParams, variant: Variant) -> None:
    from dataclasses import replace

    from repro.api import Session

    cfg = replace(bench_config(), variant=variant)
    Session().run("laplace", cfg, params=params)


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.parametrize("variant", list(Variant))
def test_fig8_laplace_bar(benchmark, size, variant):
    benchmark.group = f"fig8-laplace-{size}"
    benchmark.name = variant.value
    benchmark.pedantic(_run, args=(SIZES[size], variant), rounds=1, iterations=1)


def test_laplace_overhead_small_and_flat():
    """Checkpointing a small-state stencil code adds little on top of the
    protocol layer itself, at every problem size."""
    cfg = bench_config()
    for n in (64, 128):
        point = WorkloadPoint("laplace", str(n), "-",
                              LaplaceParams(n=n, iterations=50))
        result = measure_point(laplace.SPEC, point, cfg, repeats=2)
        assert verify_variants_agree(result)
        ov = result.overheads()
        # Full checkpoints cost at most modestly more than running the
        # protocol layer alone: the state is tiny (the paper's ≤2.1% story).
        assert ov[Variant.FULL] <= ov[Variant.PIGGYBACK] + 60.0, ov


def test_laplace_messages_dwarf_piggyback():
    """Halo rows are hundreds of bytes; the packed piggyback word is 4.

    This is the mechanism behind the paper's 'piggybacked information adds
    little overhead' claim for Laplace."""
    from repro.simmpi.datatypes import PIGGYBACK_PACKED_BYTES

    params = LaplaceParams(n=128, iterations=10)
    row_bytes = params.n * 8
    assert row_bytes / PIGGYBACK_PACKED_BYTES > 200
