"""Large-rank-count smoke: kill + detect + recover under the coop core.

A 256-rank (by default) Laplace run under the cooperative core, with a
mid-run stopping fault: the failure detector must suspect the victim and
the recovery driver must restart and complete the job.  Thread-per-rank
made this scale painful (256 OS threads, ~25us per baton handoff); under
the cooperative core the whole smoke is a few wall seconds, so CI runs
it on every push (the ``scale-smoke`` job).

With ``--bench`` the run is stamped into a BENCH trajectory — wall
seconds, virtual time, restart count, and per-stage ``stage_seconds``
totals, which the ``repro.bench.trajectory`` gate checks against
per-stage budgets (``--stage-budget checkpoint=...``).

CLI::

    PYTHONPATH=src python benchmarks/scale_smoke.py --ranks 256 \\
        --bench BENCH_RANK_SCALING.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api.registry import get_app
from repro.apps.laplace import LaplaceParams
from repro.farm.bench import BenchRecorder
from repro.farm.engine import FarmStats
from repro.runtime import RunConfig, Variant, run_with_recovery
from repro.simmpi import FailureSchedule


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ranks", type=int, default=256)
    parser.add_argument(
        "--bench", default=None, metavar="PATH",
        help="BENCH trajectory file to stamp with this run",
    )
    args = parser.parse_args(argv)
    n = args.ranks

    # round_robin + zero jitter: the deterministic no-RNG configuration
    # the rank-scaling benchmarks use, so wall numbers are comparable.
    cfg = RunConfig(
        nprocs=n, seed=3, variant=Variant.FULL, sim_core="coop",
        checkpoint_interval=0.02, detector_timeout=0.05,
        sched_policy="round_robin", jitter=0.0,
    )
    app = get_app("laplace").build(LaplaceParams(n=n, iterations=10))
    started = time.perf_counter()
    out = run_with_recovery(
        app, cfg, failures=FailureSchedule.single(time=0.03, rank=7)
    )
    wall = time.perf_counter() - started

    if not out.completed:
        print("scale smoke FAILED: run did not complete", file=sys.stderr)
        return 1
    if out.restarts < 1:
        print("scale smoke FAILED: kill forced no restart", file=sys.stderr)
        return 1

    stage_seconds = {
        name: round(entry["seconds"], 6)
        for name, entry in sorted(out.stage_totals().items())
    }
    print(
        f"scale smoke ok: {n} ranks, {wall:.2f}s wall, "
        f"vt={out.total_virtual_time:.4f}, restarts={out.restarts}, "
        f"stage_seconds={stage_seconds}"
    )

    if args.bench:
        BenchRecorder(args.bench).record(
            f"scale_smoke.n{n}.recovery",
            FarmStats(cells=1, misses=1, executed=1, wall_seconds=wall),
            virtual_time=out.total_virtual_time,
            extra={
                "ranks": n,
                "sim_core": "coop",
                "restarts": out.restarts,
                "stage_seconds": stage_seconds,
            },
        )
        print(f"stamped scale_smoke.n{n}.recovery into {args.bench}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
