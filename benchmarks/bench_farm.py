"""Experiment FARM: cached campaign execution — cold versus warm.

The farm's contract, measured: a warm rerun of an unchanged sweep serves
every cell from the content-addressed cache (zero simulator executions)
and is bit-identical to the cold run.  Assertions carry the correctness
claims so CI can run this file with ``--benchmark-disable`` as a smoke
gate; timings quantify the cache's advantage (a hit costs one blob read +
unpickle, a miss costs a whole deterministic simulation).
"""

import pickle

from repro.api.session import Session
from repro.farm import BenchRecorder, Farm
from repro.runtime.config import RunConfig


def _sweep(session, farm):
    return session.sweep(
        "laplace",
        RunConfig(nprocs=3),
        seeds=[0, 1],
        parallel=False,
        farm=farm,
    )


def test_warm_sweep_full_cache_hits(tmp_path):
    session = Session()
    cold_farm = Farm(str(tmp_path / "farm"))
    cold = _sweep(session, cold_farm)
    assert cold_farm.last_stats.executed == len(cold)

    warm_farm = Farm(str(tmp_path / "farm"))
    warm = _sweep(session, warm_farm)
    stats = warm_farm.last_stats
    assert stats.executed == 0
    assert stats.hit_rate == 1.0
    for a, b in zip(cold.rows, warm.rows):
        assert pickle.dumps(a.outcome.results) == pickle.dumps(b.outcome.results)
    # The trajectory record CI publishes (wall-clock lives only here).
    entry = BenchRecorder(str(tmp_path / "BENCH_5.json")).record(
        "bench_farm-warm", stats,
        virtual_time=sum(r.outcome.total_virtual_time for r in warm),
    )
    assert entry["cache_hits"] == len(warm)


def test_cold_sweep_timing(benchmark, tmp_path):
    benchmark.group = "farm"
    session = Session()
    counter = iter(range(1_000_000))

    def cold():
        # A fresh subdirectory per round: every cell is a miss.
        return _sweep(session, Farm(str(tmp_path / f"cold{next(counter)}")))

    result = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert len(result) == 8


def test_warm_sweep_timing(benchmark, tmp_path):
    benchmark.group = "farm"
    session = Session()
    path = str(tmp_path / "farm")
    _sweep(session, Farm(path))  # prime the cache

    warm = benchmark(lambda: _sweep(session, Farm(path)))
    assert warm.farm_stats.hit_rate == 1.0


def test_cache_hit_cost(benchmark, tmp_path):
    """One hit = one blob read + unpickle; the farm's steady-state cost."""
    benchmark.group = "farm-hit"
    farm = Farm(str(tmp_path / "farm"))
    session = Session()
    _sweep(session, farm)
    key = next(iter(farm.cache.keys()))

    outcome = benchmark(farm.cache.get, key)
    assert outcome.results
