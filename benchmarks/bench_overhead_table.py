"""Experiment T-OVH: the Section 6.2 in-text overhead summary.

Runs a reduced version of all three Figure-8 charts and prints the
normalised overhead table (the numbers the paper quotes in prose: CG
14%→43%, Laplace ≤2.1%, Neurosys piggyback 160%→2.7%).  Run with ``-s`` to
see the table; EXPERIMENTS.md records the full-size version.
"""

import pytest

from repro.apps import dense_cg, laplace, neurosys
from repro.apps.dense_cg import CGParams
from repro.apps.laplace import LaplaceParams
from repro.apps.neurosys import NeurosysParams
from repro.apps.workloads import WorkloadPoint
from repro.bench import measure_chart
from repro.bench.report import render_chart, render_overhead_table

from benchmarks.conftest import bench_config

REDUCED = {
    "dense_cg": (
        dense_cg.SPEC,
        (
            WorkloadPoint("dense_cg", "small", "-", CGParams(n=64, iterations=25)),
            WorkloadPoint("dense_cg", "large", "-", CGParams(n=160, iterations=25)),
        ),
    ),
    "laplace": (
        laplace.SPEC,
        (
            WorkloadPoint("laplace", "small", "-", LaplaceParams(n=64, iterations=50)),
            WorkloadPoint("laplace", "large", "-", LaplaceParams(n=160, iterations=50)),
        ),
    ),
    "neurosys": (
        neurosys.SPEC,
        (
            WorkloadPoint("neurosys", "small", "-", NeurosysParams(grid=4, iterations=25)),
            WorkloadPoint("neurosys", "large", "-", NeurosysParams(grid=16, iterations=25)),
        ),
    ),
}


@pytest.fixture(scope="module")
def charts():
    cfg = bench_config()
    return [
        measure_chart(build, app, points, cfg)
        for app, (build, points) in REDUCED.items()
    ]


def test_overhead_table_renders(benchmark, charts):
    def render():
        return render_overhead_table(charts)

    table = benchmark(render)
    print()
    print(table)
    for chart in charts:
        print()
        print(render_chart(chart))
    assert "dense_cg" in table and "neurosys" in table


def test_all_variants_same_answers(charts):
    """Instrumentation must never change what the application computes."""
    from repro.bench import verify_variants_agree

    for chart in charts:
        for point in chart.points:
            assert verify_variants_agree(point), (chart.app, point.point.label)


def test_checkpointing_variants_committed(charts):
    from repro.runtime.config import Variant

    for chart in charts:
        for point in chart.points:
            assert point.measurements[Variant.FULL].checkpoints_committed >= 1
            assert point.measurements[Variant.PIGGYBACK].checkpoints_committed == 0
