"""Experiment A-PIG: ablation of the Section 4.2 piggyback designs.

The paper presents two encodings: the straightforward triple (12 bytes) and
the optimised single 32-bit word (color + amLogging + 30-bit messageID).
This ablation measures (1) raw encode/decode throughput of both codecs and
(2) end-to-end run cost of a message-heavy app under each codec, plus the
byte savings on the wire.
"""

import pytest

from repro.api import Session
from repro.protocol.piggyback import FullCodec, PackedCodec

from benchmarks.conftest import bench_config


@pytest.mark.parametrize("codec_cls", [FullCodec, PackedCodec], ids=["full", "packed"])
def test_codec_encode_decode_throughput(benchmark, codec_cls):
    codec = codec_cls()
    benchmark.group = "piggyback-codec"

    def run():
        total = 0
        for mid in range(2000):
            wire = codec.encode(7, True, mid)
            info = codec.decode(wire, receiver_epoch=7)
            total += info.message_id
        return total

    assert benchmark(run) == sum(range(2000))


def chatty_app(ctx):
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
    while state["i"] < 150:
        right = (ctx.rank + 1) % ctx.size
        ctx.mpi.send(float(state["i"]), right, tag=1)
        state["acc"] += ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        state["i"] += 1
        ctx.potential_checkpoint()
    return state["acc"]


@pytest.mark.parametrize("codec", ["full", "packed"])
def test_end_to_end_codec_cost(benchmark, codec):
    from dataclasses import replace

    benchmark.group = "piggyback-end-to-end"
    cfg = replace(bench_config(), codec=codec)
    session = Session()

    def run():
        return session.run(chatty_app, cfg)

    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.results[0] > 0


def test_packed_codec_saves_wire_bytes():
    """The packed word saves 8 bytes per message vs the full triple."""
    from dataclasses import replace

    results = {}
    session = Session()
    for codec in ("full", "packed"):
        cfg = replace(bench_config(), codec=codec)
        results[codec] = session.run(chatty_app, cfg).network_bytes
    saved = results["full"] - results["packed"]
    assert saved > 0
    # ~8 bytes per instrumented application message.
    assert saved >= 8 * 100


def test_codec_equivalence_on_results():
    from dataclasses import replace

    outcomes = {}
    session = Session()
    for codec in ("full", "packed"):
        cfg = replace(bench_config(), codec=codec)
        outcomes[codec] = session.run(chatty_app, cfg).results
    assert outcomes["full"] == outcomes["packed"]
