"""Experiment A-PIG: ablation of the Section 4.2 piggyback designs.

The paper presents two encodings: the straightforward triple (12 bytes) and
the optimised single 32-bit word (color + amLogging + 30-bit messageID).
This ablation measures (1) raw encode/decode throughput of both codecs and
(2) end-to-end run cost of a message-heavy app under each codec, plus the
byte savings on the wire.
"""

import pytest

from repro.protocol.piggyback import FullCodec, PackedCodec
from repro.runtime.config import RunConfig
from repro.runtime.driver import run_with_recovery
from repro.simmpi import SUM
from repro.statesave.storage import Storage

from benchmarks.conftest import bench_config


@pytest.mark.parametrize("codec_cls", [FullCodec, PackedCodec], ids=["full", "packed"])
def test_codec_encode_decode_throughput(benchmark, codec_cls):
    codec = codec_cls()
    benchmark.group = "piggyback-codec"

    def run():
        total = 0
        for mid in range(2000):
            wire = codec.encode(7, True, mid)
            info = codec.decode(wire, receiver_epoch=7)
            total += info.message_id
        return total

    assert benchmark(run) == sum(range(2000))


def chatty_app(ctx):
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
    while state["i"] < 150:
        right = (ctx.rank + 1) % ctx.size
        ctx.mpi.send(float(state["i"]), right, tag=1)
        state["acc"] += ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        state["i"] += 1
        ctx.potential_checkpoint()
    return state["acc"]


@pytest.mark.parametrize("codec", ["full", "packed"])
def test_end_to_end_codec_cost(benchmark, codec):
    from dataclasses import replace

    benchmark.group = "piggyback-end-to-end"
    cfg = replace(bench_config(), codec=codec)

    def run():
        return run_with_recovery(chatty_app, cfg, storage=Storage(None))

    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.results[0] > 0


def test_packed_codec_saves_wire_bytes():
    """The packed word saves 8 bytes per message vs the full triple."""
    from dataclasses import replace

    results = {}
    for codec in ("full", "packed"):
        cfg = replace(bench_config(), codec=codec)
        outcome = run_with_recovery(chatty_app, cfg, storage=Storage(None))
        results[codec] = outcome.network_bytes
    saved = results["full"] - results["packed"]
    assert saved > 0
    # ~8 bytes per instrumented application message.
    assert saved >= 8 * 100


def test_codec_equivalence_on_results():
    from dataclasses import replace

    outcomes = {}
    for codec in ("full", "packed"):
        cfg = replace(bench_config(), codec=codec)
        outcomes[codec] = run_with_recovery(chatty_app, cfg, storage=Storage(None)).results
    assert outcomes["full"] == outcomes["packed"]
