#!/usr/bin/env python3
"""Regenerate the complete Figure 8 (all three charts, all sizes, four
variants) plus the Section-6.2 overhead table, at the EXPERIMENTS.md scale.

This is the full-size version of the pytest benchmarks — run it directly:

    python benchmarks/run_figure8.py [--repeats N]

Output is the text form of the paper's three bar charts; EXPERIMENTS.md
records a run verbatim.
"""

import argparse
import sys
import time

from repro.apps import dense_cg, laplace, neurosys
from repro.apps.workloads import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DENSE_CG_POINTS,
    LAPLACE_POINTS,
    NEUROSYS_POINTS,
)
from repro.bench import measure_chart, render_chart, render_overhead_table, verify_variants_agree
from repro.runtime import RunConfig

CHARTS = (
    ("dense_cg", dense_cg.SPEC, DENSE_CG_POINTS),
    ("laplace", laplace.SPEC, LAPLACE_POINTS),
    ("neurosys", neurosys.SPEC, NEUROSYS_POINTS),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N per bar (default 3)")
    parser.add_argument("--nprocs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    config = RunConfig(
        nprocs=args.nprocs,
        seed=args.seed,
        checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
        detector_timeout=0.05,
    )
    print(f"# Figure 8 regeneration: nprocs={args.nprocs}, "
          f"checkpoint interval={DEFAULT_CHECKPOINT_INTERVAL*1e3:.0f} ms "
          f"(paper: 16 procs, 30 s), best of {args.repeats}")
    print()

    results = []
    for app, build, points in CHARTS:
        t0 = time.perf_counter()
        chart = measure_chart(build, app, points, config, repeats=args.repeats,
                              interval_fraction=0.1)
        for point in chart.points:
            if not verify_variants_agree(point):
                print(f"!! variant disagreement at {app}/{point.point.label}")
                return 1
        results.append(chart)
        print(render_chart(chart))
        print(f"  [chart measured in {time.perf_counter() - t0:.0f}s]")
        print()

    print("=== Overhead summary (Section 6.2 analogue) ===")
    print()
    print(render_overhead_table(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
