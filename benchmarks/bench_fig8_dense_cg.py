"""Figure 8, left chart — Dense Conjugate Gradient (experiment F8-CG).

Paper observation (Section 6.2): full-checkpoint overhead is moderate
(~14%) for small matrices and rises sharply (43%) once the application
state grows, while the everything-but-application-state variant stays small
(~4.5%) — i.e. the state size is the cost driver.  The benchmarks regenerate
the four bars per size; `test_cg_state_size_drives_overhead` asserts the
shape.
"""

import pytest

from repro.apps import dense_cg
from repro.apps.dense_cg import CGParams
from repro.apps.workloads import WorkloadPoint
from repro.bench import measure_point, verify_variants_agree
from repro.runtime.config import Variant

from benchmarks.conftest import bench_config

SIZES = {
    "small": CGParams(n=64, iterations=30),
    "medium": CGParams(n=128, iterations=30),
    "large": CGParams(n=256, iterations=30),
}


def _run(params: CGParams, variant: Variant) -> None:
    from dataclasses import replace

    from repro.api import Session

    cfg = replace(bench_config(), variant=variant)
    outcome = Session().run("dense_cg", cfg, params=params)
    assert outcome.results[0]["max_error"] < 1e-6


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.parametrize("variant", list(Variant))
def test_fig8_cg_bar(benchmark, size, variant):
    """One bar of the chart: (problem size, build variant)."""
    benchmark.group = f"fig8-dense-cg-{size}"
    benchmark.name = variant.value
    benchmark.pedantic(_run, args=(SIZES[size], variant), rounds=1, iterations=1)


def test_cg_state_size_drives_overhead():
    """The paper's CG shape: the gap between full checkpoints and
    no-app-state checkpoints widens as the matrix grows."""
    cfg = bench_config()
    gaps = {}
    for label, n in (("small", 64), ("large", 192)):
        point = WorkloadPoint("dense_cg", label, "-", CGParams(n=n, iterations=25))
        result = measure_point(dense_cg.SPEC, point, cfg, repeats=2)
        assert verify_variants_agree(result)
        ov = result.overheads()
        gaps[label] = ov[Variant.FULL] - ov[Variant.NO_APP_STATE]
        # Checkpointing variants actually checkpointed.
        assert result.measurements[Variant.FULL].checkpoints_committed >= 1
    assert gaps["large"] > gaps["small"], (
        f"app-state cost should grow with matrix size: {gaps}"
    )


def test_cg_storage_grows_with_state():
    """Stored checkpoint bytes scale with the application state size."""
    cfg = bench_config()
    stored = {}
    for n in (64, 128):
        point = WorkloadPoint("dense_cg", str(n), "-", CGParams(n=n, iterations=25))
        result = measure_point(
            dense_cg.SPEC, point, cfg, variants=(Variant.UNMODIFIED, Variant.FULL)
        )
        m = result.measurements[Variant.FULL]
        stored[n] = m.storage_bytes / max(1, m.checkpoints_committed)
    assert stored[128] > 2.5 * stored[64]
