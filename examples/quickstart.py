#!/usr/bin/env python3
"""Quickstart: make a small MPI program fault-tolerant in ~20 lines.

Runs a 4-rank ring/allreduce computation under the C3 protocol with a
checkpoint wave every 3 simulated milliseconds, kills a rank mid-run, and
shows the system recovering from the last committed global checkpoint with
a bit-identical final answer.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, Session
from repro.simmpi import SUM, FailureSchedule


def app(ctx):
    """The application: iterate, communicate, and offer checkpoint points.

    The only fault-tolerance-specific lines are ``checkpointable_state``
    (register what to save) and ``potential_checkpoint()`` (where saving may
    happen) — the paper's sole source-code requirement.
    """
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
    while state["i"] < 300:
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        ctx.mpi.send(float(state["i"]) + ctx.rng.random(), right, tag=1)
        incoming = ctx.mpi.recv(source=left, tag=1)
        state["acc"] += ctx.mpi.allreduce(incoming, SUM)
        state["i"] += 1
        ctx.potential_checkpoint()
    return round(state["acc"], 6)


def main() -> None:
    session = Session()
    config = RunConfig(
        nprocs=4,
        seed=2026,
        checkpoint_interval=0.003,   # the paper used 30 s of wall time
        detector_timeout=0.05,
    )

    print("=== failure-free run ===")
    gold = session.run(app, config)
    print(f"results: {gold.results}")
    print(f"checkpoint waves committed: {gold.checkpoints_committed}")

    print()
    print("=== same run, rank 2 killed at t=10ms ===")
    outcome = session.run(
        app, config, failures=FailureSchedule.single(0.010, 2)
    )
    for attempt in outcome.attempts:
        if attempt.failed:
            print(
                f"attempt {attempt.index}: FAILED — rank(s) {attempt.dead_ranks} "
                f"died; detector fired; rolling back"
            )
        else:
            origin = (
                f"epoch {attempt.started_from_epoch} checkpoint"
                if attempt.started_from_epoch
                else "the beginning"
            )
            print(f"attempt {attempt.index}: completed (restarted from {origin})")
    print(f"results: {outcome.results}")

    assert outcome.results == gold.results
    print()
    print("recovered result is bit-identical to the failure-free run ✓")


if __name__ == "__main__":
    main()
