#!/usr/bin/env python3
"""A tour of the precompiler: what the source-to-source transform produces.

Shows the Figure-6 machinery on a small function: basic blocks with an
explicit program counter (the goto-label analogue), the restartable loop
iterator, the restore prologue (the VDS read), and a live capture/restore
round trip — no simulator involved.

Run:  python examples/precompiler_tour.py
"""

import pickle

from repro import RunConfig, Session
from repro.precompiler import C3StackRuntime, Precompiler
from repro.precompiler.api import PrecompiledApp
from repro.simmpi import FailureSchedule


def work(ctx, x):
    y = x * x
    ctx.potential_checkpoint()
    return y + 1


def main_loop(ctx, n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            total += work(ctx, i)
        else:
            total -= 1
    return total


def driver_main(ctx):
    """Driver entry for the same unit: ``ctx.params`` carries the loop
    bound; each iteration charges virtual compute time and folds a value
    across ranks, so checkpoint waves and failures have room to fire."""
    from repro.simmpi.op import SUM

    total = 0
    for i in range(ctx.params):
        ctx.compute(seconds=0.001)
        total += ctx.mpi.allreduce(i, SUM)
        total += work(ctx, i)
    return total


class CheckpointingCtx:
    """Stands in for the protocol layer: captures the stack at each
    potential checkpoint, exactly like the checkpoint writer does."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.snapshots = []

    def potential_checkpoint(self):
        self.snapshots.append(pickle.dumps(self.runtime.capture()))


def static_check_tour() -> None:
    """A deliberately broken variant of the tour's unit, run through the
    ``repro.check`` verifier.  The function is nested here on purpose:
    module-level unit selection must never pick it up, so the file itself
    stays clean under ``repro-check examples/precompiler_tour.py``."""
    from repro.check import check_functions
    from repro.errors import CheckError

    def broken_loop(ctx, n):
        import random

        from repro.simmpi.op import SUM

        total = 0.0
        if ctx.rank == 0:
            # Only rank 0 runs this collective: textbook deadlock.
            total = ctx.mpi.allreduce(1.0, SUM)
        for i in range(n):
            # Entropy outside the logged channel, and a communicating
            # loop with no reachable checkpoint site.
            total += ctx.mpi.allreduce(random.random(), SUM)
        return total

    print("=== repro.check on a deliberately broken variant ===")
    result = check_functions([broken_loop], target="broken_loop")
    print(result.render())
    print()

    try:
        Precompiler([broken_loop], unit_name="broken").compile(strict=True)
    except CheckError as exc:
        print(f"strict compile refused the unit "
              f"({len(exc.diagnostics)} error(s)) ✓")


def main() -> None:
    unit = Precompiler([main_loop, work], unit_name="tour").compile()

    print("=== generated code for main_loop ===")
    print(unit.sources["main_loop"])
    print()

    runtime = C3StackRuntime(unit).activate()
    try:
        ctx = CheckpointingCtx(runtime)
        answer = unit.entry("main_loop")(ctx, 10)
        print(f"plain run: answer={answer}, "
              f"checkpoints captured={len(ctx.snapshots)}")

        # Pretend the process died; rebuild from the third checkpoint.
        frames = pickle.loads(ctx.snapshots[2])
        print()
        print("restoring from checkpoint #2; saved stack:")
        for func_id, frame in frames:
            interesting = {
                k: v for k, v in frame.items() if not k.startswith("_c3")
            }
            print(f"  {func_id}: _pc={frame['_pc']} locals={interesting}")

        runtime.begin_restore(frames)
        resumed = unit.entry("main_loop")(CheckpointingCtx(runtime), 10)
        print()
        print(f"resumed run completes with answer={resumed}")
        assert resumed == answer
        print("identical to the uninterrupted run ✓")
    finally:
        runtime.deactivate()

    # The same machinery under the real recovery driver: a Session runs
    # the precompiled unit on 2 ranks, a rank dies mid-run, and the saved
    # stack is rebuilt from the last committed wave.
    print()
    print("=== the unit under Session (rank 1 killed at t=8ms) ===")
    session = Session()
    driver_unit = Precompiler(
        [driver_main, work], unit_name="tour_driver"
    ).compile()
    app = PrecompiledApp(driver_unit, entry="driver_main", params=12)
    config = RunConfig(
        nprocs=2, seed=3, checkpoint_interval=0.003, detector_timeout=0.05
    )
    gold = session.run(app, config)
    outcome = session.run(app, config, failures=FailureSchedule.single(0.008, 1))
    print(f"failure-free: results={gold.results}, "
          f"waves committed={gold.checkpoints_committed}")
    print(f"with failure: results={outcome.results}, "
          f"attempts={len(outcome.attempts)}")
    assert outcome.results == gold.results
    print("recovered result identical ✓")

    print()
    static_check_tour()


if __name__ == "__main__":
    main()
