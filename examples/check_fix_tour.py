#!/usr/bin/env python3
"""Tour of ``repro-check`` v2: findings, suppressions, and ``--fix``.

Feeds a deliberately broken checkpointable app (kept in a string so this
tour itself verifies clean) through the checker API: show the findings
the flow- and alias-aware analyses produce, silence one with a
``# repro: ignore[...]`` comment, then let the mechanical fixer rewrite
the nondeterminism and print the before/after diff.

Run:  python examples/check_fix_tour.py

The command-line equivalents:

    repro-check path/to/app.py                  # report findings
    repro-check path/to/app.py --fix            # show the rewrite diff
    repro-check path/to/app.py --fix --write    # apply it in place
"""

from repro.check import apply_fixes, check_source, propose_fixes
from repro.check.fixes import render_diff

BROKEN_APP = '''\
import random
import time

TAG_RESULT = 7
HISTORY = []


def local_error(ctx):
    return ctx.recv(source=0, tag=TAG_RESULT)


def main(ctx):
    ctx.potential_checkpoint()
    err = local_error(ctx)
    while err > 0.5:                 # rank-divergent bound (RPR012)
        err = ctx.allreduce(err, op="max")
    log = HISTORY
    log.append(err)                  # mutation through an alias (RPR033)
    jitter = random.random()         # unlogged entropy (RPR020)
    t0 = time.time()                 # wall-clock read (RPR021)
    return ctx.allreduce(jitter + t0, op="sum")
'''


def show_findings() -> None:
    """Every analysis family fires on the broken app."""
    result = check_source(BROKEN_APP, file="broken_app.py")
    print(f"== findings ({len(result.diagnostics)}) ==")
    for diag in result.diagnostics:
        print(f"  {diag.code} line {diag.span.line}: {diag.message[:64]}...")
    print()


def show_suppression() -> None:
    """A line-scoped comment moves a finding to the suppressed record."""
    # Assembled in two parts so the suppression scanner (which reads raw
    # source lines, strings included) does not see a marker in this tour.
    marker = "# repro: " + "ignore[RPR033]"
    patched = BROKEN_APP.replace(
        "log.append(err)                  # mutation through an alias (RPR033)",
        f"log.append(err)  {marker}",
    )
    result = check_source(patched, file="broken_app.py")
    kept = [d.code for d in result.diagnostics]
    waved = [d.code for d in result.suppressed]
    print(f"== after '{marker}' ==")
    print(f"  reported:   {kept}")
    print(f"  suppressed: {waved}  (still in the JSON payload for audit)")
    print()


def show_fixes() -> None:
    """The mechanical fixer rewrites entropy and clock reads."""
    fixes = propose_fixes(BROKEN_APP, file="broken_app.py")
    fixed = apply_fixes(BROKEN_APP, fixes)
    print(f"== --fix proposes {len(fixes)} rewrite(s) ==")
    print(render_diff(BROKEN_APP, fixed, "broken_app.py"))
    remaining = {d.code for d in check_source(fixed, file="broken_app.py").diagnostics}
    print(f"  nondeterminism findings left after the rewrite: "
          f"{sorted(c for c in remaining if c in ('RPR020', 'RPR021'))}")
    rerun = propose_fixes(fixed, file="broken_app.py")
    print(f"  a second --fix pass proposes {len(rerun)} rewrite(s) (idempotent)")


def main() -> None:
    show_findings()
    show_suppression()
    show_fixes()


if __name__ == "__main__":
    main()
