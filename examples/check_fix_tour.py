#!/usr/bin/env python3
"""Tour of ``repro-check`` v3: findings, suppressions, and ``--fix``.

Feeds a deliberately broken checkpointable app (kept in a string so this
tour itself verifies clean) through the checker API: show the findings
the flow- and alias-aware analyses produce, silence one with a
``# repro: ignore[...]`` comment, let the mechanical fixer rewrite the
nondeterminism and print the before/after diff, then show the v3 escape
autofix turning a leaking module global into a registered
``checkpointable_state(...)`` declaration.

Run:  python examples/check_fix_tour.py

The command-line equivalents:

    repro-check path/to/app.py                  # report findings
    repro-check path/to/app.py --fix            # show the rewrite diff
    repro-check path/to/app.py --fix --write    # apply it in place
"""

from repro.check import apply_fixes, check_source, propose_fixes
from repro.check.fixes import render_diff

BROKEN_APP = '''\
import random
import time

TAG_RESULT = 7
HISTORY = []


def local_error(ctx):
    return ctx.recv(source=0, tag=TAG_RESULT)


def main(ctx):
    ctx.potential_checkpoint()
    err = local_error(ctx)
    while err > 0.5:                 # rank-divergent bound (RPR012)
        err = ctx.allreduce(err, op="max")
    log = HISTORY
    log.append(err)                  # mutation through an alias (RPR033)
    jitter = random.random()         # unlogged entropy (RPR020)
    t0 = time.time()                 # wall-clock read (RPR021)
    return ctx.allreduce(jitter + t0, op="sum")
'''


def show_findings() -> None:
    """Every analysis family fires on the broken app."""
    result = check_source(BROKEN_APP, file="broken_app.py")
    print(f"== findings ({len(result.diagnostics)}) ==")
    for diag in result.diagnostics:
        print(f"  {diag.code} line {diag.span.line}: {diag.message[:64]}...")
    print()


def show_suppression() -> None:
    """A line-scoped comment moves a finding to the suppressed record."""
    # Assembled in two parts so the suppression scanner (which reads raw
    # source lines, strings included) does not see a marker in this tour.
    marker = "# repro: " + "ignore[RPR033]"
    patched = BROKEN_APP.replace(
        "log.append(err)                  # mutation through an alias (RPR033)",
        f"log.append(err)  {marker}",
    )
    result = check_source(patched, file="broken_app.py")
    kept = [d.code for d in result.diagnostics]
    waved = [d.code for d in result.suppressed]
    print(f"== after '{marker}' ==")
    print(f"  reported:   {kept}")
    print(f"  suppressed: {waved}  (still in the JSON payload for audit)")
    print()


def show_fixes() -> None:
    """The mechanical fixer rewrites entropy and clock reads, and
    registers the aliased global from the RPR033 while it is at it."""
    fixes = propose_fixes(BROKEN_APP, file="broken_app.py")
    fixed = apply_fixes(BROKEN_APP, fixes)
    print(f"== --fix proposes {len(fixes)} rewrite(s) ==")
    print(render_diff(BROKEN_APP, fixed, "broken_app.py"))
    remaining = {d.code for d in check_source(fixed, file="broken_app.py").diagnostics}
    print(f"  nondeterminism findings left after the rewrite: "
          f"{sorted(c for c in remaining if c in ('RPR020', 'RPR021'))}")
    rerun = propose_fixes(fixed, file="broken_app.py")
    print(f"  a second --fix pass proposes {len(rerun)} rewrite(s) (idempotent)")


ESCAPING_APP = '''\
RESULTS = {"last": None}


def main(ctx):
    ctx.potential_checkpoint()
    x = ctx.allreduce(1.0, op="sum")
    RESULTS["last"] = x              # state escaping checkpoints (RPR030)
    return x
'''


def show_escape_fix() -> None:
    """v3: escape findings get a declarative fix, not a code rewrite.

    A store through a module global is real state the checkpointer cannot
    see; the fixer registers it with the state-saving layer instead of
    rewriting the store away.
    """
    fixes = propose_fixes(ESCAPING_APP, file="escaping_app.py")
    fixed = apply_fixes(ESCAPING_APP, fixes)
    print(f"== escape autofix: {len(fixes)} insertion(s) ==")
    print(render_diff(ESCAPING_APP, fixed, "escaping_app.py"))
    after = check_source(fixed, file="escaping_app.py")
    print(f"  findings after the fix: {[d.code for d in after.diagnostics]}")
    print(f"  a second --fix pass proposes "
          f"{len(propose_fixes(fixed, file='escaping_app.py'))} rewrite(s)")


def main() -> None:
    show_findings()
    show_suppression()
    show_fixes()
    show_escape_fix()


if __name__ == "__main__":
    main()
