#!/usr/bin/env python3
"""Reproduce the Neurosys overhead story (Figure 8, right chart).

The paper's most striking measurement: at 16×16 neurons the protocol layer
costs up to 160% — not from checkpointing, but from the *command* collective
the layer sends before each of Neurosys's 5 allgathers + 1 gather per
iteration — and the overhead fades to 2.7% at 128×128 as computation grows.

This script measures the same four build variants across scaled problem
sizes and prints the chart plus the overhead-decay series.

Run:  python examples/neurosys_overhead_study.py
"""

from repro import RunConfig, Session, Variant
from repro.apps import neurosys
from repro.apps.neurosys import NeurosysParams
from repro.apps.workloads import WorkloadPoint
from repro.bench import ChartResult, measure_point, render_chart


def main() -> None:
    session = Session()
    config = RunConfig(
        nprocs=4, seed=11, checkpoint_interval=0.004, detector_timeout=0.05
    )
    points = [
        WorkloadPoint("neurosys", "16x16 (scaled 4x4)", "18KB",
                      NeurosysParams(grid=4, iterations=30)),
        WorkloadPoint("neurosys", "32x32 (scaled 8x8)", "75KB",
                      NeurosysParams(grid=8, iterations=30)),
        WorkloadPoint("neurosys", "64x64 (scaled 16x16)", "308KB",
                      NeurosysParams(grid=16, iterations=30)),
        WorkloadPoint("neurosys", "128x128 (scaled 32x32)", "1.24MB",
                      NeurosysParams(grid=32, iterations=30)),
    ]

    chart = ChartResult(app="neurosys")
    decay = []
    for point in points:
        print(f"measuring {point.label} ...")
        result = measure_point(neurosys.SPEC, point, config, repeats=2,
                               session=session)
        chart.points.append(result)
        decay.append((point.label, result.overheads()[Variant.PIGGYBACK]))

    print()
    print(render_chart(chart))
    print("protocol-layer (command-collective) overhead decay:")
    for label, overhead in decay:
        bar = "#" * max(1, int(overhead / 4))
        print(f"  {label:<24} {overhead:7.1f}%  {bar}")
    print()
    print("paper series at full scale: 160% → 85% → 34% → 2.7%")


if __name__ == "__main__":
    main()
