#!/usr/bin/env python3
"""A guided tour of the observability stack (:mod:`repro.trace`).

Runs the Laplace benchmark under the full V3 protocol, kills rank 1 a
few milliseconds in, and then tells the failure + recovery story three
ways from the single event stream the run produced:

1. a per-category **summary** of everything that happened;
2. the **recovery timeline** — kill, detection, restore, replay — as
   text, on the global virtual clock (monotone across the restart);
3. the **flight-recorder view**: each rank's last few events, the same
   tail a failing chaos scenario embeds in its report.

Everything is virtual-time only, so running this script twice prints
byte-identical timelines.  For the interactive version of the same
story, export a Chrome trace and load it in ui.perfetto.dev::

    repro-trace record --app laplace --variant V3 --kill 1@0.004 \\
        --chrome trace.json

Run:  python examples/trace_tour.py
"""

from repro.api.registry import get_app
from repro.apps.laplace import LaplaceParams
from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import run_with_recovery
from repro.simmpi.failures import FailureSchedule
from repro.trace import render_timeline, summarize


def main() -> None:
    params = LaplaceParams(n=16, iterations=60)
    config = RunConfig(
        nprocs=4,
        variant=Variant.FULL,
        checkpoint_interval=0.0015,
        detector_timeout=0.02,
        trace=True,          # arm the event bus...
        trace_buffer=None,   # ...and keep every event (no ring bound)
    )
    print(f"laplace n={params.n}, {params.iterations} iterations, "
          f"{config.nprocs} ranks, V3, kill rank 1 at t=0.004")
    print()

    outcome = run_with_recovery(
        get_app("laplace").build(params),
        config,
        failures=FailureSchedule.single(time=0.004, rank=1),
    )
    events = outcome.trace.events

    print("== what happened, by category ==")
    print(summarize(events))
    print()

    print("== the recovery story (virtual time, monotone across restart) ==")
    print(render_timeline(events, categories=("fail", "detect", "recovery")))
    print()

    print("== checkpoint commits around the failure ==")
    print(render_timeline(events, limit=8, categories=("ckpt",)))
    print()

    print("== flight-recorder tails (what chaos reports embed) ==")
    for rank, tail in sorted(outcome.trace.flight_dump(per_rank=3).items()):
        print(f"  rank {rank}:")
        for ev in tail:
            print(f"    t={ev['t']:.6f} {ev['cat']}.{ev['name']}")
    print()

    snap = outcome.metrics_snapshot()
    print(f"run: {len(outcome.attempts)} attempts, "
          f"{outcome.checkpoints_committed} checkpoints committed, "
          f"{int(snap['gauges']['trace.events'])} events recorded, "
          f"virtual time {outcome.total_virtual_time:.6f}s")
    assert outcome.completed and outcome.restarts == 1


if __name__ == "__main__":
    main()
