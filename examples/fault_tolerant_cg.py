#!/usr/bin/env python3
"""Fault-tolerant dense Conjugate Gradient (the paper's first benchmark).

Demonstrates the *automated* path: the CG solver is an ordinary Python/MPI
program whose only concession to fault tolerance is a
``potential_checkpoint()`` call per iteration; the precompiler transforms it
so the entire live stack (matrix block, residual, search direction, loop
position) is saved at checkpoints and rebuilt on restart.

The script solves ``A x = A·1`` (exact solution: all ones) on 4 ranks,
killing two different ranks at two different times along the way, and
verifies the final solution against the analytic answer.

Run:  python examples/fault_tolerant_cg.py
"""

from repro import RunConfig, Session
from repro.apps.dense_cg import CGParams
from repro.simmpi import FailureSchedule, KillEvent


def main() -> None:
    params = CGParams(n=192, iterations=60)
    config = RunConfig(
        nprocs=4,
        seed=7,
        checkpoint_interval=0.004,
        detector_timeout=0.05,
    )
    # Applications are registered by name; the session builds them on
    # demand (here: the precompiled dense-CG unit at the given size).
    session = Session()

    print(f"dense CG: n={params.n}, {params.iterations} iterations, "
          f"{config.nprocs} ranks")
    print(f"per-rank state ≈ {params.state_bytes(config.nprocs) / 1024:.0f} KB")
    print()

    gold = session.run("dense_cg", config, params=params)
    print(f"failure-free: max|x - 1| = {gold.results[0]['max_error']:.2e}, "
          f"{gold.checkpoints_committed} checkpoint waves, "
          f"1 attempt")

    failures = FailureSchedule([KillEvent(0.006, 3), KillEvent(0.013, 0)])
    outcome = session.run("dense_cg", config, params=params, failures=failures)
    print(f"with 2 injected failures: {len(outcome.attempts)} attempts")
    for attempt in outcome.attempts:
        status = (
            f"killed ranks {attempt.dead_ranks}" if attempt.failed else "completed"
        )
        origin = (
            f"epoch {attempt.started_from_epoch}"
            if attempt.started_from_epoch
            else "scratch"
        )
        print(
            f"  attempt {attempt.index}: from {origin:>8} — {status}"
            f" (virtual t={attempt.virtual_time * 1e3:.1f} ms)"
        )

    assert outcome.results == gold.results
    print()
    print(f"recovered solution error: {outcome.results[0]['max_error']:.2e} "
          "(bit-identical to failure-free) ✓")

    stats = outcome.layer_stats[0]
    print()
    print("protocol-layer activity at rank 0 (final attempt):")
    print(f"  sends={stats.sends}  receives={stats.receives}  "
          f"collectives={stats.collectives}")
    print(f"  checkpoints={stats.checkpoints_taken}  "
          f"late messages logged={stats.late_logged}  "
          f"suppressed resends={stats.suppressed_sends}")
    print(f"  replayed: matches={stats.replayed_matches} "
          f"late={stats.replayed_late} collectives={stats.replayed_collectives}")


if __name__ == "__main__":
    main()
