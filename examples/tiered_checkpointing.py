#!/usr/bin/env python3
"""Tour of the tiered checkpoint storage engine (`repro.ckpt`).

Three demonstrations on the dense-CG benchmark application:

1. **Bytes** — the same run under a flat full-pickle store, an
   incremental (content-addressed delta) store, and an incremental +
   zlib-compressed store: the constant matrix block dedupes to zero
   after its first generation, and compression shrinks the rest.
2. **Torn write** — a rank is killed *in the middle of writing* its
   epoch-2 checkpoint (`FailureSchedule.during_checkpoint`).  The
   two-phase commit never publishes the torn generation, so recovery
   restarts from committed generation 1 and the answer is bit-identical.
3. **Bit rot** — after a successful run with `ckpt_keep_last=2`, the
   newest committed generation's manifest is corrupted in place.  The
   checksum rejects it at the next restart and the run resumes from
   generation N-1 — same final answer.

Run:  python examples/tiered_checkpointing.py
"""

import tempfile

from repro import RunConfig, Session
from repro.apps.dense_cg import CGParams
from repro.simmpi import FailureSchedule
from repro.statesave.storage import Storage

PARAMS = CGParams(n=48, iterations=60)
BASE = dict(
    nprocs=4, seed=7, checkpoint_interval=0.0025, detector_timeout=0.05,
    ckpt_chunk_size=2048, ckpt_keep_last=2,
)


def bytes_comparison(session: Session) -> None:
    print("1) full vs incremental vs compressed (same run, same checkpoints)")
    strategies = {
        "full pickle     ": dict(ckpt_incremental=False, ckpt_codec="none"),
        "incremental     ": dict(ckpt_incremental=True, ckpt_codec="none"),
        "incremental+zlib": dict(ckpt_incremental=True, ckpt_codec="zlib"),
    }
    baseline = None
    final = None
    for label, knobs in strategies.items():
        config = RunConfig(**BASE, **knobs)
        storage = Storage.from_config(config)
        out = session.run("dense_cg", config, params=PARAMS, storage=storage)
        baseline = baseline or out.storage_bytes_written
        final = out.storage_bytes_written
        print(
            f"   {label}: {out.storage_bytes_written:>9,} bytes "
            f"({out.storage_bytes_written / baseline:5.0%} of flat), "
            f"{out.checkpoints_committed} waves committed"
        )
    assert final < baseline, "delta+compression saved no bytes!"
    print()


def torn_write_recovery(session: Session) -> None:
    print("2) kill a rank mid-checkpoint-write; recover from generation N-1")
    config = RunConfig(**BASE, ckpt_codec="zlib")
    gold = session.run("dense_cg", config, params=PARAMS)
    out = session.run(
        "dense_cg", config, params=PARAMS,
        failures=FailureSchedule.during_checkpoint(rank=2, epoch=2),
    )
    assert out.results == gold.results, "recovery diverged!"
    print(
        f"   restarts={out.restarts}, "
        f"resumed from epoch {out.attempts[1].started_from_epoch}, "
        f"answer identical: {out.results == gold.results}"
    )
    print()


def bit_rot_fallback(session: Session) -> None:
    print("3) corrupt the newest committed generation; checksum falls back")
    with tempfile.TemporaryDirectory() as root:
        config = RunConfig(storage_path=root, ckpt_codec="zlib", **BASE)
        storage = Storage.from_config(config)
        gold = session.run("dense_cg", config, params=PARAMS, storage=storage)
        newest = storage.committed_epoch()
        storage.store.corrupt_manifest("rank0/state", newest)
        reopened = Storage.from_config(config)
        fallback = reopened.committed_epoch()
        assert fallback == newest - 1, "checksum did not fall back to N-1!"
        out = session.run("dense_cg", config, params=PARAMS, storage=reopened)
        assert out.results == gold.results, "fallback rerun diverged!"
        print(
            f"   committed epoch was {newest}, after bit rot restart uses "
            f"{fallback}; rerun matches: {out.results == gold.results}"
        )


def main() -> None:
    session = Session()
    bytes_comparison(session)
    torn_write_recovery(session)
    bit_rot_fallback(session)


if __name__ == "__main__":
    main()
