"""The chaos campaign runner.

A campaign is: generate ``count`` seeded adversarial scenarios, measure
one failure-free baseline per distinct configuration cell, then execute
every scenario and machine-verify the three invariants of
:mod:`repro.chaos.invariants` against its cell's baseline.  Fan-out rides
:meth:`repro.Session.map`, the same worker-pool policy sweeps use, so a
campaign parallelises across cores and still produces bit-identical
reports serially.

Scenarios that fail are (optionally) minimised by the shrinker before the
report is assembled, so a red campaign hands you the smallest schedule
that still breaks — ready to be pinned as a regression.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.api.registry import get_app
from repro.api.session import Session
from repro.apps.dense_cg import CGParams
from repro.apps.laplace import LaplaceParams
from repro.chaos.generator import generate_campaign
from repro.chaos.invariants import (
    RunFingerprint,
    determinism_violations,
    equivalence_violations,
    results_blob,
    storage_violations,
)
from repro.chaos.scenario import DEFAULT_VARIANTS, ChaosScenario
from repro.runtime.config import RunConfig
from repro.runtime.driver import run_with_recovery
from repro.statesave.storage import Storage

if TYPE_CHECKING:  # pragma: no cover
    from repro.farm.engine import Farm

#: Scaled workload points the campaign runs by default — small enough that
#: a ~200-scenario campaign (baseline + run + deterministic rerun each)
#: finishes in CI time, large enough to commit several checkpoint waves.
DEFAULT_PARAMS: dict[str, Any] = {
    "laplace": LaplaceParams(n=16, iterations=100),
    "dense_cg": CGParams(n=16, iterations=20),
}


def default_base_config() -> RunConfig:
    """Campaign-wide defaults; each scenario overrides its own axes."""
    return RunConfig(nprocs=4, checkpoint_interval=0.0015, detector_timeout=0.02)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign (and hence its report)."""

    master_seed: int = 7
    count: int = 50
    apps: tuple[str, ...] = ("laplace", "dense_cg")
    variants: tuple[str, ...] = DEFAULT_VARIANTS
    nprocs_choices: tuple[int, ...] = (2, 3, 4)
    kinds: Optional[tuple[str, ...]] = None
    base_config: Optional[RunConfig] = None
    params: Optional[Mapping[str, Any]] = None
    #: Minimise failing scenarios before reporting.
    shrink_failures: bool = True

    def resolved_base(self) -> RunConfig:
        return self.base_config if self.base_config is not None else default_base_config()

    def resolved_params(self, app: str) -> Any:
        table = self.params if self.params is not None else DEFAULT_PARAMS
        return table.get(app)


@dataclass(frozen=True)
class BaselineProbe:
    """What a scenario is checked against: the failure-free run's results
    (bit-exact) and its first-attempt virtual time (the kill-time horizon)."""

    results: bytes
    horizon: float
    checkpoints_committed: int


@dataclass
class ScenarioVerdict:
    """One scenario's outcome: which invariants held, what fired."""

    scenario: ChaosScenario
    ok: bool
    violations: tuple[str, ...] = ()
    attempts: int = 0
    restarts: int = 0
    kills_fired: int = 0
    crashes_fired: int = 0
    checkpoints_committed: int = 0
    virtual_time: float = 0.0
    #: Present when the shrinker minimised a failing scenario.
    shrunk: Optional[ChaosScenario] = None
    #: Flight-recorder dump for a failing scenario: the last-N trace
    #: events per rank (plus ``"sim"``) from an instrumented re-run.  The
    #: dump is virtual-time-only, so embedding it keeps the report
    #: deterministic — a warm farm rerun reproduces it bit-for-bit.
    flight: Optional[dict[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        out = {
            "scenario": self.scenario.to_dict(),
            "ok": self.ok,
            "violations": list(self.violations),
            "attempts": self.attempts,
            "restarts": self.restarts,
            "kills_fired": self.kills_fired,
            "crashes_fired": self.crashes_fired,
            "checkpoints_committed": self.checkpoints_committed,
            "virtual_time": self.virtual_time,
        }
        if self.shrunk is not None:
            out["shrunk"] = self.shrunk.to_dict()
        if self.flight is not None:
            out["flight"] = self.flight
        return out


@dataclass
class CampaignReport:
    """The campaign's deterministic record (plus wall-clock, excluded from
    determinism comparisons)."""

    master_seed: int
    count: int
    verdicts: list[ScenarioVerdict] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def failures(self) -> list[ScenarioVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def passed(self) -> int:
        return sum(1 for v in self.verdicts if v.ok)

    def to_dict(self) -> dict[str, Any]:
        from repro.trace.metrics import campaign_metrics

        by_kind: dict[str, int] = {}
        for v in self.verdicts:
            by_kind[v.scenario.kind] = by_kind.get(v.scenario.kind, 0) + 1
        return {
            "master_seed": self.master_seed,
            "count": self.count,
            "passed": self.passed,
            "failed": len(self.failures),
            "scenarios_by_kind": dict(sorted(by_kind.items())),
            "wall_seconds": self.wall_seconds,
            # Unified-registry rollup (virtual-time accounting only, so it
            # stays inside the deterministic fingerprint slice).
            "metrics": campaign_metrics(self.verdicts).snapshot(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def fingerprint(self) -> dict[str, Any]:
        """The deterministic slice of the report (drops wall-clock)."""
        out = self.to_dict()
        out.pop("wall_seconds")
        return out

    def summary(self) -> str:
        lines = [
            f"chaos campaign seed={self.master_seed}: "
            f"{self.passed}/{len(self.verdicts)} scenarios passed"
        ]
        for v in self.failures:
            lines.append(f"FAIL {v.scenario.name}: {v.scenario.describe()}")
            for violation in v.violations:
                lines.append(f"  - {violation}")
            if v.shrunk is not None:
                lines.append(f"  shrunk to: {v.shrunk.describe()}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Module-level jobs (must be picklable for Session.map's worker path).
# --------------------------------------------------------------------- #


def _run_once(
    scenario: ChaosScenario,
    cfg: RunConfig,
    params: Any,
    horizon: float,
    tracer: Any = None,
):
    """One execution of a scenario: fresh app, storage and schedule."""
    app_main = get_app(scenario.app).build(params)
    storage = Storage.from_config(cfg)
    outcome = run_with_recovery(
        app_main, cfg, failures=scenario.schedule(horizon), storage=storage,
        tracer=tracer,
    )
    return outcome, storage


#: Ring capacity for flight-recorder re-runs of failing scenarios: small
#: enough to be cheap, large enough that every rank's last-N tail survives.
_FLIGHT_CAPACITY = 4096


def _capture_flight(
    scenario: ChaosScenario, cfg: RunConfig, params: Any, horizon: float
) -> Optional[dict[str, Any]]:
    """Re-run a failing scenario with the event bus armed; dump the tail.

    The recorder is caller-owned, so its events survive even when the
    re-run raises (``run_with_recovery`` only arms/clears it).  The dump
    carries virtual timestamps only — embedding it in the report cannot
    break warm-rerun bit-identity.
    """
    from repro.trace.recorder import TraceRecorder, flight_dump

    recorder = TraceRecorder(capacity=_FLIGHT_CAPACITY)
    try:
        _run_once(scenario, cfg, params, horizon, tracer=recorder)
    except Exception:
        pass  # the verdict already records the violation; we want the tail
    return flight_dump(recorder)


def _baseline_job(payload: tuple) -> BaselineProbe:
    app, cfg, params = payload
    outcome = run_with_recovery(
        get_app(app).build(params), cfg, storage=Storage.from_config(cfg)
    )
    return BaselineProbe(
        results=results_blob(outcome),
        horizon=outcome.attempts[0].virtual_time,
        checkpoints_committed=outcome.checkpoints_committed,
    )


def _scenario_job(payload: tuple) -> ScenarioVerdict:
    from repro.trace.metrics import snapshot_get

    scenario, cfg, params, probe = payload
    violations: list[str] = []
    verdict = ScenarioVerdict(scenario=scenario, ok=False)
    try:
        outcome, storage = _run_once(scenario, cfg, params, probe.horizon)
    except Exception as exc:
        violations.append(f"run raised {type(exc).__name__}: {exc}")
        verdict.violations = tuple(violations)
        verdict.flight = _capture_flight(scenario, cfg, params, probe.horizon)
        return verdict
    # Verdict accounting reads the unified metrics snapshot — the same
    # numbers sweep tables and bench records see.  Only deterministic
    # members (counters/gauges on the virtual clock) are consulted.
    snap = outcome.metrics_snapshot()
    verdict.attempts = int(snapshot_get(snap, "gauges", "run.attempts", 0.0))
    verdict.restarts = int(snapshot_get(snap, "gauges", "run.restarts", 0.0))
    verdict.kills_fired = int(snapshot_get(snap, "counters", "run.kills", 0.0))
    verdict.crashes_fired = int(
        snapshot_get(snap, "counters", "run.checkpoint_crashes", 0.0)
    )
    verdict.checkpoints_committed = int(
        snapshot_get(snap, "counters", "ckpt.commits", 0.0)
    )
    verdict.virtual_time = snapshot_get(snap, "gauges", "run.virtual_time", 0.0)
    # Invariant 1: bit-identical to the failure-free baseline.
    violations.extend(equivalence_violations(probe.results, outcome))
    # Invariant 2: storage internally consistent after the run.
    violations.extend(storage_violations(storage, cfg.nprocs))
    # Invariant 3: the same scenario replays to the same outcome.
    try:
        rerun, _ = _run_once(scenario, cfg, params, probe.horizon)
    except Exception as exc:
        violations.append(f"rerun raised {type(exc).__name__}: {exc}")
    else:
        violations.extend(
            determinism_violations(
                RunFingerprint.of(outcome), RunFingerprint.of(rerun)
            )
        )
    verdict.violations = tuple(violations)
    verdict.ok = not violations
    if violations:
        verdict.flight = _capture_flight(scenario, cfg, params, probe.horizon)
    return verdict


# --------------------------------------------------------------------- #
# Public entry points.
# --------------------------------------------------------------------- #


def scenario_payload(
    scenario: ChaosScenario,
    config: CampaignConfig,
    probe: BaselineProbe,
) -> tuple:
    cfg = scenario.config(config.resolved_base())
    return (scenario, cfg, config.resolved_params(scenario.app), probe)


def check_scenario(
    scenario: ChaosScenario,
    config: Optional[CampaignConfig] = None,
    probe: Optional[BaselineProbe] = None,
) -> ScenarioVerdict:
    """Run one scenario through all three invariants, in-process.

    Measures the failure-free baseline itself when ``probe`` is not
    supplied (regression tests and the shrinker pass one to avoid
    re-measuring per shrink step).
    """
    config = config if config is not None else CampaignConfig()
    cfg = scenario.config(config.resolved_base())
    params = config.resolved_params(scenario.app)
    if probe is None:
        probe = _baseline_job((scenario.app, cfg, params))
    return _scenario_job((scenario, cfg, params, probe))


def run_campaign(
    config: Optional[CampaignConfig] = None,
    *,
    session: Optional[Session] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    farm: Optional["Farm"] = None,
    preflight: bool = True,
) -> CampaignReport:
    """Generate, baseline, execute and verify a whole campaign.

    With a ``farm``, baselines and scenario verdicts are served from the
    content-addressed result cache when their cells are unchanged (same
    scenario, config, params, code version) and executed as durable,
    resumable jobs otherwise — a warm rerun of an identical campaign
    executes zero simulator cells and reproduces the report bit-for-bit
    (modulo ``wall_seconds``, which is excluded from fingerprints).

    ``preflight`` statically verifies the campaign's app matrix
    (:func:`repro.check.preflight`) before any simulator runs: a campaign
    over an app the protocol cannot recover correctly would only produce
    noise, so error findings abort with
    :class:`~repro.errors.CheckError` up front.
    """
    config = config if config is not None else CampaignConfig()
    session = session if session is not None else Session(max_workers=max_workers)
    if preflight:
        from repro.check.driver import preflight as check_preflight

        check_preflight(config.apps, level="error")

    def fan_out(fn, payloads, labels):
        if farm is not None:
            return farm.map(
                fn, payloads,
                parallel=parallel,
                # The farm runs through its own Session; keep the caller's
                # configured pool width when the call does not name one.
                max_workers=max_workers or session.max_workers,
                labels=labels,
            )
        return session.map(fn, payloads, parallel=parallel, max_workers=max_workers)

    wall_start = time.perf_counter()
    scenarios = generate_campaign(
        config.master_seed,
        config.count,
        apps=config.apps,
        variants=config.variants,
        nprocs_choices=config.nprocs_choices,
        kinds=config.kinds,
    )

    # One failure-free baseline per distinct configuration cell.
    payload_by_cell: dict[tuple, tuple] = {}
    for scenario in scenarios:
        payload_by_cell.setdefault(
            scenario.cell_key(),
            (
                scenario.app,
                scenario.config(config.resolved_base()),
                config.resolved_params(scenario.app),
            ),
        )
    probes = dict(
        zip(
            payload_by_cell,
            fan_out(
                _baseline_job, list(payload_by_cell.values()),
                labels=lambda p: f"baseline {p[0]}/{p[1].variant.value} "
                                 f"seed={p[1].seed} np={p[1].nprocs}",
            ),
        )
    )

    payloads = [
        scenario_payload(s, config, probes[s.cell_key()]) for s in scenarios
    ]
    verdicts = fan_out(
        _scenario_job, payloads, labels=lambda p: p[0].name
    )

    if config.shrink_failures:
        from repro.chaos.shrink import shrink_scenario

        for verdict in verdicts:
            if verdict.ok:
                continue
            probe = probes[verdict.scenario.cell_key()]
            verdict.shrunk = shrink_scenario(
                verdict.scenario,
                lambda s, _probe=probe: check_scenario(s, config, probe=_probe),
            )

    report = CampaignReport(
        master_seed=config.master_seed,
        count=config.count,
        verdicts=verdicts,
    )
    report.wall_seconds = time.perf_counter() - wall_start
    return report
