"""Seeded generation of adversarial failure schedules.

``generate_campaign(master_seed, count)`` deterministically produces a
mixed population of scenarios across five families, each aimed at a
different recovery-path seam:

* ``multi_kill`` — several stopping faults in one run, spread across the
  baseline's lifetime (cascades: later kills may land in later attempts).
* ``kill_during_recovery`` — a first-attempt kill plus a kill pinned to
  attempt 1, so the second fault strikes *while replay is in progress*.
* ``ckpt_crash`` — a mid-checkpoint torn write (0–3 chunks land, manifest
  never published), optionally stacked with a later kill.
* ``corrupt_manifest`` — the checkpoint write completes but publishes a
  checksum-invalid manifest, stacked with a kill so recovery must *reject*
  the bad generation under pressure.
* ``detector_edge`` — two kills separated by almost exactly one failure-
  detector timeout, straddling the detection boundary from both sides.

Same ``(master_seed, count, axes)`` ⇒ byte-identical scenario list.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.chaos.scenario import DEFAULT_VARIANTS, ChaosScenario, CrashSpec, KillSpec
from repro.errors import ConfigError
from repro.runtime.config import Variant
from repro.util.rng import RngStream

#: Generation weights: how often each family appears (normalised).
KIND_WEIGHTS = (
    ("multi_kill", 30),
    ("kill_during_recovery", 20),
    ("ckpt_crash", 20),
    ("corrupt_manifest", 15),
    ("detector_edge", 15),
)

#: Detector timeouts the generator samples; the paper's detection-latency
#: experiments motivate exercising more than one.
DETECTOR_TIMEOUTS = (0.02, 0.03)

#: Checkpoint intervals sampled (virtual seconds) — chosen so the scaled
#: workloads commit between ~2 and ~8 waves per run.
CHECKPOINT_INTERVALS = (0.001, 0.0015, 0.0025)


def _pick_kind(rng: RngStream) -> str:
    total = sum(w for _, w in KIND_WEIGHTS)
    roll = rng.integers(total)
    for kind, weight in KIND_WEIGHTS:
        if roll < weight:
            return kind
        roll -= weight
    return KIND_WEIGHTS[-1][0]  # pragma: no cover - exhaustive above


def _distinct_ranks(rng: RngStream, nprocs: int, count: int) -> list[int]:
    ranks = list(range(nprocs))
    rng.shuffle(ranks)
    return ranks[: max(1, min(count, nprocs))]


def generate_scenario(
    rng: RngStream,
    index: int,
    *,
    apps: Sequence[str],
    variants: Sequence[str],
    nprocs_choices: Sequence[int],
    seed_range: tuple[int, int] = (0, 1000),
) -> ChaosScenario:
    """Draw one scenario from the campaign distribution."""
    kind = _pick_kind(rng)
    app = rng.choice(list(apps))
    variant = rng.choice(list(variants))
    nprocs = int(rng.choice(list(nprocs_choices)))
    seed = rng.integers(seed_range[0], seed_range[1])
    detector = rng.choice(DETECTOR_TIMEOUTS)
    interval = rng.choice(CHECKPOINT_INTERVALS)
    overrides: list[tuple[str, object]] = [
        ("detector_timeout", detector),
        ("checkpoint_interval", interval),
    ]

    kills: list[KillSpec] = []
    crashes: list[CrashSpec] = []

    if kind == "multi_kill":
        n_kills = 2 + rng.integers(2)  # 2 or 3
        for rank in _distinct_ranks(rng, nprocs, n_kills):
            kills.append(KillSpec(frac=0.05 + 0.85 * rng.random(), rank=rank))
    elif kind == "kill_during_recovery":
        first, second = (_distinct_ranks(rng, nprocs, 2) * 2)[:2]
        kills.append(KillSpec(frac=0.15 + 0.6 * rng.random(), rank=first))
        # The second fault strikes early in the *restarted* attempt, while
        # suppression exchange / replay is typically still in flight.
        kills.append(
            KillSpec(frac=0.02 + 0.4 * rng.random(), rank=second, attempt=1)
        )
    elif kind == "ckpt_crash":
        victim = rng.integers(nprocs)
        epoch = 1 + rng.integers(3)
        crashes.append(
            CrashSpec(rank=victim, epoch=epoch, after_chunks=rng.integers(3))
        )
        if rng.random() < 0.5:  # half the family stacks a later kill on top
            kills.append(
                KillSpec(frac=0.5 + 0.4 * rng.random(), rank=rng.integers(nprocs))
            )
        overrides.append(("ckpt_keep_last", 2))
    elif kind == "corrupt_manifest":
        victim = rng.integers(nprocs)
        epoch = 1 + rng.integers(2)
        crashes.append(CrashSpec(rank=victim, epoch=epoch, corrupt_manifest=True))
        kills.append(
            KillSpec(frac=0.4 + 0.5 * rng.random(), rank=rng.integers(nprocs))
        )
        overrides.append(("ckpt_keep_last", 2))
    elif kind == "detector_edge":
        first, second = (_distinct_ranks(rng, nprocs, 2) * 2)[:2]
        frac = 0.1 + 0.6 * rng.random()
        # Just-under vs just-over one detector timeout after the first kill:
        # under lands both deaths in one detection window (one rollback),
        # over splits them across windows (two rollbacks).
        epsilon = detector * 0.1
        sign = 1.0 if rng.random() < 0.5 else -1.0
        kills.append(KillSpec(frac=frac, rank=first))
        kills.append(
            KillSpec(frac=frac, rank=second, offset=detector + sign * epsilon)
        )
    else:  # pragma: no cover - _pick_kind is exhaustive
        raise ConfigError(f"unknown scenario kind {kind!r}")

    return ChaosScenario(
        name=f"c{index:04d}-{kind}",
        kind=kind,
        app=app,
        variant=variant,
        seed=seed,
        nprocs=nprocs,
        kills=tuple(kills),
        crashes=tuple(crashes),
        overrides=tuple(overrides),
    )


def generate_campaign(
    master_seed: int,
    count: int,
    *,
    apps: Iterable[str] = ("laplace", "dense_cg"),
    variants: Iterable[str] = DEFAULT_VARIANTS,
    nprocs_choices: Iterable[int] = (2, 3, 4),
    kinds: Optional[Iterable[str]] = None,
) -> list[ChaosScenario]:
    """Deterministically generate ``count`` scenarios.

    ``kinds`` filters the families (rejection sampling, so the scenarios
    of a filtered campaign are a subsequence-like draw of the full one).
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    apps = tuple(apps)
    # Normalise to canonical value strings up front, so any spelling the
    # Session API accepts ("FULL", "no-app-state", the enum itself) yields
    # identical scenarios — and a typo fails here, not mid-campaign.
    variants = tuple(Variant.coerce(v).value for v in variants)
    nprocs_choices = tuple(nprocs_choices)
    wanted = set(kinds) if kinds is not None else None
    known = {k for k, _ in KIND_WEIGHTS}
    if wanted is not None and not wanted <= known:
        raise ConfigError(
            f"unknown scenario kinds {sorted(wanted - known)}; known: {sorted(known)}"
        )
    rng = RngStream(master_seed, "chaos-campaign")
    out: list[ChaosScenario] = []
    draws = 0
    while len(out) < count:
        scenario = generate_scenario(
            rng, len(out), apps=apps, variants=variants,
            nprocs_choices=nprocs_choices,
        )
        draws += 1
        if draws > count * 1000:  # pragma: no cover - only a degenerate filter
            raise ConfigError("kind filter rejects (nearly) every scenario")
        if wanted is None or scenario.kind in wanted:
            out.append(scenario)
    return out
