"""repro.chaos — randomised multi-failure campaigns for the C3 protocol.

The paper's central claim is *transparent* recovery: after any stopping
fault, rollback + replay produces results bit-identical to a failure-free
run.  This package defends that claim mechanically: a seeded generator
produces adversarial failure schedules (multi-kill cascades, faults during
recovery, mid-checkpoint torn writes, corrupt-manifest stacks, detector-
edge timings), a campaign runner executes them across V1–V3 × the paper
applications, and three machine-verified invariants gate every cell —
failure-free equivalence, storage consistency, rerun determinism.
Failures are delta-debugged down to minimal schedules and pinned as
regressions.

Quick use::

    from repro.chaos import CampaignConfig, run_campaign

    report = run_campaign(CampaignConfig(master_seed=7, count=200))
    assert not report.failures, report.summary()

or from the shell: ``python -m repro.chaos --seed 7 --count 200``.
"""

from repro.chaos.campaign import (
    BaselineProbe,
    CampaignConfig,
    CampaignReport,
    ScenarioVerdict,
    check_scenario,
    run_campaign,
)
from repro.chaos.generator import KIND_WEIGHTS, generate_campaign, generate_scenario
from repro.chaos.invariants import (
    RunFingerprint,
    determinism_violations,
    equivalence_violations,
    storage_violations,
)
from repro.chaos.scenario import (
    DEFAULT_VARIANTS,
    ChaosScenario,
    CrashSpec,
    KillSpec,
)
from repro.chaos.shrink import shrink_scenario

__all__ = [
    "BaselineProbe",
    "CampaignConfig",
    "CampaignReport",
    "ChaosScenario",
    "CrashSpec",
    "DEFAULT_VARIANTS",
    "KIND_WEIGHTS",
    "KillSpec",
    "RunFingerprint",
    "ScenarioVerdict",
    "check_scenario",
    "determinism_violations",
    "equivalence_violations",
    "generate_campaign",
    "generate_scenario",
    "run_campaign",
    "shrink_scenario",
    "storage_violations",
]
