"""Pinned regression schedules: every bug a campaign surfaced, frozen.

Each entry reproduces — on the code as it stood before its fix — a
concrete recovery-path failure found by the seeded campaign engine, then
minimised by the shrinker.  They run as part of the test suite (and via
``python -m repro.chaos --regressions``) so none of these bugs can return
silently.

The bugs these schedules caught:

* **No-app-state restore desync** (``v2-collective-replay-desync``,
  ``v2-halo-deadlock``): a V2 stack saves no application state, yet the
  driver restored protocol state from the committed epoch and armed the
  replay window.  The application re-executes from its entry point while
  the logs describe the checkpoint's re-execution suffix, so replay served
  the wrong records — a ``RecoveryError`` kind-mismatch on dense CG's
  collectives, a halo-exchange deadlock on Laplace.  Fix: a stack with
  ``save_app_state=False`` recovers by re-execution from scratch
  (``runtime/driver.py``).
* **Generation-rewrite orphans** (``rewrite-orphans``,
  ``torn-write-then-rewrite``, ``corrupt-manifest-kill-stack``,
  ``kill-during-recovery-rewrite``): a recovery attempt that re-takes an
  uncommitted epoch's checkpoint republishes the same ``(stream,
  generation)``; the old manifest was overwritten and its chunks became
  permanent orphans invisible to the driver's post-failure sweep (which
  runs *before* the rewrite).  Fix: ``CheckpointStore.save`` reclaims the
  replaced manifest's now-unreferenced chunks (``repro/ckpt/store.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.chaos.campaign import CampaignConfig, ScenarioVerdict, check_scenario
from repro.chaos.scenario import ChaosScenario, CrashSpec, KillSpec

REGRESSION_SCENARIOS: dict[str, ChaosScenario] = {
    # Minimised by the shrinker from campaign seed 7 cell c0016: one kill of
    # rank 2 mid-run is enough — V2 restored-and-armed replay then serves an
    # allgather record to an allreduce call.
    "v2-collective-replay-desync": ChaosScenario(
        name="v2-collective-replay-desync",
        kind="kill_during_recovery",
        app="dense_cg",
        variant="no-app-state",
        seed=806,
        nprocs=3,
        kills=(KillSpec(frac=0.49, rank=2),),
        overrides=(("detector_timeout", 0.02), ("checkpoint_interval", 0.0025)),
    ),
    # Campaign seed 7 cell c0025: a three-kill cascade under V2 left ranks
    # blocked forever on halo receives (same restore-desync root cause, p2p
    # flavour).
    "v2-halo-deadlock": ChaosScenario(
        name="v2-halo-deadlock",
        kind="multi_kill",
        app="laplace",
        variant="no-app-state",
        seed=653,
        nprocs=3,
        kills=(
            KillSpec(frac=0.48, rank=1),
            KillSpec(frac=0.69, rank=2),
            KillSpec(frac=0.85, rank=0),
        ),
        overrides=(("detector_timeout", 0.03), ("checkpoint_interval", 0.0015)),
    ),
    # Campaign seed 7 cell c0001: a multi-kill run whose second attempt
    # re-took an uncommitted wave's checkpoints, stranding the first
    # attempt's chunks as orphans.
    "rewrite-orphans": ChaosScenario(
        name="rewrite-orphans",
        kind="multi_kill",
        app="laplace",
        variant="full",
        seed=401,
        nprocs=4,
        kills=(
            KillSpec(frac=0.39, rank=1),
            KillSpec(frac=0.12, rank=3),
            KillSpec(frac=0.27, rank=2),
        ),
        overrides=(("detector_timeout", 0.02), ("checkpoint_interval", 0.001)),
    ),
    # Campaign seed 7 cell c0002: a torn write (zero chunks land) followed
    # by a later kill; the re-taken generation stranded the torn run's
    # bytes.
    "torn-write-then-rewrite": ChaosScenario(
        name="torn-write-then-rewrite",
        kind="ckpt_crash",
        app="laplace",
        variant="full",
        seed=451,
        nprocs=2,
        kills=(KillSpec(frac=0.76, rank=0),),
        crashes=(CrashSpec(rank=1, epoch=2, after_chunks=0),),
        overrides=(
            ("detector_timeout", 0.03),
            ("checkpoint_interval", 0.001),
            ("ckpt_keep_last", 2),
        ),
    ),
    # Campaign seed 7 cell c0021: a checksum-invalid manifest published
    # mid-crash, stacked with a kill — recovery must reject the corrupt
    # generation *and* the rewrite must not orphan chunks.
    "corrupt-manifest-kill-stack": ChaosScenario(
        name="corrupt-manifest-kill-stack",
        kind="corrupt_manifest",
        app="dense_cg",
        variant="full",
        seed=164,
        nprocs=4,
        kills=(KillSpec(frac=0.41, rank=0),),
        crashes=(CrashSpec(rank=2, epoch=2, corrupt_manifest=True),),
        overrides=(
            ("detector_timeout", 0.03),
            ("checkpoint_interval", 0.001),
            ("ckpt_keep_last", 2),
        ),
    ),
    # Campaign seed 7 cell c0015: an attempt-pinned kill strikes rank 0
    # while attempt 1 is mid-replay; the third attempt's wave rewrite used
    # to orphan the second's chunks.
    "kill-during-recovery-rewrite": ChaosScenario(
        name="kill-during-recovery-rewrite",
        kind="kill_during_recovery",
        app="laplace",
        variant="full",
        seed=969,
        nprocs=3,
        kills=(
            KillSpec(frac=0.45, rank=2),
            KillSpec(frac=0.38, rank=0, attempt=1),
        ),
        overrides=(("detector_timeout", 0.02), ("checkpoint_interval", 0.001)),
    ),
}


def run_regressions(
    config: Optional[CampaignConfig] = None,
) -> list[ScenarioVerdict]:
    """Check every pinned schedule; all must pass all three invariants."""
    return [
        check_scenario(scenario, config)
        for scenario in REGRESSION_SCENARIOS.values()
    ]
