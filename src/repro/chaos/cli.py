"""``python -m repro.chaos`` — run a chaos campaign from the command line.

Examples::

    # The CI smoke campaign: fixed seed, 50 scenarios, JSON report.
    python -m repro.chaos --seed 7 --count 50 --out chaos-report.json

    # A deeper overnight run over just the recovery-timing families.
    python -m repro.chaos --count 500 --kinds kill_during_recovery,detector_edge

    # Re-check the pinned regression schedules.
    python -m repro.chaos --regressions

Exit status is 0 when every scenario passed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.chaos.scenario import DEFAULT_VARIANTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Randomised multi-failure campaigns over the C3 protocol.",
    )
    parser.add_argument("--seed", type=int, default=7, help="campaign master seed")
    parser.add_argument("--count", type=int, default=50, help="number of scenarios")
    parser.add_argument(
        "--apps", default="laplace,dense_cg",
        help="comma-separated registered app names",
    )
    parser.add_argument(
        "--variants", default=",".join(DEFAULT_VARIANTS),
        help="comma-separated variant spellings (default: V1-V3)",
    )
    parser.add_argument(
        "--kinds", default=None,
        help="comma-separated scenario families to restrict to",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON campaign report here"
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="run in-process (identical results; easier debugging)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None, help="worker-pool width"
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failing schedules unminimised",
    )
    parser.add_argument(
        "--regressions", action="store_true",
        help="run the pinned regression schedules instead of a generated campaign",
    )
    parser.add_argument(
        "--no-preflight", action="store_true",
        help="skip the repro.check static verification of the app matrix",
    )
    parser.add_argument(
        "--farm-dir", default=None, metavar="DIR",
        help="execute through a repro.farm cache at DIR: unchanged cells "
             "are served from the cache, the rest become resumable jobs",
    )
    return parser


def _run_regressions() -> int:
    from repro.chaos.regressions import REGRESSION_SCENARIOS, run_regressions

    verdicts = run_regressions()
    failed = [v for v in verdicts if not v.ok]
    print(
        f"{len(verdicts) - len(failed)}/{len(REGRESSION_SCENARIOS)} "
        "pinned regression schedules passed"
    )
    for verdict in failed:
        print(f"FAIL {verdict.scenario.name}: {verdict.scenario.describe()}")
        for violation in verdict.violations:
            print(f"  - {violation}")
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.regressions:
        return _run_regressions()
    config = CampaignConfig(
        master_seed=args.seed,
        count=args.count,
        apps=tuple(a for a in args.apps.split(",") if a),
        variants=tuple(v for v in args.variants.split(",") if v),
        kinds=(
            tuple(k for k in args.kinds.split(",") if k)
            if args.kinds is not None
            else None
        ),
        shrink_failures=not args.no_shrink,
    )
    farm = None
    if args.farm_dir is not None:
        from repro.farm.engine import Farm

        farm = Farm(args.farm_dir)
    report = run_campaign(
        config, parallel=not args.serial, max_workers=args.max_workers,
        farm=farm, preflight=not args.no_preflight,
    )
    print(report.summary())
    print(f"wall time: {report.wall_seconds:.1f}s")
    if farm is not None:
        stats = farm.total_stats
        print(
            f"farm: {stats.hits} cache hits / {stats.cells} cells "
            f"({stats.hit_rate:.1%}), {stats.executed} executed"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.out}")
    return 1 if report.failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
