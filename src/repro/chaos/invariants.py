"""The three machine-verified invariants every chaos scenario must satisfy.

1. **Failure-free equivalence** — after any stack of stopping faults,
   rollback + replay must produce per-rank results *bit-identical* to the
   failure-free run of the same configuration (the paper's transparency
   claim, checked on pickled bytes, not ``==``).
2. **Storage consistency** — after the run, stable storage is internally
   coherent: the committed generation is readable for every rank, every
   commit record still validates (manifest checksum + chunk digests), the
   newest valid commit is the one recovery would choose, and no orphan
   chunks are left at rest.
3. **Rerun determinism** — replaying the same scenario (same seeds, fresh
   storage, pristine schedule) reproduces the same outcome: results,
   attempt-by-attempt failure accounting, commit and byte counters.

Each check returns a list of violation strings (empty = invariant holds),
so a campaign report can show *what* broke, not just that something did.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

from repro.runtime.driver import RunOutcome
from repro.statesave.storage import Storage


def results_blob(outcome: RunOutcome) -> bytes:
    """Canonical bytes of the per-rank results (bit-identity oracle)."""
    return pickle.dumps(outcome.results, protocol=pickle.HIGHEST_PROTOCOL)


@dataclass(frozen=True)
class RunFingerprint:
    """Everything invariant 3 compares between a run and its rerun.

    Deliberately excludes wall-clock fields; everything else — results,
    per-attempt failure accounting, virtual time, storage and network
    counters — must reproduce exactly.
    """

    results: bytes
    attempts: tuple[tuple, ...]
    total_virtual_time: float
    checkpoints_committed: int
    storage_bytes_written: int
    network_messages: int
    network_bytes: int

    @classmethod
    def of(cls, outcome: RunOutcome) -> "RunFingerprint":
        return cls(
            results=results_blob(outcome),
            attempts=tuple(
                (
                    a.index,
                    a.completed,
                    a.failed,
                    a.dead_ranks,
                    a.started_from_epoch,
                    a.virtual_time,
                    a.kills,
                    a.checkpoint_crashes,
                )
                for a in outcome.attempts
            ),
            total_virtual_time=outcome.total_virtual_time,
            checkpoints_committed=outcome.checkpoints_committed,
            storage_bytes_written=outcome.storage_bytes_written,
            network_messages=outcome.network_messages,
            network_bytes=outcome.network_bytes,
        )


# --------------------------------------------------------------------- #
# Invariant 1: failure-free equivalence.
# --------------------------------------------------------------------- #


def equivalence_violations(
    baseline_results: bytes, outcome: RunOutcome
) -> list[str]:
    out: list[str] = []
    if results_blob(outcome) != baseline_results:
        try:
            expected: Any = pickle.loads(baseline_results)
        except Exception:  # pragma: no cover - baseline came from pickle.dumps
            expected = "<unpicklable>"
        out.append(
            "results diverge from failure-free baseline: "
            f"got {outcome.results!r}, expected {expected!r}"
        )
    final = outcome.attempts[-1] if outcome.attempts else None
    if final is None or not final.completed:
        out.append("run did not end in a completed attempt")
    return out


# --------------------------------------------------------------------- #
# Invariant 2: storage consistency.
# --------------------------------------------------------------------- #


def storage_violations(storage: Storage, nprocs: int) -> list[str]:
    out: list[str] = []
    history = storage.commit_history()
    for record in history:
        if record.nprocs is not None and not storage.validate_epoch(
            record.nprocs, record.epoch
        ):
            out.append(
                f"committed epoch {record.epoch} no longer validates "
                "(manifest checksum or chunk digests broken)"
            )
    committed = storage.committed_epoch()
    if history:
        newest = history[-1].epoch
        if committed != newest:
            out.append(
                f"recovery would choose epoch {committed}, but the newest "
                f"commit record names epoch {newest}"
            )
    elif committed is not None:
        out.append(f"committed_epoch()={committed} with an empty commit history")
    if committed is not None:
        for rank in range(nprocs):
            try:
                storage.read_state(rank, committed)
                storage.read_log(rank, committed)
            except Exception as exc:
                out.append(
                    f"rank {rank} state/log of committed epoch {committed} "
                    f"unreadable: {exc}"
                )
    orphans = storage.sweep_orphans()
    if orphans:
        out.append(f"{orphans} orphan chunk(s) left at rest after the run")
    return out


# --------------------------------------------------------------------- #
# Invariant 3: rerun determinism.
# --------------------------------------------------------------------- #


def determinism_violations(
    first: RunFingerprint, second: RunFingerprint
) -> list[str]:
    out: list[str] = []
    if first == second:
        return out
    if first.results != second.results:
        out.append("rerun produced different per-rank results")
    if first.attempts != second.attempts:
        out.append(
            "rerun produced a different attempt history "
            f"({len(first.attempts)} vs {len(second.attempts)} attempts, "
            "or differing per-attempt records)"
        )
    for field_name in (
        "total_virtual_time",
        "checkpoints_committed",
        "storage_bytes_written",
        "network_messages",
        "network_bytes",
    ):
        a, b = getattr(first, field_name), getattr(second, field_name)
        if a != b:
            out.append(f"rerun changed {field_name}: {a!r} vs {b!r}")
    if not out:  # pragma: no cover - the fields above are exhaustive
        out.append("rerun fingerprint differs")
    return out
