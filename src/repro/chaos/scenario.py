"""Chaos scenarios: portable descriptions of adversarial failure schedules.

A :class:`ChaosScenario` is pure data — JSON-serialisable, picklable,
diffable — describing one run of one application under one configuration
with a stack of injected faults.  Kill times are expressed as *fractions*
of the failure-free run's first-attempt virtual time (plus an optional
absolute offset, for detector-edge timings), so a scenario generated
without knowing the workload's duration lands its faults where it intended
once the campaign runner has measured the baseline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Optional

from repro.errors import ConfigError
from repro.runtime.config import RunConfig, Variant
from repro.simmpi.failures import CheckpointCrash, FailureSchedule, KillEvent

#: Variant spellings the campaign sweeps by default: V1–V3.  V0 has no
#: protocol layer, so "transparent recovery" is not a claim it makes.
DEFAULT_VARIANTS = ("piggyback", "no-app-state", "full")


@dataclass(frozen=True)
class KillSpec:
    """One stopping fault, positioned relative to the baseline run.

    Resolved kill time is ``frac * horizon + offset`` where ``horizon`` is
    the failure-free baseline's first-attempt virtual time.  ``offset``
    exists for detector-edge schedules (a second kill exactly one detector
    timeout — give or take an epsilon — after the first).  ``attempt``
    pins the kill to one recovery attempt, as in :class:`KillEvent`.
    """

    frac: float
    rank: int
    attempt: Optional[int] = None
    offset: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.frac <= 2.0:
            raise ConfigError(f"kill frac must be in [0, 2], got {self.frac}")
        if self.rank < 0:
            raise ConfigError(f"kill rank must be >= 0, got {self.rank}")

    def resolve(self, horizon: float) -> KillEvent:
        return KillEvent(
            max(0.0, self.frac * horizon + self.offset), self.rank, self.attempt
        )


@dataclass(frozen=True)
class CrashSpec:
    """One mid-checkpoint crash (mirrors :class:`CheckpointCrash`)."""

    rank: int
    epoch: int
    after_chunks: int = 1
    corrupt_manifest: bool = False

    def resolve(self) -> CheckpointCrash:
        return CheckpointCrash(
            self.rank, self.epoch, self.after_chunks, self.corrupt_manifest
        )


@dataclass(frozen=True)
class ChaosScenario:
    """One campaign cell: coordinates, config overrides, fault stack."""

    name: str
    kind: str
    app: str
    variant: str
    seed: int
    nprocs: int
    kills: tuple[KillSpec, ...] = ()
    crashes: tuple[CrashSpec, ...] = ()
    #: Extra ``RunConfig`` field overrides (detector_timeout,
    #: checkpoint_interval, ckpt_keep_last, …), applied over the campaign's
    #: base config.
    overrides: tuple[tuple[str, Any], ...] = ()

    # ------------------------------------------------------------------ #

    def config(self, base: RunConfig) -> RunConfig:
        """The run configuration this scenario executes under."""
        return replace(
            base,
            variant=Variant.coerce(self.variant),
            seed=self.seed,
            nprocs=self.nprocs,
            storage_path=None,  # chaos cells are always in-memory
            **dict(self.overrides),
        )

    def schedule(self, horizon: float) -> FailureSchedule:
        """Materialise the fault stack against a measured baseline."""
        return FailureSchedule(
            (k.resolve(horizon) for k in self.kills),
            checkpoint_crashes=tuple(c.resolve() for c in self.crashes),
        )

    def describe(self) -> str:
        parts = [f"{self.app}/{self.variant} seed={self.seed} np={self.nprocs}"]
        for k in self.kills:
            att = f"@a{k.attempt}" if k.attempt is not None else ""
            off = f"{k.offset:+.4g}s" if k.offset else ""
            parts.append(f"kill(r{k.rank} t={k.frac:.2f}h{off}{att})")
        for c in self.crashes:
            tag = "corrupt" if c.corrupt_manifest else f"torn@{c.after_chunks}"
            parts.append(f"ckpt-crash(r{c.rank} e{c.epoch} {tag})")
        for name, value in self.overrides:
            parts.append(f"{name}={value}")
        return " ".join(parts)

    # ------------------------------------------------------------------ #
    # Serialisation (campaign reports, pinned regression schedules).
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["kills"] = [asdict(k) for k in self.kills]
        out["crashes"] = [asdict(c) for c in self.crashes]
        out["overrides"] = [[n, v] for n, v in self.overrides]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosScenario":
        return cls(
            name=data["name"],
            kind=data["kind"],
            app=data["app"],
            variant=data["variant"],
            seed=int(data["seed"]),
            nprocs=int(data["nprocs"]),
            kills=tuple(KillSpec(**k) for k in data.get("kills", ())),
            crashes=tuple(CrashSpec(**c) for c in data.get("crashes", ())),
            overrides=tuple(
                (n, v) for n, v in data.get("overrides", ())
            ),
        )

    def cell_key(self) -> tuple:
        """Coordinates of the failure-free baseline this scenario is
        checked against (scenarios sharing a key share one baseline)."""
        return (self.app, self.variant, self.seed, self.nprocs, self.overrides)
