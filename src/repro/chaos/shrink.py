"""Schedule shrinking: minimise a failing scenario before reporting it.

A campaign failure often arrives as a stack of faults (three kills, a
torn checkpoint, a detector-edge timing); the bug usually needs one or
two of them.  :func:`shrink_scenario` is a greedy delta-debugger over the
event list: repeatedly drop one kill or crash — and simplify surviving
events (unpin attempts, zero chunk offsets) — keeping every change that
still fails the invariants.  The result is the smallest schedule the
shrinker can prove still breaks, which is what gets pinned as a
regression.

The checker runs the *same* three-invariant verdict the campaign uses, so
"still fails" means "still violates a machine-checked invariant", not
"looks similar".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.chaos.scenario import ChaosScenario

#: A checker maps a scenario to a verdict with an ``ok`` attribute.
Checker = Callable[[ChaosScenario], object]

#: Safety valve: a shrink never runs more scenario checks than this.
MAX_CHECKS = 64


def _candidates(scenario: ChaosScenario) -> Iterator[ChaosScenario]:
    """Single-step simplifications, most aggressive first."""
    # Drop one kill.
    for i in range(len(scenario.kills)):
        yield replace(
            scenario, kills=scenario.kills[:i] + scenario.kills[i + 1:]
        )
    # Drop one crash.
    for i in range(len(scenario.crashes)):
        yield replace(
            scenario, crashes=scenario.crashes[:i] + scenario.crashes[i + 1:]
        )
    # Unpin an attempt-gated kill (is the bug really about recovery timing?).
    for i, kill in enumerate(scenario.kills):
        if kill.attempt is not None:
            kills = list(scenario.kills)
            kills[i] = replace(kill, attempt=None)
            yield replace(scenario, kills=tuple(kills))
    # Remove a detector-edge offset.
    for i, kill in enumerate(scenario.kills):
        if kill.offset:
            kills = list(scenario.kills)
            kills[i] = replace(kill, offset=0.0)
            yield replace(scenario, kills=tuple(kills))
    # Simplify a torn write to "before any byte lands".
    for i, crash in enumerate(scenario.crashes):
        if crash.after_chunks:
            crashes = list(scenario.crashes)
            crashes[i] = replace(crash, after_chunks=0)
            yield replace(scenario, crashes=tuple(crashes))


def shrink_scenario(
    scenario: ChaosScenario,
    check: Checker,
    max_checks: int = MAX_CHECKS,
) -> ChaosScenario:
    """Greedily minimise ``scenario`` while ``check(...)`` keeps failing.

    ``scenario`` must already fail under ``check``; the returned scenario
    is guaranteed to fail too (it is only replaced when a simplification
    re-confirms the failure).  Budget-bounded by ``max_checks`` scenario
    executions.  Config overrides are never touched: they are part of the
    baseline cell, and shrinking must not change which baseline the
    failure is measured against.
    """
    current = scenario
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in _candidates(current):
            if checks >= max_checks:
                break
            checks += 1
            verdict = check(candidate)
            if not getattr(verdict, "ok", True):
                current = candidate
                progress = True
                break  # restart candidate enumeration from the smaller form
    if current is scenario:
        return scenario
    return replace(current, name=f"{scenario.name}-shrunk")
