"""``repro-trace`` — record, view, convert and validate virtual-time traces.

Examples::

    # Run the laplace benchmark under V3, kill rank 1 mid-run, export both
    # formats and print the per-category summary.
    repro-trace record --app laplace --kill 1@0.004 \\
        --jsonl trace.jsonl --chrome trace.json

    # Text timeline of what just happened (or only the recovery story).
    repro-trace view trace.jsonl --limit 40
    repro-trace view trace.jsonl --categories fail,detect,recovery,proto

    # Chrome/Perfetto conversion + structural validation (the CI
    # trace-smoke recipe).
    repro-trace convert trace.jsonl trace.json
    repro-trace validate trace.json

Exit status: 0 on success; 1 when validation finds problems or a recorded
run does not complete.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import sys
from typing import Any, Optional, Sequence

from repro.trace.events import CATEGORIES
from repro.trace.export import (
    read_jsonl,
    render_timeline,
    summarize,
    to_chrome,
    validate_chrome,
    write_chrome,
    write_jsonl,
)

#: Stack-name spellings accepted for ``--variant`` alongside the enum ones.
_STACK_VARIANTS = {
    "V0": "unmodified",
    "V1": "piggyback",
    "V2": "no-app-state",
    "V3": "full",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Virtual-time event tracing for the C3 simulator stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run a registered app with tracing armed and export"
    )
    record.add_argument("--app", default="laplace", help="registered app name")
    record.add_argument(
        "--variant", default="V3",
        help="V0-V3 or a variant spelling (unmodified/piggyback/no-app-state/full)",
    )
    record.add_argument("--nprocs", type=int, default=4, help="world size")
    record.add_argument("--seed", type=int, default=0, help="simulation seed")
    record.add_argument(
        "--interval", type=float, default=0.0015,
        help="virtual checkpoint interval (seconds)",
    )
    record.add_argument(
        "--detector-timeout", type=float, default=0.02,
        help="failure-detector timeout (virtual seconds)",
    )
    record.add_argument(
        "--kill", action="append", default=[], metavar="RANK@TIME",
        help="kill RANK at virtual TIME (repeatable, e.g. --kill 1@0.004)",
    )
    record.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="override an app parameter (repeatable, e.g. --param n=16)",
    )
    record.add_argument(
        "--buffer", type=int, default=0,
        help="ring-buffer capacity; 0 keeps every event (the default here)",
    )
    record.add_argument("--jsonl", default=None, help="write JSONL events here")
    record.add_argument(
        "--chrome", default=None,
        help="write Chrome trace-event JSON (Perfetto-loadable) here",
    )
    record.add_argument(
        "--timeline", action="store_true", help="print the full text timeline"
    )

    view = sub.add_parser("view", help="render a JSONL trace as text")
    view.add_argument("path", help="JSONL trace file (from record/--jsonl)")
    view.add_argument(
        "--limit", type=int, default=0, help="show only the last N events"
    )
    view.add_argument(
        "--categories", default=None,
        help=f"comma-separated filter (known: {','.join(CATEGORIES)})",
    )
    view.add_argument(
        "--summary", action="store_true",
        help="print per-category/per-event counts instead of the timeline",
    )

    convert = sub.add_parser(
        "convert", help="convert a JSONL trace to Chrome trace-event JSON"
    )
    convert.add_argument("path", help="JSONL trace file")
    convert.add_argument("out", help="Chrome JSON output path")

    validate = sub.add_parser(
        "validate", help="structurally validate a Chrome trace-event file"
    )
    validate.add_argument("path", help="Chrome trace-event JSON file")

    return parser


# --------------------------------------------------------------------- #


def _parse_kills(specs: Sequence[str]):
    from repro.simmpi.failures import FailureSchedule, KillEvent

    events = []
    for spec in specs:
        try:
            rank_s, time_s = spec.split("@", 1)
            events.append(KillEvent(time=float(time_s), rank=int(rank_s)))
        except ValueError:
            raise SystemExit(f"bad --kill spec {spec!r}; expected RANK@TIME")
    if not events:
        return FailureSchedule.none()
    return FailureSchedule(events=tuple(events))


def _parse_params(base: Any, specs: Sequence[str]) -> Any:
    if not specs:
        return base
    if base is None or not dataclasses.is_dataclass(base):
        raise SystemExit("--param requires an app with dataclass parameters")
    overrides = {}
    for spec in specs:
        try:
            key, value = spec.split("=", 1)
        except ValueError:
            raise SystemExit(f"bad --param spec {spec!r}; expected KEY=VALUE")
        try:
            overrides[key] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            overrides[key] = value
    try:
        return dataclasses.replace(base, **overrides)
    except TypeError as exc:
        raise SystemExit(f"bad --param override: {exc}")


def _cmd_record(args) -> int:
    from repro.api.registry import get_app
    from repro.runtime.config import RunConfig, Variant
    from repro.runtime.driver import run_with_recovery

    variant = Variant.coerce(_STACK_VARIANTS.get(args.variant, args.variant))
    config = RunConfig(
        nprocs=args.nprocs,
        seed=args.seed,
        variant=variant,
        checkpoint_interval=args.interval if args.interval > 0 else None,
        detector_timeout=args.detector_timeout,
        trace=True,
        trace_buffer=args.buffer if args.buffer > 0 else None,
    )
    spec = get_app(args.app)
    app_main = spec.build(_parse_params(spec.default_params, args.param))
    outcome = run_with_recovery(app_main, config, failures=_parse_kills(args.kill))
    recorder = outcome.trace
    events = recorder.events

    if args.timeline:
        print(render_timeline(events))
        print()
    print(summarize(events))
    print()
    print(
        f"run: {len(outcome.attempts)} attempt(s), "
        f"{outcome.restarts} restart(s), "
        f"{outcome.checkpoints_committed} checkpoint(s) committed, "
        f"virtual time {outcome.total_virtual_time:.6f}s"
    )
    if recorder.dropped:
        print(
            f"warning: ring buffer dropped {recorder.dropped} event(s); "
            "use --buffer 0 for a full export", file=sys.stderr,
        )
    if args.jsonl:
        path = write_jsonl(events, args.jsonl)
        print(f"jsonl trace written to {path}")
    if args.chrome:
        path = write_chrome(events, args.chrome, process_name=f"repro-{args.app}")
        print(f"chrome trace written to {path} (load in ui.perfetto.dev)")
    return 0 if outcome.completed else 1


def _cmd_view(args) -> int:
    events = read_jsonl(args.path)
    if args.summary:
        print(summarize(events))
        return 0
    categories: Sequence[str] = ()
    if args.categories:
        categories = tuple(c for c in args.categories.split(",") if c)
        unknown = set(categories) - set(CATEGORIES)
        if unknown:
            print(
                f"unknown categories: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(CATEGORIES)})", file=sys.stderr,
            )
            return 1
    print(render_timeline(events, limit=args.limit, categories=categories))
    return 0


def _cmd_convert(args) -> int:
    events = read_jsonl(args.path)
    path = write_chrome(events, args.out)
    print(f"chrome trace written to {path} ({len(events)} events)")
    return 0


def _cmd_validate(args) -> int:
    with open(args.path, encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = validate_chrome(doc)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    n = len(doc.get("traceEvents", []))
    print(f"{args.path}: valid Chrome trace-event JSON ({n} entries)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "record": _cmd_record,
        "view": _cmd_view,
        "convert": _cmd_convert,
        "validate": _cmd_validate,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
