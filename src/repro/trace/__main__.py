"""``python -m repro.trace`` — alias for the ``repro-trace`` CLI."""

import sys

from repro.trace.cli import main

if __name__ == "__main__":
    sys.exit(main())
