"""Unified metrics registry.

Before this module the repo's counters were scattered: ``LayerStats``
per rank, ``RunOutcome.stage_totals()``, ``FarmStats`` tuples,
chaos-report dict literals, ``BenchRecorder`` flat keys — each with its
own shape.  The registry gives them one vocabulary:

* **counter** — monotone event count (messages logged, cache hits).
* **gauge**   — point-in-time value (committed epoch, virtual time).
* **histogram** — distribution summarised as count/min/max/sum/mean
  (per-stage seconds across ranks).

``snapshot()`` renders everything as one JSON-safe dict under the
``repro.metrics/1`` schema; ``RunOutcome.metrics_snapshot()``, sweep
rows, chaos verdicts and ``BenchRecorder`` records all read from it, and
``repro.bench.trajectory`` diffs two snapshots for the CI perf gate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

METRICS_SCHEMA = "repro.metrics/1"


class MetricsRegistry:
    """Mutable registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------- mutation

    def count(self, name: str, delta: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self._hists.get(name)
        if h is None:
            self._hists[name] = {
                "count": 1,
                "min": value,
                "max": value,
                "sum": value,
            }
        else:
            h["count"] += 1
            h["sum"] += value
            if value < h["min"]:
                h["min"] = value
            if value > h["max"]:
                h["max"] = value

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        for v in values:
            self.observe(name, v)

    def merge(self, other: "MetricsRegistry") -> None:
        for k, v in other._counters.items():
            self.count(k, v)
        self._gauges.update(other._gauges)
        for name, h in other._hists.items():
            mine = self._hists.get(name)
            if mine is None:
                self._hists[name] = dict(h)
            else:
                mine["count"] += h["count"]
                mine["sum"] += h["sum"]
                mine["min"] = min(mine["min"], h["min"])
                mine["max"] = max(mine["max"], h["max"])

    # --------------------------------------------------------------- export

    def snapshot(self) -> Dict[str, Any]:
        hists = {}
        for name in sorted(self._hists):
            h = self._hists[name]
            hists[name] = {
                "count": h["count"],
                "min": h["min"],
                "max": h["max"],
                "sum": h["sum"],
                "mean": h["sum"] / h["count"] if h["count"] else 0.0,
            }
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": hists,
        }


def _is_snapshot(d: Mapping[str, Any]) -> bool:
    return d.get("schema") == METRICS_SCHEMA


def snapshot_get(snapshot: Mapping[str, Any], kind: str, name: str, default: Any = None) -> Any:
    """Read one metric out of a snapshot dict, tolerating absence."""
    if not _is_snapshot(snapshot):
        return default
    return snapshot.get(kind, {}).get(name, default)


# --------------------------------------------------------------------------
# Builders: adapt the repo's existing stat carriers onto the registry.
# --------------------------------------------------------------------------


def outcome_metrics(outcome: Any) -> MetricsRegistry:
    """Registry view of a :class:`repro.runtime.driver.RunOutcome`.

    Everything here is derived from *virtual-time* accounting — wall-clock
    readings (``total_wall_seconds``, per-attempt ``wall_seconds``) are
    deliberately excluded so two same-seed runs snapshot identically and
    the snapshot can feed bit-identity invariants.  Per-stage *seconds*
    are the one wall-derived exception, kept under histograms because the
    paper's per-stage overhead accounting needs them; consumers that
    require determinism should read counters/gauges only.
    """
    reg = MetricsRegistry()
    attempts = list(getattr(outcome, "attempts", ()) or ())
    reg.gauge("run.attempts", float(len(attempts)))
    reg.gauge("run.restarts", float(max(0, len(attempts) - 1)))
    reg.gauge("run.virtual_time", float(outcome.total_virtual_time))
    reg.gauge(
        "run.completed",
        1.0 if (attempts and attempts[-1].completed) else 0.0,
    )
    reg.count(
        "run.kills", float(sum(len(rec.kills) for rec in attempts))
    )
    reg.count(
        "run.checkpoint_crashes",
        float(sum(len(rec.checkpoint_crashes) for rec in attempts)),
    )
    reg.count("ckpt.commits", float(outcome.checkpoints_committed))
    reg.count("store.bytes_written", float(outcome.storage_bytes_written))
    reg.count("net.messages", float(outcome.network_messages))
    reg.count("net.bytes", float(outcome.network_bytes))
    for name, entry in outcome.stage_totals().items():
        reg.count(f"proto.stage_calls.{name}", float(entry["calls"]))
        reg.observe(f"proto.stage_seconds.{name}", float(entry["seconds"]))
    tracer = getattr(outcome, "trace", None)
    if tracer is not None:
        reg.gauge("trace.events", float(len(tracer)))
        reg.gauge("trace.dropped", float(tracer.dropped))
    return reg


def farm_metrics(stats: Any) -> MetricsRegistry:
    """Registry view of a :class:`repro.farm.FarmStats`."""
    reg = MetricsRegistry()
    for name in ("cells", "hits", "misses", "executed", "failed", "uncached"):
        value = getattr(stats, name, None)
        if value is not None:
            reg.count(f"farm.{name}", float(value))
    hit_rate = getattr(stats, "hit_rate", None)
    if hit_rate is not None:
        reg.gauge("farm.hit_rate", float(hit_rate))
    wall = getattr(stats, "wall_seconds", None)
    if wall is not None:
        reg.observe("farm.wall_seconds", float(wall))
    return reg


def campaign_metrics(verdicts: Iterable[Any]) -> MetricsRegistry:
    """Registry view of a chaos campaign's verdicts.

    Accepts :class:`~repro.chaos.campaign.ScenarioVerdict` objects or
    their ``to_dict()`` renderings.  Everything counted here is
    deterministic per campaign seed, so the snapshot is safe to embed in
    reports that feed warm-rerun bit-identity checks.
    """
    reg = MetricsRegistry()
    for name in ("scenarios", "passed", "failed", "violations",
                 "kills_fired", "crashes_fired", "checkpoints_committed"):
        reg.count(f"chaos.{name}", 0.0)
    for v in verdicts:
        if isinstance(v, Mapping):
            def get(key: str, default: Any = 0, _v: Mapping[str, Any] = v) -> Any:
                return _v.get(key, default)
        else:
            def get(key: str, default: Any = 0, _v: Any = v) -> Any:
                return getattr(_v, key, default)
        reg.count("chaos.scenarios")
        reg.count("chaos.passed" if get("ok", False) else "chaos.failed")
        reg.count("chaos.violations", float(len(get("violations", ()))))
        reg.count("chaos.kills_fired", float(get("kills_fired")))
        reg.count("chaos.crashes_fired", float(get("crashes_fired")))
        reg.count(
            "chaos.checkpoints_committed", float(get("checkpoints_committed"))
        )
        reg.observe("chaos.virtual_time", float(get("virtual_time", 0.0)))
    return reg
