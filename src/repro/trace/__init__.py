"""repro.trace — virtual-time event tracing and the unified metrics registry.

The paper's whole evaluation is an observability exercise: per-phase
protocol overheads and recovery timelines measured against a baseline.
This package is the layer that makes those timelines *visible* inside
our reproduction:

* :class:`TraceEvent` / :class:`TraceRecorder` — a low-overhead
  structured event bus threaded through every layer (scheduler grants,
  network deliveries, detector suspicions, protocol-stage events,
  checkpoint-store two-phase commits, recovery attempts, farm jobs).
  Events are stamped with **virtual** time only — never the host clock —
  so two runs with the same seed export byte-identical traces.
* :mod:`repro.trace.export` — JSONL and Chrome trace-event JSON
  (Perfetto-loadable, one track per rank on the virtual clock), a text
  timeline and per-category summaries.
* :mod:`repro.trace.metrics` — counters/gauges/histograms behind one
  snapshot schema that ``RunOutcome``, sweep tables, chaos reports and
  the bench trajectory all read from.
* the flight recorder — ``repro.chaos`` embeds each failing cell's
  per-rank event tails into its report, turning "invariant violated"
  into a readable story.

Tracing is off by default and zero-cost when off: every emit site guards
on a single attribute that is ``None`` unless ``RunConfig(trace=True)``
armed a recorder.  When on, the default ring buffer bounds memory and
keeps overhead within a few percent of an untraced run.
"""

from repro.trace.events import CATEGORIES, TraceEvent
from repro.trace.export import (
    read_jsonl,
    render_timeline,
    summarize,
    to_chrome,
    to_jsonl,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.trace.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    campaign_metrics,
    farm_metrics,
    outcome_metrics,
)
from repro.trace.recorder import DEFAULT_RING_CAPACITY, TraceRecorder, flight_dump

__all__ = [
    "CATEGORIES",
    "DEFAULT_RING_CAPACITY",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "TraceEvent",
    "TraceRecorder",
    "campaign_metrics",
    "farm_metrics",
    "flight_dump",
    "outcome_metrics",
    "read_jsonl",
    "render_timeline",
    "summarize",
    "to_chrome",
    "to_jsonl",
    "validate_chrome",
    "write_chrome",
    "write_jsonl",
]
