"""Ring-buffered trace recorder.

Design constraints, in order:

1. **Zero cost when off.**  Every layer guards emission on a single
   attribute read (``tr = self.tracer``; ``if tr is not None``).  The
   recorder itself never appears on a hot path unless tracing is armed.
2. **No locks.**  The simulator's baton-passing scheduler guarantees at
   most one Proc thread runs at a time, and driver/farm emissions happen
   outside simulation, so a plain ``collections.deque`` is safe.
3. **Bounded when on.**  The default ring keeps the last
   ``DEFAULT_RING_CAPACITY`` events; ``capacity=None`` keeps everything
   (what the CLI uses for full exports).
4. **Virtual time only.**  Events are stamped from the bound
   :class:`~repro.simmpi.clock.VirtualClock` plus a cumulative
   cross-attempt offset, never from the host clock, so traces are
   deterministic per seed and safe to embed in chaos reports that feed
   bit-identity checks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

from repro.trace.events import TraceEvent

DEFAULT_RING_CAPACITY = 65536

# Default per-rank tail length for flight-recorder dumps.
FLIGHT_TAIL = 20


class TraceRecorder:
    """Collects :class:`TraceEvent` objects on one global virtual timeline.

    The recorder survives across recovery attempts: the driver calls
    :meth:`begin_attempt` before each attempt and :meth:`end_attempt`
    with the attempt's final virtual time afterwards, which advances the
    offset so the next attempt's clock (restarting at zero) continues the
    global timeline monotonically.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_RING_CAPACITY) -> None:
        self.capacity = capacity
        # The ring holds raw tuples, not TraceEvent objects: emit() sits
        # under every scheduler baton handoff, and skipping dataclass
        # construction there keeps traced runs within the ~10% overhead
        # envelope.  Events are materialised lazily on read.
        self._ring: Deque[tuple] = deque(maxlen=capacity)
        self._clock: Optional[Any] = None
        self._offset = 0.0
        self._attempt = 0
        self._emitted = 0  # total emit() calls; dropped is derived

    # ---------------------------------------------------------------- wiring

    def bind_clock(self, clock: Any) -> None:
        """Attach the current attempt's virtual clock (``.now`` attribute)."""
        self._clock = clock

    def begin_attempt(self, index: int) -> None:
        self._attempt = index

    def end_attempt(self, virtual_time: float) -> None:
        """Advance the global-time offset past a finished attempt."""
        self._offset += virtual_time
        self._clock = None

    @property
    def attempt(self) -> int:
        return self._attempt

    @property
    def offset(self) -> float:
        return self._offset

    # -------------------------------------------------------------- emission

    def emit(
        self,
        category: str,
        name: str,
        *,
        t: Optional[float] = None,
        rank: Optional[int] = None,
        epoch: Optional[int] = None,
        **payload: Any,
    ) -> None:
        """Record one event.

        ``t``, when given, is an *attempt-local* virtual time (e.g. a
        message's scheduled delivery time); when omitted the bound
        clock's current time is used.  Either way the cross-attempt
        offset is added to place the event on the global timeline.
        """
        if t is None:
            clock = self._clock
            t = clock.now if clock is not None else 0.0
        self._emitted += 1
        self._ring.append(
            (t + self._offset, category, name, rank, epoch, self._attempt, payload)
        )

    @property
    def dropped(self) -> int:
        """Events pushed out of a full ring (derived, not counted per emit)."""
        return max(0, self._emitted - len(self._ring))

    @staticmethod
    def _materialise(row: tuple) -> TraceEvent:
        t, category, name, rank, epoch, attempt, payload = row
        return TraceEvent(
            t=t, category=category, name=name, rank=rank, epoch=epoch,
            attempt=attempt, payload=payload,
        )

    # ---------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return (self._materialise(row) for row in self._ring)

    @property
    def events(self) -> List[TraceEvent]:
        return [self._materialise(row) for row in self._ring]

    def clear(self) -> None:
        self._ring.clear()
        self._emitted = 0

    def tail(self, rank: Optional[int] = None, n: int = FLIGHT_TAIL) -> List[TraceEvent]:
        """Last ``n`` events, optionally filtered to one rank.

        Rank filtering keeps sim-level events (``rank is None``) out so a
        blocked proc's tail shows *its own* recent history.
        """
        if rank is None:
            return [self._materialise(row) for row in list(self._ring)[-n:]]
        out: List[TraceEvent] = []
        for row in reversed(self._ring):
            if row[3] == rank:
                out.append(self._materialise(row))
                if len(out) == n:
                    break
        out.reverse()
        return out

    def ranks(self) -> List[int]:
        seen = {row[3] for row in self._ring if row[3] is not None}
        return sorted(seen)

    def flight_dump(self, per_rank: int = FLIGHT_TAIL) -> Dict[str, List[Dict[str, Any]]]:
        """Last-N events per rank as JSON-safe dicts, for chaos reports.

        Keys are stringified ranks (JSON objects need string keys) plus
        ``"sim"`` for rank-less simulator/driver events.
        """
        dump: Dict[str, List[Dict[str, Any]]] = {}
        for rank in self.ranks():
            dump[str(rank)] = [ev.to_dict() for ev in self.tail(rank, per_rank)]
        sim_tail = [row for row in self._ring if row[3] is None][-per_rank:]
        if sim_tail:
            dump["sim"] = [self._materialise(row).to_dict() for row in sim_tail]
        return dump

    # ---------------------------------------------------------------- pickle

    # RunOutcome objects (which can carry a recorder) cross process pools
    # in Session.map/sweep; the clock binding is attempt-local machinery
    # and must not travel.
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "events": [ev.to_dict() for ev in self],
            "offset": self._offset,
            "attempt": self._attempt,
            "dropped": self.dropped,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.capacity = state["capacity"]
        self._ring = deque(
            (
                (ev.t, ev.category, ev.name, ev.rank, ev.epoch, ev.attempt, ev.payload)
                for ev in (TraceEvent.from_dict(d) for d in state["events"])
            ),
            maxlen=self.capacity,
        )
        self._clock = None
        self._offset = state["offset"]
        self._attempt = state["attempt"]
        self._emitted = state["dropped"] + len(self._ring)


def flight_dump(
    recorder: Optional[TraceRecorder], per_rank: int = FLIGHT_TAIL
) -> Optional[Dict[str, List[Dict[str, Any]]]]:
    """Convenience wrapper tolerating a missing recorder."""
    if recorder is None or len(recorder) == 0:
        return None
    return recorder.flight_dump(per_rank)


def events_from_dicts(dicts: Iterable[Dict[str, Any]]) -> List[TraceEvent]:
    return [TraceEvent.from_dict(d) for d in dicts]
