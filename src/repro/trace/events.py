"""Trace event model.

One event = one interesting thing that happened at a point in virtual
time.  Events are deliberately tiny and JSON-safe: timestamps are the
simulator's virtual clock (plus a cross-attempt offset maintained by the
recorder), payloads hold only primitives, and nothing derived from the
host wall clock ever enters an event — that is what makes two same-seed
runs export byte-identical traces and lets chaos flight dumps feed the
bit-identity invariant without poisoning it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# Category registry.  Exporters group tracks and summaries by these; the
# README's event-category table mirrors this tuple.
CATEGORIES = (
    "sched",     # scheduler grants / blocks / wakes / kill requests
    "net",       # network deliveries and dead-rank drops
    "fail",      # injected kills (failure schedule firing)
    "detect",    # heartbeat detector suspicions
    "proto",     # protocol pipeline: classify / log / replay / piggyback
    "ckpt",      # checkpoint protocol phases (local ckpt, log finalize, ...)
    "store",     # checkpoint store two-phase commit / retention GC
    "recovery",  # driver-level attempt begin/end and restore decisions
    "farm",      # farm cache hits/misses and job lifecycle
)

_CATEGORY_SET = frozenset(CATEGORIES)


@dataclass(slots=True)
class TraceEvent:
    """A single structured event on the global virtual timeline.

    ``t`` is global virtual time: attempt-local clock plus the recorder's
    cumulative offset, so a multi-attempt recovery run yields one
    monotone timeline (each attempt's clock restarts at zero).
    """

    t: float
    category: str
    name: str
    rank: Optional[int] = None
    epoch: Optional[int] = None
    attempt: int = 0
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "t": self.t,
            "cat": self.category,
            "name": self.name,
            "attempt": self.attempt,
        }
        if self.rank is not None:
            d["rank"] = self.rank
        if self.epoch is not None:
            d["epoch"] = self.epoch
        if self.payload:
            d["payload"] = self.payload
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceEvent":
        return cls(
            t=float(d["t"]),
            category=d["cat"],
            name=d["name"],
            rank=d.get("rank"),
            epoch=d.get("epoch"),
            attempt=int(d.get("attempt", 0)),
            payload=dict(d.get("payload", ())),
        )

    def short(self) -> str:
        """Compact one-token-ish rendering for deadlock tails and logs."""
        bits = [f"{self.category}.{self.name}@{self.t:.6g}"]
        if self.payload:
            inner = ",".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
            bits.append(f"({inner})")
        return "".join(bits)

    def __post_init__(self) -> None:
        if self.category not in _CATEGORY_SET:
            raise ValueError(
                f"unknown trace category {self.category!r}; expected one of {CATEGORIES}"
            )
