"""Trace exporters: JSONL, Chrome trace-event JSON, text timeline.

The Chrome format targets Perfetto / ``chrome://tracing``: one process
per traced run, one thread track per rank (plus a ``sim`` track for
rank-less scheduler/driver events), instant events on the virtual clock
with timestamps in microseconds.  ``validate_chrome`` is a hand-rolled
structural check (the container has no jsonschema package) that CI's
trace-smoke job runs against exported documents.

All serialization here is deterministic: events are written in recorded
order with sorted dict keys, so same-seed runs produce byte-identical
files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.trace.events import CATEGORIES, TraceEvent

PathLike = Union[str, Path]

# tid used for events with no rank (scheduler/driver/store-level).
SIM_TID = 10_000


# ------------------------------------------------------------------- JSONL


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    lines = [json.dumps(ev.to_dict(), sort_keys=True, separators=(",", ":")) for ev in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(to_jsonl(events), encoding="utf-8")
    return p


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    out: List[TraceEvent] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(TraceEvent.from_dict(json.loads(line)))
    return out


# ------------------------------------------------------- Chrome trace JSON


def to_chrome(events: Sequence[TraceEvent], process_name: str = "repro-c3") -> Dict[str, Any]:
    """Render events as a Chrome trace-event JSON document.

    One instant event (``ph: "i"``, thread scope) per trace event; ``ts``
    is virtual seconds scaled to microseconds.  Metadata events name the
    process and one thread per rank so Perfetto shows readable tracks.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    ranks = sorted({ev.rank for ev in events if ev.rank is not None})
    for rank in ranks:
        trace_events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
    if any(ev.rank is None for ev in events):
        trace_events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": SIM_TID,
                "name": "thread_name",
                "args": {"name": "sim"},
            }
        )
    for ev in events:
        args: Dict[str, Any] = {"attempt": ev.attempt}
        if ev.epoch is not None:
            args["epoch"] = ev.epoch
        args.update(ev.payload)
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": ev.rank if ev.rank is not None else SIM_TID,
                "ts": round(ev.t * 1e6, 3),
                "name": f"{ev.category}.{ev.name}",
                "cat": ev.category,
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(
    events: Sequence[TraceEvent], path: PathLike, process_name: str = "repro-c3"
) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    doc = to_chrome(events, process_name=process_name)
    p.write_text(json.dumps(doc, sort_keys=True, separators=(",", ":")), encoding="utf-8")
    return p


def validate_chrome(doc: Any) -> List[str]:
    """Structural validation of a Chrome trace-event document.

    Returns a list of problems; empty means the document conforms to the
    subset of the trace-event format we emit (and Perfetto loads).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("i", "M", "X", "B", "E"):
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: pid/tid must be integers")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name", "process_labels"):
                problems.append(f"{where}: unknown metadata name {ev.get('name')!r}")
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata needs args object")
        else:
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: ts must be a number")
            elif ts < 0:
                problems.append(f"{where}: ts must be non-negative")
            if ph == "i" and ev.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}: instant event needs scope s in t/p/g")
            cat = ev.get("cat")
            if cat is not None and cat not in CATEGORIES:
                problems.append(f"{where}: unknown category {cat!r}")
    return problems


# ---------------------------------------------------------- text renderers


def render_timeline(
    events: Sequence[TraceEvent],
    limit: int = 0,
    categories: Sequence[str] = (),
) -> str:
    """Human-readable timeline, one event per line, in recorded order.

    ``categories`` filters first, then ``limit`` keeps the last N of what
    survived — so ``limit=20, categories=("fail",)`` shows the last 20
    failure events, not failures among the last 20 events.
    """
    rows: List[str] = []
    wanted = set(categories) if categories else None
    shown = [ev for ev in events if wanted is None or ev.category in wanted]
    if limit > 0:
        shown = shown[-limit:]
    for ev in shown:
        who = f"r{ev.rank}" if ev.rank is not None else "sim"
        epoch = f" e{ev.epoch}" if ev.epoch is not None else ""
        payload = ""
        if ev.payload:
            payload = "  " + " ".join(f"{k}={v}" for k, v in sorted(ev.payload.items()))
        rows.append(
            f"[a{ev.attempt} t={ev.t:>12.6f}] {who:>4}{epoch}  "
            f"{ev.category + '.' + ev.name:<28}{payload}"
        )
    return "\n".join(rows)


def summarize(events: Sequence[TraceEvent]) -> str:
    """Per-category / per-event-name counts plus timeline extent."""
    by_cat: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    for ev in events:
        by_cat[ev.category] = by_cat.get(ev.category, 0) + 1
        key = f"{ev.category}.{ev.name}"
        by_name[key] = by_name.get(key, 0) + 1
    lines = [f"events: {len(events)}"]
    if events:
        lines.append(f"virtual span: {events[0].t:.6f} .. {events[-1].t:.6f}")
        attempts = 1 + max(ev.attempt for ev in events)
        lines.append(f"attempts: {attempts}")
    lines.append("")
    lines.append("by category:")
    for cat in CATEGORIES:
        if cat in by_cat:
            lines.append(f"  {cat:<10} {by_cat[cat]}")
    lines.append("")
    lines.append("by event:")
    for key in sorted(by_name):
        lines.append(f"  {key:<32} {by_name[key]}")
    return "\n".join(lines)
