"""Framed, checksummed serialization for checkpoint data.

Checkpoints are the system's only defence against failures, so their on-disk
format is defensive: every frame carries a magic tag, a format version, a
payload length, and a CRC32 of the payload.  A truncated or bit-flipped frame
is detected at read time and reported as :class:`FrameCorruptError` rather
than deserialised into garbage state.

Object graphs are serialised with :mod:`pickle` protocol 5.  Serialising a
rank's *entire* state in a single frame is important for fidelity: pickle's
memo table preserves aliasing between stack variables, heap objects and
protocol state, which is the Python analogue of the paper's "restore every
object to the same virtual address so pointers remain valid" strategy
(Section 5.1.4).
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from typing import Any, BinaryIO

from repro.errors import StorageError

#: 8-byte magic prefix for checkpoint frames ("C3CKPT" + 2 format bytes).
MAGIC = b"C3CKPT"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">6sHII")  # magic, version, payload length, crc32


class FrameCorruptError(StorageError):
    """A frame failed its magic/version/length/CRC validation."""


def dumps_framed(obj: Any) -> bytes:
    """Serialise ``obj`` into a single framed, checksummed byte string."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, FORMAT_VERSION, len(payload), crc) + payload


def loads_framed(data: bytes) -> Any:
    """Inverse of :func:`dumps_framed`, validating the frame first."""
    obj, remainder = _parse_frame(data)
    if remainder:
        raise FrameCorruptError(f"{len(remainder)} trailing bytes after frame")
    return obj


def write_frame(fh: BinaryIO, obj: Any) -> int:
    """Append one framed object to an open binary file; returns bytes written."""
    blob = dumps_framed(obj)
    fh.write(blob)
    return len(blob)


def read_frame(fh: BinaryIO) -> Any:
    """Read exactly one framed object from ``fh``.

    Raises :class:`EOFError` at a clean end of file and
    :class:`FrameCorruptError` on a short or invalid frame.
    """
    header = fh.read(_HEADER.size)
    if not header:
        raise EOFError("no more frames")
    if len(header) < _HEADER.size:
        raise FrameCorruptError("truncated frame header")
    magic, version, length, crc = _HEADER.unpack(header)
    _check_header(magic, version)
    payload = fh.read(length)
    if len(payload) < length:
        raise FrameCorruptError(
            f"truncated frame payload: expected {length}, got {len(payload)}"
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise FrameCorruptError("frame CRC mismatch")
    return pickle.loads(payload)


def read_all_frames(fh: BinaryIO) -> list[Any]:
    """Read every frame in ``fh`` until EOF."""
    out: list[Any] = []
    while True:
        try:
            out.append(read_frame(fh))
        except EOFError:
            return out


def _parse_frame(data: bytes) -> tuple[Any, bytes]:
    fh = io.BytesIO(data)
    obj = read_frame(fh)
    return obj, fh.read()


def _check_header(magic: bytes, version: int) -> None:
    if magic != MAGIC:
        raise FrameCorruptError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise FrameCorruptError(
            f"unsupported format version {version} (expected {FORMAT_VERSION})"
        )


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + rename).

    Stable storage must never expose a half-written checkpoint: a crash during
    the write leaves either the old file or no file, never a torn one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
