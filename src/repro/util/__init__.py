"""Shared low-level utilities: bit packing, serialization, RNG streams."""

from repro.util.intpack import (
    MAX_MESSAGE_ID,
    pack_piggyback,
    unpack_piggyback,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.serialization import (
    FrameCorruptError,
    atomic_write_bytes,
    dumps_framed,
    loads_framed,
    read_frame,
    write_frame,
)

__all__ = [
    "MAX_MESSAGE_ID",
    "pack_piggyback",
    "unpack_piggyback",
    "RngStream",
    "derive_seed",
    "FrameCorruptError",
    "atomic_write_bytes",
    "dumps_framed",
    "loads_framed",
    "read_frame",
    "write_frame",
]
