"""32-bit piggyback word packing (paper Section 4.2, final optimisation).

The paper observes that because at most one global checkpoint is in progress
at any time, process epochs differ by at most one, so a single *color* bit
suffices in place of the full epoch number.  Together with the sender's
``amLogging`` flag and a 30-bit per-epoch message ID, the whole piggyback
payload fits in one 32-bit integer:

    bit 31 : epoch color (0 = "green", 1 = "red"; color = epoch & 1)
    bit 30 : amLogging flag of the sender
    bits 29..0 : messageID (unique per sender per epoch)

``pack_piggyback``/``unpack_piggyback`` implement exactly this layout.  A
message ID beyond 30 bits raises :class:`~repro.errors.PiggybackError` — the
paper notes a single process is unlikely to send more than a billion
messages between checkpoints, but we fail loudly rather than wrap.
"""

from __future__ import annotations

from repro.errors import PiggybackError

#: Largest encodable per-epoch message ID (30 bits).
MAX_MESSAGE_ID: int = (1 << 30) - 1

_COLOR_BIT = 1 << 31
_LOGGING_BIT = 1 << 30
_ID_MASK = MAX_MESSAGE_ID


def pack_piggyback(color: int, am_logging: bool, message_id: int) -> int:
    """Pack ``(color, amLogging, messageID)`` into one 32-bit word.

    Parameters
    ----------
    color:
        Epoch color, 0 or 1 (callers typically pass ``epoch & 1``).
    am_logging:
        Sender's ``amLogging`` flag at send time.
    message_id:
        Per-epoch sequence number of this message; must fit in 30 bits.
    """
    if color not in (0, 1):
        raise PiggybackError(f"color must be 0 or 1, got {color!r}")
    if not 0 <= message_id <= MAX_MESSAGE_ID:
        raise PiggybackError(
            f"messageID {message_id} outside 30-bit range [0, {MAX_MESSAGE_ID}]"
        )
    word = message_id
    if color:
        word |= _COLOR_BIT
    if am_logging:
        word |= _LOGGING_BIT
    return word


def unpack_piggyback(word: int) -> tuple[int, bool, int]:
    """Inverse of :func:`pack_piggyback`; returns ``(color, amLogging, messageID)``."""
    if not 0 <= word < (1 << 32):
        raise PiggybackError(f"piggyback word {word!r} is not a 32-bit value")
    color = 1 if word & _COLOR_BIT else 0
    am_logging = bool(word & _LOGGING_BIT)
    return color, am_logging, word & _ID_MASK
