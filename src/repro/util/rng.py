"""Deterministic, named random number streams.

Reproducibility is a hard requirement: every simulator run must be exactly
replayable from ``(seed, config)`` so that protocol bugs found by randomised
interleaving tests can be re-run.  We therefore never touch global RNG state;
each consumer (scheduler, network, fault injector, application) derives its
own :class:`RngStream` from the master seed and a stable string name.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a master seed and a stream name.

    Uses SHA-256 so unrelated names give statistically independent seeds and
    the mapping is stable across platforms and Python versions (unlike
    ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngStream:
    """A named deterministic RNG stream backed by ``numpy.random.Generator``.

    The stream is picklable (its full generator state travels with it) so
    application-level RNG state can be captured in checkpoints — though note
    that the C3 protocol treats post-checkpoint randomness as
    *non-determinism to be logged*, not state to be saved.
    """

    def __init__(self, master_seed: int, name: str) -> None:
        self.name = name
        self.seed = derive_seed(master_seed, name)
        self._gen = np.random.default_rng(self.seed)

    def integers(self, low: int, high: int | None = None) -> int:
        """Uniform integer in ``[low, high)`` (or ``[0, low)`` if high is None)."""
        return int(self._gen.integers(low, high))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def exponential(self, scale: float) -> float:
        """Exponential variate with mean ``scale`` (used for network delays)."""
        return float(self._gen.exponential(scale))

    def choice(self, seq):
        """Uniformly choose one element of a non-empty sequence."""
        if not len(seq):
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(len(seq)))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle of a list."""
        for i in range(len(seq) - 1, 0, -1):
            j = int(self._gen.integers(i + 1))
            seq[i], seq[j] = seq[j], seq[i]

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Normal variate (used by applications for synthetic inputs)."""
        return float(self._gen.normal(loc, scale))

    def spawn(self, name: str) -> "RngStream":
        """Derive a child stream with a qualified name."""
        return RngStream(self.seed, f"{self.name}/{name}")

    def __getstate__(self):
        return {"name": self.name, "seed": self.seed, "state": self._gen.bit_generator.state}

    def __setstate__(self, state):
        self.name = state["name"]
        self.seed = state["seed"]
        self._gen = np.random.default_rng(self.seed)
        self._gen.bit_generator.state = state["state"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(name={self.name!r}, seed={self.seed})"
