"""Public precompiler interface (the CCIFT analogue, paper Section 5.1).

Usage::

    def helper(ctx, x):
        ctx.potential_checkpoint()
        return x * 2

    def main(ctx):
        total = 0
        for i in range(100):
            total += helper(ctx, i)
        return total

    unit = Precompiler([main, helper]).compile()
    app = PrecompiledApp(unit, entry="main")
    outcome = run_with_recovery(app, RunConfig(nprocs=4))

``Precompiler`` reads the functions' sources ("almost unmodified" — the only
requirement, as in the paper, is inserting ``potential_checkpoint()`` calls),
computes the checkpoint-reaching set, desugars and flattens every reaching
function, and compiles the transformed module.  ``PrecompiledApp`` glues a
unit into the recovery driver: it activates a per-rank stack runtime, wires
the protocol layer's state provider to live-frame capture, and arms the
stack rebuild on restart.

Supported subset (violations raise :class:`UnsupportedConstructError`): any
straight-line/``if``/``while``/``for`` code may contain checkpointable
calls; ``try``/``with``/nested scopes/short-circuit positions may not (they
can still appear anywhere as *atomic* statements).  Checkpointable calls
must target unit functions by plain name; arguments of such calls should be
side-effect-free (they are re-evaluated on restart — the paper's statement
decomposition makes the same assumption).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable, Optional

from repro.errors import CheckError, PrecompilerError, UnsupportedConstructError
from repro.precompiler.analysis import (
    UnitAnalysis,
    Violation,
    validate_supported,
)
from repro.precompiler.codegen import (
    CO_PREFIX,
    build_co_function,
    build_function,
    compile_module,
)
from repro.precompiler.desugar import Desugarer
from repro.precompiler.flatten import Flattener
from repro.precompiler.iterators import c3_iter
from repro.precompiler.runtime import C3StackRuntime, c3_enter

DEFAULT_EXCLUDED_LOCALS = frozenset({"ctx", "_c3fr"})


class PrecompiledUnit:
    """A compiled set of transformed functions sharing one namespace."""

    def __init__(
        self,
        functions: dict[str, Callable],
        code_map: dict[Any, str],
        exclude_locals: frozenset[str],
        transformed_names: set[str],
        sources: dict[str, str],
        co_functions: Optional[dict[str, Callable]] = None,
    ) -> None:
        self.functions = functions
        self.code_map = code_map
        self.exclude_locals = exclude_locals
        self.transformed_names = transformed_names
        #: Generated source text per transformed function (debugging aid).
        self.sources = sources
        #: Cooperative (generator) twin per transformed function.  Shares
        #: the synchronous form's func_id in ``code_map``, so captured
        #: frames restore interchangeably across cores.
        self.co_functions: dict[str, Callable] = co_functions or {}
        #: Static-check findings (:class:`repro.check.Diagnostic` tuple)
        #: attached by :meth:`Precompiler.compile`; empty for a clean unit.
        self.diagnostics: tuple = ()

    def entry(self, name: str) -> Callable:
        try:
            return self.functions[name]
        except KeyError:
            raise PrecompilerError(f"no function {name!r} in unit") from None


class Precompiler:
    """Source-to-source transformer over a set of module-level functions."""

    def __init__(
        self,
        functions: list[Callable],
        exclude_locals: tuple[str, ...] = (),
        unit_name: str = "unit",
    ) -> None:
        if not functions:
            raise PrecompilerError("empty compilation unit")
        self.functions = functions
        self.exclude_locals = DEFAULT_EXCLUDED_LOCALS | frozenset(exclude_locals)
        self.unit_name = unit_name

    # ------------------------------------------------------------------ #

    def compile(self, strict: bool = False) -> PrecompiledUnit:
        """Transform the unit.

        Subset violations raise :class:`UnsupportedConstructError` carrying
        *every* violation in the unit (``exc.violations``), not just the
        first.  The full :mod:`repro.check` battery also runs over the
        unit; its findings are attached to the returned unit as
        ``unit.diagnostics``.  With ``strict=True``, error-severity
        findings from the other analyses (conditional collectives,
        unlogged nondeterminism, VDS escape) abort compilation with
        :class:`~repro.errors.CheckError` — the same diagnostics the
        ``repro-check`` CLI prints.
        """
        trees: dict[str, ast.FunctionDef] = {}
        files: dict[str, str] = {}
        globals_ns: dict[str, Any] = {}
        for fn in self.functions:
            tree, src_file = _parse_function(fn)
            if tree.name in trees:
                raise PrecompilerError(f"duplicate function name {tree.name!r}")
            trees[tree.name] = tree
            files[tree.name] = src_file
            # Later functions may shadow earlier globals; same-module units
            # share one namespace anyway.
            globals_ns.update(fn.__globals__)

        violations: list[Violation] = []
        analysis = UnitAnalysis(trees, collect=violations)
        reaching = analysis.reaching
        for name in sorted(reaching):
            validate_supported(
                trees[name],
                reaching,
                analysis.infos[name].comm_names,
                collect=violations,
            )
        if violations:
            first = violations[0]
            raise UnsupportedConstructError(
                first.construct,
                first.lineno,
                first.hint,
                col_offset=first.col_offset,
                function=first.function,
                violations=tuple(violations),
            )

        # Static verification over the validated unit.  Imported lazily:
        # repro.check sits above the precompiler in the layering.
        from repro.check.driver import run_unit_checks

        check_result = run_unit_checks(
            dict(trees), dict(files), target=self.unit_name
        )
        if strict and not check_result.ok:
            raise CheckError(
                check_result.render(), diagnostics=check_result.errors
            )

        transformed_defs: list[ast.FunctionDef] = []
        sources: dict[str, str] = {}
        for name, tree in trees.items():
            if name not in reaching:
                continue
            comm_names = analysis.infos[name].comm_names
            func_id = f"{self.unit_name}.{name}"
            body = _strip_docstring(tree.body)
            desugarer = Desugarer(reaching, comm_names)
            body = desugarer.desugar_body(body)
            flattener = Flattener(reaching, comm_names)
            blocks = flattener.flatten_function_body(body)
            local_names = list(analysis.infos[name].local_names)
            local_names += [n for n in desugarer.new_locals if n not in local_names]
            new_fn = build_function(tree, func_id, blocks, local_names)
            transformed_defs.append(new_fn)
            sources[name] = ast.unparse(new_fn)
            co_fn = build_co_function(new_fn, reaching, comm_names)
            transformed_defs.append(co_fn)
            sources[co_fn.name] = ast.unparse(co_fn)

        module = compile_module(transformed_defs, self.unit_name)
        namespace = dict(globals_ns)
        namespace["_c3_enter"] = c3_enter
        namespace["_c3_iter"] = c3_iter
        code = compile(module, filename=f"<c3-precompiled:{self.unit_name}>", mode="exec")
        exec(code, namespace)

        functions: dict[str, Callable] = {}
        co_functions: dict[str, Callable] = {}
        code_map: dict[Any, str] = {}
        for name in trees:
            if name in reaching:
                fn = namespace[name]
                functions[name] = fn
                code_map[fn.__code__] = f"{self.unit_name}.{name}"
                # The cooperative twin maps to the *same* func_id: frames
                # captured from either form restore into either form.
                co = namespace[CO_PREFIX + name]
                co_functions[name] = co
                code_map[co.__code__] = f"{self.unit_name}.{name}"
            else:
                functions[name] = next(
                    f for f in self.functions if f.__name__ == name
                )
        # Transformed functions must see each other (calls by plain name).
        for name, fn in functions.items():
            namespace[name] = fn
        unit = PrecompiledUnit(
            functions=functions,
            code_map=code_map,
            exclude_locals=self.exclude_locals,
            transformed_names=set(reaching),
            sources=sources,
            co_functions=co_functions,
        )
        unit.diagnostics = check_result.diagnostics
        return unit


def _parse_function(fn: Callable) -> tuple[ast.FunctionDef, str]:
    """Parse ``fn``'s source; returns the tree (line numbers shifted to
    absolute file coordinates, so diagnostics and violation spans point
    into the real file) and the source path."""
    # Follow ``__wrapped__`` chains first: a ``functools.wraps`` wrapper
    # (or a stack of them) reports the original's source but the
    # *wrapper's* co_firstlineno, and mixing the two drifts every span.
    fn = inspect.unwrap(fn)
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        src_file = inspect.getsourcefile(fn) or "<unknown>"
        first_line = fn.__code__.co_firstlineno
    except (OSError, TypeError) as exc:
        raise PrecompilerError(
            f"cannot read source of {fn!r}: {exc}"
        ) from exc
    module = ast.parse(source)
    defs = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if len(defs) != 1:
        raise PrecompilerError(
            f"expected exactly one function def in source of {fn!r}"
        )
    tree = defs[0]
    anchor = (
        tree.decorator_list[0].lineno if tree.decorator_list else tree.lineno
    )
    ast.increment_lineno(tree, first_line - anchor)
    return tree, src_file


def _strip_docstring(body: list[ast.stmt]) -> list[ast.stmt]:
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        return body[1:]
    return list(body)


class PrecompiledApp:
    """Adapter from a precompiled unit to the recovery driver's app_main.

    Captures the automated application state at every checkpoint:
    ``{"frames": <stack records>, "extra": <optional user blob>}``.  On a
    restarted attempt, the saved frames are armed before re-entering the
    entry function, which rebuilds the activation stack.
    """

    def __init__(
        self,
        unit: PrecompiledUnit,
        entry: str = "main",
        extra_state: Optional[Callable[[], Any]] = None,
        params: Any = None,
    ) -> None:
        self.unit = unit
        self.entry_name = entry
        self.entry_fn = unit.entry(entry)
        self.extra_state = extra_state
        #: Opaque run parameters, exposed to the app as ``ctx.params``.
        self.params = params
        if entry not in unit.transformed_names:
            raise PrecompilerError(
                f"entry {entry!r} is not checkpoint-reaching; "
                "it would never take a checkpoint"
            )

    def _arm(self, ctx, rt: C3StackRuntime) -> None:
        """Wire the state provider and (on a restart) the frame restore."""

        def provider() -> Any:
            # The rank's RNG stream is application memory; checkpoint
            # it alongside the captured frames so draws resume
            # mid-stream after a restart.
            state = {"frames": rt.capture(), "rng": ctx.rng}
            if self.extra_state is not None:
                state["extra"] = self.extra_state()
            return state

        ctx.mpi.state_provider = provider
        if ctx.restored and ctx._restored_app_state is not None:
            blob = ctx._restored_app_state
            if "rng" in blob:
                ctx._rank_ctx.rng = blob["rng"]
            # Precompiled code resumes past pre-checkpoint object
            # creations; it must not consume the creation-replay cursor.
            ctx.mpi.skip_creation_replay()
            rt.begin_restore(blob["frames"])

    def __call__(self, ctx) -> Any:
        ctx.params = self.params
        rt = C3StackRuntime(self.unit).activate()
        try:
            self._arm(ctx, rt)
            return self.entry_fn(ctx)
        finally:
            rt.deactivate()

    def co_call(self, ctx):
        """Cooperative entry: the application as a resumable generator.

        The coop core's rank body ``yield from``-s this; every suspending
        MPI call inside the transformed code yields through its generator
        twin, so the whole rank suspends cooperatively.  Frames captured
        here are interchangeable with the synchronous form's (same
        func_ids), so checkpoints restore across cores.
        """
        ctx.params = self.params
        co_entry = self.unit.co_functions[self.entry_name]
        rt = C3StackRuntime(self.unit).activate()
        try:
            self._arm(ctx, rt)
            return (yield from co_entry(ctx))
        finally:
            rt.deactivate()
