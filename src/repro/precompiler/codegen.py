"""Code generation: assemble the transformed function (paper Figure 6).

Given a function's basic blocks, emit::

    def f(<original args>):
        _c3fr = _c3_enter('<unit>.<name>')
        if _c3fr is None:
            _pc = 0
        else:
            _pc = _c3fr['_pc']
            if 'x' in _c3fr: x = _c3fr['x']      # one per local (the VDS)
            ...
        while True:
            if _pc == 0:
                ...
            elif _pc == 1:
                ...

The prologue is the restart jump: a restored frame's locals and ``_pc`` are
re-seeded and the dispatch loop lands in the middle of the function.  Names
in the unit's exclusion set (runtime handles such as ``ctx``) are never in
the saved dict, so the fresh argument values survive — they are re-supplied
by the caller's re-executed call expression, layer by layer, exactly like
the paper's rebuilt activation stack.
"""

from __future__ import annotations

import ast
import copy
from typing import cast

from repro.errors import PrecompilerError
from repro.precompiler.desugar import _const, _name
from repro.precompiler.flatten import Block

ENTER_HELPER = "_c3_enter"
ITER_HELPER = "_c3_iter"

#: Name prefix of the cooperative (generator) twin of each transformed
#: function.  Both forms share one namespace and one ``func_id`` in the
#: unit's ``code_map``, so stack capture and restore work identically
#: whichever form is executing.
CO_PREFIX = "_c3co_"

#: Context-surface methods with generator twins: the receiver is the comm
#: root itself (``ctx.potential_checkpoint()`` →
#: ``yield from ctx.co_potential_checkpoint()``).  Roots named ``comm`` or
#: ``mpi`` may carry the MPI surface directly, so the direct-receiver set
#: is the union of both.
CTX_SUSPENDING = frozenset(
    {"potential_checkpoint", "nondet", "random", "yield_point"}
)

#: MPI-surface methods that can suspend the calling rank (block on a
#: peer, reach a scheduling point, or take a checkpoint).  The receiver is
#: the comm root's ``.mpi`` attribute — or the root itself.  Methods *not*
#: listed (``comm_rank``, ``comm_dup``, ``op_create``, ``attach_buffer``,
#: ``wtime``, ``iprobe`` …) never suspend and keep their synchronous form.
MPI_SUSPENDING = frozenset(
    {
        "send", "recv", "sendrecv", "isend", "irecv", "wait", "test",
        "bcast", "reduce", "allreduce", "gather", "allgather", "scatter",
        "alltoall", "scan", "barrier", "probe",
        "potential_checkpoint", "nondet", "comm_split",
    }
)

_DIRECT_SUSPENDING = CTX_SUSPENDING | MPI_SUSPENDING


def _suspending_attr(func: ast.Attribute, comm_names: frozenset[str]) -> bool:
    """Is this attribute call a suspending method of the comm surface?

    Matches exactly ``<root>.m(...)`` and ``<root>.mpi.m(...)`` with the
    root a comm parameter — deeper chains (``ctx.rng.random()``) are
    ordinary application calls and stay synchronous.
    """
    recv = func.value
    if isinstance(recv, ast.Name):
        return recv.id in comm_names and func.attr in _DIRECT_SUSPENDING
    if (
        isinstance(recv, ast.Attribute)
        and recv.attr == "mpi"
        and isinstance(recv.value, ast.Name)
    ):
        return recv.value.id in comm_names and func.attr in MPI_SUSPENDING
    return False


class _CoopCallRewriter(ast.NodeTransformer):
    """Rewrite suspending calls into ``yield from`` of their generator twins.

    Applied to a *transformed* (flattened) function body to produce its
    cooperative form: calls to checkpoint-reaching unit functions become
    ``yield from _c3co_<name>(...)`` and suspending comm-surface method
    calls become ``yield from <recv>.co_<method>(...)``.  Nested scopes
    are left untouched — a ``yield`` inside them would turn *them* into
    generators (the analysis already rejects checkpointable calls there).
    """

    def __init__(self, reaching: set[str], comm_names: frozenset[str]) -> None:
        self.reaching = reaching
        self.comm_names = comm_names

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return node  # nested def: separate scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> ast.AST:
        return node

    def visit_Lambda(self, node: ast.Lambda) -> ast.AST:
        return node

    def visit_ListComp(self, node: ast.ListComp) -> ast.AST:
        return node

    def visit_SetComp(self, node: ast.SetComp) -> ast.AST:
        return node

    def visit_DictComp(self, node: ast.DictComp) -> ast.AST:
        return node

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> ast.AST:
        return node

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.reaching:
            node.func = _name(CO_PREFIX + func.id)
            return ast.YieldFrom(value=node)
        if isinstance(func, ast.Attribute) and _suspending_attr(
            func, self.comm_names
        ):
            node.func = ast.Attribute(
                value=func.value, attr="co_" + func.attr, ctx=ast.Load()
            )
            return ast.YieldFrom(value=node)
        return node


def build_co_function(
    sync_fn: ast.FunctionDef,
    reaching: set[str],
    comm_names: frozenset[str],
) -> ast.FunctionDef:
    """The cooperative twin of a transformed function.

    Structurally identical to the synchronous form (same prologue, same
    ``_pc`` dispatch, same locals — it shares the func_id and restore
    records), but every suspending call yields through its generator
    twin, so a rank running this form suspends cooperatively instead of
    parking its thread.
    """
    co_fn = copy.deepcopy(sync_fn)
    co_fn.name = CO_PREFIX + sync_fn.name
    rewriter = _CoopCallRewriter(reaching, comm_names)
    co_fn.body = [cast(ast.stmt, rewriter.visit(stmt)) for stmt in co_fn.body]
    # A reaching function always contains at least one rewritten call, but
    # generator-ness must not depend on that invariant.
    if not any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(co_fn)
    ):
        co_fn.body.append(
            ast.If(
                test=_const(False),
                body=[ast.Expr(value=ast.Yield(value=None))],
                orelse=[],
            )
        )
    ast.fix_missing_locations(co_fn)
    return co_fn


def build_dispatch(blocks: list[Block]) -> ast.While:
    """The ``while True: if _pc == 0: ... elif ...`` dispatch loop."""
    if not blocks:
        raise PrecompilerError("no blocks to dispatch")
    branches: ast.stmt | None = None
    for block in reversed(blocks):
        body = block.stmts if block.stmts else [ast.Pass()]
        test = ast.Compare(
            left=_name("_pc"),
            ops=[ast.Eq()],
            comparators=[_const(block.index)],
        )
        node = ast.If(
            test=test,
            body=body,
            orelse=[branches] if branches is not None else [
                # Unknown _pc: corrupted restore data; fail loudly.
                ast.Raise(
                    exc=ast.Call(
                        func=_name("RuntimeError"),
                        args=[
                            ast.BinOp(
                                left=_const("invalid _pc "),
                                op=ast.Add(),
                                right=ast.Call(
                                    func=_name("str"), args=[_name("_pc")], keywords=[]
                                ),
                            )
                        ],
                        keywords=[],
                    ),
                    cause=None,
                )
            ],
        )
        branches = node
    assert branches is not None
    return ast.While(test=_const(True), body=[branches], orelse=[])


def build_prologue(func_id: str, local_names: list[str]) -> list[ast.stmt]:
    """``_c3fr = _c3_enter(id)`` plus the per-local restore (the VDS read)."""
    restore_body: list[ast.stmt] = [
        ast.Assign(
            targets=[ast.Name(id="_pc", ctx=ast.Store())],
            value=ast.Subscript(
                value=_name("_c3fr"), slice=_const("_pc"), ctx=ast.Load()
            ),
        )
    ]
    for name in local_names:
        restore_body.append(
            ast.If(
                test=ast.Compare(
                    left=_const(name),
                    ops=[ast.In()],
                    comparators=[_name("_c3fr")],
                ),
                body=[
                    ast.Assign(
                        targets=[ast.Name(id=name, ctx=ast.Store())],
                        value=ast.Subscript(
                            value=_name("_c3fr"),
                            slice=_const(name),
                            ctx=ast.Load(),
                        ),
                    )
                ],
                orelse=[],
            )
        )
    return [
        ast.Assign(
            targets=[ast.Name(id="_c3fr", ctx=ast.Store())],
            value=ast.Call(func=_name(ENTER_HELPER), args=[_const(func_id)], keywords=[]),
        ),
        ast.If(
            test=ast.Compare(
                left=_name("_c3fr"), ops=[ast.Is()], comparators=[_const(None)]
            ),
            body=[
                ast.Assign(
                    targets=[ast.Name(id="_pc", ctx=ast.Store())], value=_const(0)
                )
            ],
            orelse=restore_body,
        ),
    ]


def build_function(
    original: ast.FunctionDef,
    func_id: str,
    blocks: list[Block],
    local_names: list[str],
) -> ast.FunctionDef:
    """The full transformed FunctionDef (decorators stripped: the transform
    *is* the decoration)."""
    body: list[ast.stmt] = []
    if (
        original.body
        and isinstance(original.body[0], ast.Expr)
        and isinstance(original.body[0].value, ast.Constant)
        and isinstance(original.body[0].value.value, str)
    ):
        body.append(original.body[0])  # keep the docstring
    body.extend(build_prologue(func_id, local_names))
    body.append(build_dispatch(blocks))
    fn = ast.FunctionDef(
        name=original.name,
        args=original.args,
        body=body,
        decorator_list=[],
        returns=None,
        type_comment=None,
        type_params=[],
    )
    ast.fix_missing_locations(fn)
    return fn


def compile_module(
    functions: list[ast.FunctionDef], module_name: str
) -> "ast.Module":
    module = ast.Module(body=list(functions), type_ignores=[])
    ast.fix_missing_locations(module)
    return module
