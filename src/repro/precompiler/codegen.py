"""Code generation: assemble the transformed function (paper Figure 6).

Given a function's basic blocks, emit::

    def f(<original args>):
        _c3fr = _c3_enter('<unit>.<name>')
        if _c3fr is None:
            _pc = 0
        else:
            _pc = _c3fr['_pc']
            if 'x' in _c3fr: x = _c3fr['x']      # one per local (the VDS)
            ...
        while True:
            if _pc == 0:
                ...
            elif _pc == 1:
                ...

The prologue is the restart jump: a restored frame's locals and ``_pc`` are
re-seeded and the dispatch loop lands in the middle of the function.  Names
in the unit's exclusion set (runtime handles such as ``ctx``) are never in
the saved dict, so the fresh argument values survive — they are re-supplied
by the caller's re-executed call expression, layer by layer, exactly like
the paper's rebuilt activation stack.
"""

from __future__ import annotations

import ast

from repro.errors import PrecompilerError
from repro.precompiler.desugar import _const, _name
from repro.precompiler.flatten import Block

ENTER_HELPER = "_c3_enter"
ITER_HELPER = "_c3_iter"


def build_dispatch(blocks: list[Block]) -> ast.While:
    """The ``while True: if _pc == 0: ... elif ...`` dispatch loop."""
    if not blocks:
        raise PrecompilerError("no blocks to dispatch")
    branches: ast.stmt | None = None
    for block in reversed(blocks):
        body = block.stmts if block.stmts else [ast.Pass()]
        test = ast.Compare(
            left=_name("_pc"),
            ops=[ast.Eq()],
            comparators=[_const(block.index)],
        )
        node = ast.If(
            test=test,
            body=body,
            orelse=[branches] if branches is not None else [
                # Unknown _pc: corrupted restore data; fail loudly.
                ast.Raise(
                    exc=ast.Call(
                        func=_name("RuntimeError"),
                        args=[
                            ast.BinOp(
                                left=_const("invalid _pc "),
                                op=ast.Add(),
                                right=ast.Call(
                                    func=_name("str"), args=[_name("_pc")], keywords=[]
                                ),
                            )
                        ],
                        keywords=[],
                    ),
                    cause=None,
                )
            ],
        )
        branches = node
    assert branches is not None
    return ast.While(test=_const(True), body=[branches], orelse=[])


def build_prologue(func_id: str, local_names: list[str]) -> list[ast.stmt]:
    """``_c3fr = _c3_enter(id)`` plus the per-local restore (the VDS read)."""
    restore_body: list[ast.stmt] = [
        ast.Assign(
            targets=[ast.Name(id="_pc", ctx=ast.Store())],
            value=ast.Subscript(
                value=_name("_c3fr"), slice=_const("_pc"), ctx=ast.Load()
            ),
        )
    ]
    for name in local_names:
        restore_body.append(
            ast.If(
                test=ast.Compare(
                    left=_const(name),
                    ops=[ast.In()],
                    comparators=[_name("_c3fr")],
                ),
                body=[
                    ast.Assign(
                        targets=[ast.Name(id=name, ctx=ast.Store())],
                        value=ast.Subscript(
                            value=_name("_c3fr"),
                            slice=_const(name),
                            ctx=ast.Load(),
                        ),
                    )
                ],
                orelse=[],
            )
        )
    return [
        ast.Assign(
            targets=[ast.Name(id="_c3fr", ctx=ast.Store())],
            value=ast.Call(func=_name(ENTER_HELPER), args=[_const(func_id)], keywords=[]),
        ),
        ast.If(
            test=ast.Compare(
                left=_name("_c3fr"), ops=[ast.Is()], comparators=[_const(None)]
            ),
            body=[
                ast.Assign(
                    targets=[ast.Name(id="_pc", ctx=ast.Store())], value=_const(0)
                )
            ],
            orelse=restore_body,
        ),
    ]


def build_function(
    original: ast.FunctionDef,
    func_id: str,
    blocks: list[Block],
    local_names: list[str],
) -> ast.FunctionDef:
    """The full transformed FunctionDef (decorators stripped: the transform
    *is* the decoration)."""
    body: list[ast.stmt] = []
    if (
        original.body
        and isinstance(original.body[0], ast.Expr)
        and isinstance(original.body[0].value, ast.Constant)
        and isinstance(original.body[0].value.value, str)
    ):
        body.append(original.body[0])  # keep the docstring
    body.extend(build_prologue(func_id, local_names))
    body.append(build_dispatch(blocks))
    fn = ast.FunctionDef(
        name=original.name,
        args=original.args,
        body=body,
        decorator_list=[],
        returns=None,
        type_comment=None,
        type_params=[],
    )
    ast.fix_missing_locations(fn)
    return fn


def compile_module(
    functions: list[ast.FunctionDef], module_name: str
) -> "ast.Module":
    module = ast.Module(body=list(functions), type_ignores=[])
    ast.fix_missing_locations(module)
    return module
