"""Statement decomposition and loop desugaring (paper Section 5.1.1).

"In order to insure that the PS correctly reflects which function call is
currently active, the precompiler needs to decompose certain complex
statements, such as a statement containing two calls to checkpointable
functions, or a return statement that makes a call to one."

Two rewrites run before flattening:

1. **Call lifting** — every checkpointable call embedded in a larger
   expression is lifted into its own ``_c3tmp_N = call(...)`` assignment,
   left-to-right, so the flattener can give each call its own basic block.
   (Assumption, as in the paper: sibling subexpressions are side-effect
   free; short-circuit positions were already rejected by validation.)

2. **For desugaring** — every ``for`` loop whose body or iterable contains a
   checkpointable call becomes::

       _c3it_N = _c3_iter(<iterable>)
       while _c3it_N.has_next():
           <target> = _c3it_N.next()
           <body>

   making loop progress an ordinary picklable local.  ``while`` tests
   containing checkpointable calls are rotated into ``while True`` with a
   lifted test and conditional ``break``.

Loops and branches containing no checkpointable call are left untouched —
they execute atomically inside one basic block at native speed.
"""

from __future__ import annotations

import ast
import itertools

from repro.errors import UnsupportedConstructError
from repro.precompiler.analysis import (
    expr_contains_checkpointable,
    is_checkpoint_site,
    stmt_contains_checkpointable,
)


def _is_checkpointable_call(
    node: ast.AST, reaching: set[str], comm_names=None
) -> bool:
    if is_checkpoint_site(node, comm_names):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in reaching
    )


class Desugarer:
    """Per-function desugaring pass."""

    def __init__(self, reaching: set[str], comm_names=None) -> None:
        self.reaching = reaching
        #: Attribute-call checkpoint sites must be rooted at one of these
        #: names (the unit function's ctx/comm parameter); None = permissive.
        self.comm_names = comm_names
        self._tmp_counter = itertools.count()
        self._iter_counter = itertools.count()
        #: Fresh names introduced (added to the function's VDS).
        self.new_locals: list[str] = []

    # ------------------------------------------------------------------ #

    def _fresh_tmp(self) -> str:
        name = f"_c3tmp_{next(self._tmp_counter)}"
        self.new_locals.append(name)
        return name

    def _fresh_iter(self) -> str:
        name = f"_c3it_{next(self._iter_counter)}"
        self.new_locals.append(name)
        return name

    # ------------------------------------------------------------------ #

    def desugar_body(self, body: list[ast.stmt]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in body:
            out.extend(self.desugar_stmt(stmt))
        return out

    def desugar_stmt(self, stmt: ast.stmt) -> list[ast.stmt]:
        if not stmt_contains_checkpointable(stmt, self.reaching, self.comm_names):
            return [stmt]

        if isinstance(stmt, ast.For):
            return self._desugar_for(stmt)
        if isinstance(stmt, ast.While):
            return self._desugar_while(stmt)
        if isinstance(stmt, ast.If):
            return self._desugar_if(stmt)
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return)):
            return self._lift_calls_in_simple_stmt(stmt)
        if isinstance(stmt, (ast.Assert,)):
            return self._lift_calls_in_simple_stmt(stmt)
        raise UnsupportedConstructError(
            type(stmt).__name__,
            getattr(stmt, "lineno", None),
            "statement kind cannot contain a checkpointable call",
        )

    # ------------------------------------------------------------------ #

    def _desugar_for(self, stmt: ast.For) -> list[ast.stmt]:
        if stmt.orelse:
            raise UnsupportedConstructError(
                "for-else containing checkpointable call", stmt.lineno
            )
        pre: list[ast.stmt] = []
        iterable = stmt.iter
        if expr_contains_checkpointable(iterable, self.reaching, self.comm_names):
            iterable, lifted = self._lift_expr(iterable)
            pre.extend(lifted)
        it_name = self._fresh_iter()
        pre.append(
            _assign(it_name, _call(_name("_c3_iter"), [iterable]))
        )
        head_test = _call(_attr(_name(it_name), "has_next"), [])
        next_assign = ast.Assign(
            targets=[stmt.target],
            value=_call(_attr(_name(it_name), "next"), []),
        )
        new_body = [next_assign] + self.desugar_body(stmt.body)
        loop = ast.While(test=head_test, body=new_body, orelse=[])
        return [*pre, loop]

    def _desugar_while(self, stmt: ast.While) -> list[ast.stmt]:
        if stmt.orelse:
            raise UnsupportedConstructError(
                "while-else containing checkpointable call", stmt.lineno
            )
        body = self.desugar_body(stmt.body)
        if expr_contains_checkpointable(stmt.test, self.reaching, self.comm_names):
            test_expr, lifted = self._lift_expr(stmt.test)
            guard = ast.If(
                test=ast.UnaryOp(op=ast.Not(), operand=test_expr),
                body=[ast.Break()],
                orelse=[],
            )
            return [
                ast.While(
                    test=ast.Constant(value=True),
                    body=[*lifted, guard, *body],
                    orelse=[],
                )
            ]
        return [ast.While(test=stmt.test, body=body, orelse=[])]

    def _desugar_if(self, stmt: ast.If) -> list[ast.stmt]:
        pre: list[ast.stmt] = []
        test = stmt.test
        if expr_contains_checkpointable(test, self.reaching, self.comm_names):
            test, pre = self._lift_expr(test)
        return [
            *pre,
            ast.If(
                test=test,
                body=self.desugar_body(stmt.body),
                orelse=self.desugar_body(stmt.orelse),
            ),
        ]

    # ------------------------------------------------------------------ #

    def _lift_calls_in_simple_stmt(self, stmt: ast.stmt) -> list[ast.stmt]:
        """Make the statement's checkpointable call standalone.

        After lifting, the statement either *is* a standalone call form
        (``x = f(...)`` / ``f(...)``) or contains only lifted temps.
        """
        # Standalone forms need no lifting.
        if isinstance(stmt, ast.Expr) and _is_checkpointable_call(
            stmt.value, self.reaching, self.comm_names
        ):
            return [stmt]
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_checkpointable_call(stmt.value, self.reaching, self.comm_names)
            and not any(
                _is_checkpointable_call(n, self.reaching, self.comm_names)
                for n in ast.walk(stmt.value)
                if n is not stmt.value
            )
        ):
            return [stmt]

        lifted: list[ast.stmt] = []
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return [stmt]
            value, lifted = self._lift_expr(stmt.value)
            return [*lifted, ast.Return(value=value)]
        if isinstance(stmt, ast.Expr):
            value, lifted = self._lift_expr(stmt.value)
            return [*lifted, ast.Expr(value=value)]
        if isinstance(stmt, ast.Assign):
            value, lifted = self._lift_expr(stmt.value)
            return [*lifted, ast.Assign(targets=stmt.targets, value=value)]
        if isinstance(stmt, ast.AugAssign):
            value, lifted = self._lift_expr(stmt.value)
            return [*lifted, ast.AugAssign(target=stmt.target, op=stmt.op, value=value)]
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return [stmt]
            value, lifted = self._lift_expr(stmt.value)
            return [*lifted, ast.AnnAssign(
                target=stmt.target, annotation=stmt.annotation,
                value=value, simple=stmt.simple,
            )]
        if isinstance(stmt, ast.Assert):
            test, lifted = self._lift_expr(stmt.test)
            return [*lifted, ast.Assert(test=test, msg=stmt.msg)]
        raise UnsupportedConstructError(type(stmt).__name__, getattr(stmt, "lineno", None))

    def _lift_expr(self, expr: ast.expr) -> tuple[ast.expr, list[ast.stmt]]:
        """Replace each checkpointable call under ``expr`` with a fresh temp,
        returning the rewritten expression and the lifting assignments in
        evaluation order (innermost calls lifted first)."""
        lifted: list[ast.stmt] = []
        desugarer = self

        class Lifter(ast.NodeTransformer):
            def visit_Call(self, node: ast.Call) -> ast.expr:
                # Lift arguments first (inner calls evaluate earlier).
                node = ast.Call(
                    func=self.visit(node.func) if not isinstance(node.func, (ast.Name, ast.Attribute)) else node.func,
                    args=[self.visit(a) for a in node.args],
                    keywords=[
                        ast.keyword(arg=k.arg, value=self.visit(k.value))
                        for k in node.keywords
                    ],
                )
                if _is_checkpointable_call(node, desugarer.reaching, desugarer.comm_names):
                    tmp = desugarer._fresh_tmp()
                    lifted.append(_assign(tmp, node))
                    return _name(tmp)
                return node

            # Do not descend into separate scopes (already validated clean).
            def visit_Lambda(self, node):
                return node

            def visit_ListComp(self, node):
                return node

            visit_SetComp = visit_DictComp = visit_GeneratorExp = visit_ListComp

        new_expr = Lifter().visit(expr)
        return new_expr, lifted


# ---------------------------------------------------------------------- #
# Small AST constructors (codegen helpers shared with flatten/codegen).
# ---------------------------------------------------------------------- #


def _name(ident: str, ctx: ast.expr_context | None = None) -> ast.Name:
    return ast.Name(id=ident, ctx=ctx or ast.Load())


def _attr(value: ast.expr, attr: str) -> ast.Attribute:
    return ast.Attribute(value=value, attr=attr, ctx=ast.Load())


def _call(fn: ast.expr, args: list[ast.expr]) -> ast.Call:
    return ast.Call(func=fn, args=args, keywords=[])


def _assign(target: str, value: ast.expr) -> ast.Assign:
    return ast.Assign(targets=[ast.Name(id=target, ctx=ast.Store())], value=value)


def _const(value) -> ast.Constant:
    return ast.Constant(value=value)
