"""Restartable iterators for desugared ``for`` loops.

The precompiler rewrites every ``for`` loop that can reach a
``potential_checkpoint`` into a ``while`` loop over a :func:`c3_iter`
wrapper.  Unlike native Python iterators, these wrappers are *picklable* —
their full progress state rides inside the checkpointed frame locals, so a
restored frame resumes mid-loop exactly where it left off.

``range`` iterates arithmetically (O(1) state); sequences iterate by index;
anything else is materialised once into a list (documented restriction: a
one-shot generator consumed by a checkpointable loop is snapshotted at loop
entry).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np


class RestartableIterator:
    """Common interface: ``has_next()`` / ``next()``; picklable."""

    def has_next(self) -> bool:
        raise NotImplementedError

    def next(self) -> Any:
        raise NotImplementedError


class RangeIterator(RestartableIterator):
    """O(1)-state iterator over a range."""

    def __init__(self, r: range) -> None:
        self.start = r.start
        self.stop = r.stop
        self.step = r.step
        self.index = 0
        self._length = len(r)

    def has_next(self) -> bool:
        return self.index < self._length

    def next(self) -> int:
        if not self.has_next():
            raise StopIteration
        value = self.start + self.index * self.step
        self.index += 1
        return value


class SequenceIterator(RestartableIterator):
    """Index-based iterator over a concrete sequence.

    The sequence itself is pickled with the iterator; because the whole rank
    state goes into one pickle, a frame-local alias of the same list remains
    the *same object* after restore.
    """

    def __init__(self, seq) -> None:
        self.seq = seq
        self.index = 0

    def has_next(self) -> bool:
        return self.index < len(self.seq)

    def next(self) -> Any:
        if not self.has_next():
            raise StopIteration
        value = self.seq[self.index]
        self.index += 1
        return value


def c3_iter(obj: Iterable) -> RestartableIterator:
    """Wrap any iterable in a restartable, picklable iterator."""
    if isinstance(obj, RestartableIterator):
        return obj
    if isinstance(obj, range):
        return RangeIterator(obj)
    if isinstance(obj, (list, tuple, str, bytes)):
        return SequenceIterator(obj)
    if isinstance(obj, np.ndarray):
        return SequenceIterator(obj)
    if isinstance(obj, dict):
        return SequenceIterator(list(obj))
    if isinstance(obj, (set, frozenset)):
        return SequenceIterator(sorted(obj) if _sortable(obj) else list(obj))
    # Generic one-shot iterable: materialise (checkpoint-visible snapshot).
    return SequenceIterator(list(obj))


def _sortable(obj) -> bool:
    try:
        sorted(obj)
        return True
    except TypeError:
        return False
