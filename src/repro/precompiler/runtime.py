"""Runtime support for precompiled (transformed) functions.

The paper maintains an explicit Position Stack (PS) and Variable Descriptor
Stack (VDS) because C offers no stack introspection.  Python does, so this
runtime realises the same architecture lazily:

* **PS** — at checkpoint time, :meth:`C3StackRuntime.capture` walks the live
  Python frames of the calling thread; every frame belonging to a
  transformed function contributes ``(function id, frame locals)``.  The
  transformed function's ``_pc`` local *is* the position label: it names the
  basic block whose first statement is the checkpointable call (or the
  ``potential_checkpoint``) currently active in that frame.
* **VDS** — the captured ``f_locals`` dict plays the VDS role; names listed
  in the unit's ``exclude`` set (runtime handles like ``ctx``) are skipped
  and re-supplied naturally by re-executed call expressions during restore.

On restart, each transformed function's prologue calls :func:`c3_enter`;
while a restore is active this pops the next saved frame, re-seeds the
locals and the ``_pc``, and the dispatch loop jumps straight back into the
middle of the function — re-executing the active call, which re-enters the
next function down, until the innermost frame's ``potential_checkpoint``
block is reached and normal execution resumes (the Figure-6 mechanism).

One runtime instance is active per thread (rank), via a ``threading.local``.
"""

from __future__ import annotations

import sys
import threading
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import RecoveryError
from repro.simmpi import coop

if TYPE_CHECKING:  # pragma: no cover
    from repro.precompiler.api import PrecompiledUnit

#: One saved frame: (function id, locals-dict including '_pc').
FrameRecord = tuple[str, dict[str, Any]]

_tls = threading.local()


def current_runtime() -> Optional["C3StackRuntime"]:
    """The calling rank's active runtime.

    Under the cooperative core every rank shares one OS thread, so "which
    rank is executing" is the coop current-proc registry, not the thread;
    each :class:`~repro.simmpi.process.Proc` carries its runtime in its
    ``c3_runtime`` slot.  Rank *threads* (the threaded core, or plain
    unit-test calls) fall back to the historical thread-local.
    """
    proc = coop.current_proc()
    if proc is not None:
        return proc.c3_runtime
    return getattr(_tls, "runtime", None)


def c3_enter(func_id: str) -> Optional[dict[str, Any]]:
    """Prologue hook of every transformed function.

    Returns the saved frame dict while a restore is in progress, or None
    for a fresh activation.  Calling a transformed function with no active
    runtime is legal (plain execution, no checkpoint ability).
    """
    rt = current_runtime()
    if rt is None or not rt.restoring:
        return None
    return rt._pop_frame(func_id)


class C3StackRuntime:
    """Per-rank stack capture/restore engine."""

    def __init__(self, unit: "PrecompiledUnit") -> None:
        self.unit = unit
        self._restore_stack: list[FrameRecord] = []
        self.restoring = False
        #: Capture/restore cycle counters (observability).
        self.captures = 0
        self.restores = 0

    # ------------------------------------------------------------------ #

    def activate(self) -> "C3StackRuntime":
        """Install as the calling rank's active runtime.

        When the cooperative core is resuming a rank generator the runtime
        lands in that rank's ``Proc.c3_runtime`` slot; otherwise (rank
        threads, plain test calls) in the thread-local, as always.
        """
        proc = coop.current_proc()
        if proc is not None:
            proc.c3_runtime = self
        else:
            _tls.runtime = self
        return self

    def deactivate(self) -> None:
        proc = coop.current_proc()
        if proc is not None:
            if proc.c3_runtime is self:
                proc.c3_runtime = None
            return
        if getattr(_tls, "runtime", None) is self:
            _tls.runtime = None

    # ------------------------------------------------------------------ #

    def capture(self) -> list[FrameRecord]:
        """Walk the live stack; returns frame records outermost-first.

        Called (indirectly) from inside ``potential_checkpoint`` via the
        protocol layer's state provider, so every transformed frame of the
        current thread is live and its ``_pc`` names the active block.
        """
        self.captures += 1
        exclude = self.unit.exclude_locals
        records: list[FrameRecord] = []
        frame = sys._getframe()
        while frame is not None:
            func_id = self.unit.code_map.get(frame.f_code)
            if func_id is not None:
                locals_copy = {
                    name: value
                    for name, value in frame.f_locals.items()
                    if name not in exclude and name != "_c3fr"
                }
                if "_pc" not in locals_copy:
                    raise RecoveryError(
                        f"transformed frame {func_id} has no _pc — "
                        "capture outside the dispatch loop?"
                    )
                records.append((func_id, locals_copy))
            frame = frame.f_back
        records.reverse()
        return records

    # ------------------------------------------------------------------ #

    def begin_restore(self, frames: list[FrameRecord]) -> None:
        """Arm the restore: the next entries into transformed functions will
        consume these records outermost-first."""
        if not frames:
            self.restoring = False
            return
        self._restore_stack = list(frames)
        self.restoring = True
        self.restores += 1

    def _pop_frame(self, func_id: str) -> dict[str, Any]:
        if not self._restore_stack:
            raise RecoveryError(
                f"restore stack empty but {func_id} still asked for a frame"
            )
        saved_id, saved_locals = self._restore_stack.pop(0)
        if saved_id != func_id:
            raise RecoveryError(
                f"restore mismatch: stack says {saved_id!r}, entering {func_id!r}"
            )
        if not self._restore_stack:
            # Deepest frame reached: restore complete, run free from here.
            self.restoring = False
        return saved_locals
