"""Static analysis for the precompiler (paper Section 5.1.1).

"The precompiler only needs to insert labels at function calls that can
eventually lead to a potentialCheckpoint location."  This module computes
that *checkpoint-reaching* set over a compilation unit:

* a call site is a **checkpoint site** if it invokes a callable named
  ``potential_checkpoint`` (plain or as a method, e.g.
  ``ctx.potential_checkpoint()``);
* a call site is a **checkpointable call** if it invokes, by plain name,
  another function of the unit that reaches a checkpoint;
* a function *reaches* if it contains a checkpoint site or a checkpointable
  call (computed to fixpoint over the unit's call graph, which handles
  mutual recursion).

The analysis also enumerates every local name a function can bind (the VDS
membership) and validates the supported subset, rejecting checkpointable
calls in positions the transformation cannot relabel (inside ``try``/
``with``/nested functions/comprehensions/boolean short-circuits).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.errors import UnsupportedConstructError

CHECKPOINT_NAME = "potential_checkpoint"

#: Call names that may take a local checkpoint inside the callee.  Barriers
#: are checkpoint sites because the paper's epoch-alignment rule (Section
#: 4.5) forces lagging processes to checkpoint just before executing one:
#: "This solution requires the precompiler to insert the all-to-all
#: communication and the potential checkpointing calls before each barrier."
#: Giving every barrier call its own labelled block realises exactly that.
CHECKPOINT_SITE_NAMES = frozenset({CHECKPOINT_NAME, "barrier"})


def is_checkpoint_site(node: ast.AST) -> bool:
    """True if ``node`` is a call that can take a local checkpoint."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Name) and fn.id in CHECKPOINT_SITE_NAMES:
        return True
    if isinstance(fn, ast.Attribute) and fn.attr in CHECKPOINT_SITE_NAMES:
        return True
    return False


def called_unit_functions(node: ast.AST, unit_names: set[str]) -> set[str]:
    """Names of unit functions invoked by plain name anywhere under node."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id in unit_names:
                out.add(sub.func.id)
    return out


@dataclass
class FunctionInfo:
    """Analysis results for one unit function."""

    name: str
    tree: ast.FunctionDef
    has_checkpoint_site: bool = False
    callees: set[str] = field(default_factory=set)
    reaches: bool = False
    local_names: list[str] = field(default_factory=list)


class UnitAnalysis:
    """Whole-unit analysis over a set of function ASTs."""

    def __init__(self, functions: dict[str, ast.FunctionDef]) -> None:
        self.infos: dict[str, FunctionInfo] = {}
        unit_names = set(functions)
        for name, tree in functions.items():
            info = FunctionInfo(name=name, tree=tree)
            info.has_checkpoint_site = any(
                is_checkpoint_site(n) for n in ast.walk(tree)
            )
            info.callees = called_unit_functions(tree, unit_names)
            info.local_names = discover_locals(tree)
            self.infos[name] = info
        self._compute_reaching()

    def _compute_reaching(self) -> None:
        """Fixpoint: f reaches iff it has a site or calls a reaching callee."""
        for info in self.infos.values():
            info.reaches = info.has_checkpoint_site
        changed = True
        while changed:
            changed = False
            for info in self.infos.values():
                if info.reaches:
                    continue
                if any(
                    self.infos[c].reaches
                    for c in info.callees
                    if c in self.infos
                ):
                    info.reaches = True
                    changed = True

    @property
    def reaching(self) -> set[str]:
        return {n for n, i in self.infos.items() if i.reaches}

    def checkpointable_callees(self, name: str) -> set[str]:
        """Unit functions whose call sites in ``name`` need labels."""
        return {c for c in self.infos[name].callees if self.infos[c].reaches}


def stmt_contains_checkpointable(
    stmt: ast.stmt, reaching: set[str]
) -> bool:
    """Does this statement (recursively) contain a labelled call?"""
    for node in ast.walk(stmt):
        if is_checkpoint_site(node):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in reaching
        ):
            return True
    return False


def expr_contains_checkpointable(expr: ast.expr, reaching: set[str]) -> bool:
    for node in ast.walk(expr):
        if is_checkpoint_site(node):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in reaching
        ):
            return True
    return False


def discover_locals(tree: ast.FunctionDef) -> list[str]:
    """Every name the function can bind: args, assignment targets, for
    targets, withitems, walrus targets.  Nested function scopes excluded."""
    names: list[str] = []
    seen: set[str] = set()

    def add(name: str) -> None:
        if name not in seen:
            seen.add(name)
            names.append(name)

    args = tree.args
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        add(a.arg)
    if args.vararg:
        add(args.vararg.arg)
    if args.kwarg:
        add(args.kwarg.arg)

    class Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            add(node.name)  # the def binds its name; don't descend

        def visit_AsyncFunctionDef(self, node) -> None:
            add(node.name)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass  # separate scope

        def visit_ListComp(self, node) -> None:
            pass  # comprehension scopes are separate in py3

        visit_SetComp = visit_DictComp = visit_GeneratorExp = visit_ListComp

        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                add(node.id)

        def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
            add(node.target.id)
            self.visit(node.value)

        def visit_Global(self, node: ast.Global) -> None:
            raise UnsupportedConstructError(
                "global", node.lineno,
                "use the globals registry (repro.statesave.globals_registry)",
            )

        def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
            raise UnsupportedConstructError("nonlocal", node.lineno)

    collector = Collector()
    for stmt in tree.body:
        collector.visit(stmt)
    return names


def validate_supported(tree: ast.FunctionDef, reaching: set[str]) -> None:
    """Reject checkpointable calls in untransformable positions."""

    def check_no_reach(node: ast.AST, construct: str) -> None:
        for sub in ast.walk(node):
            if is_checkpoint_site(sub) or (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in reaching
            ):
                raise UnsupportedConstructError(
                    construct,
                    getattr(node, "lineno", None),
                    "checkpointable calls cannot be labelled here",
                )

    for node in ast.walk(tree):
        if isinstance(node, (ast.Try,)):
            check_no_reach(node, "try containing checkpointable call")
        elif isinstance(node, ast.With):
            check_no_reach(node, "with containing checkpointable call")
        elif isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            check_no_reach(node, "nested scope containing checkpointable call")
        elif isinstance(node, ast.FunctionDef) and node is not tree:
            check_no_reach(node, "nested def containing checkpointable call")
        elif isinstance(node, (ast.BoolOp, ast.IfExp)):
            check_no_reach(node, "short-circuit expression containing checkpointable call")
        elif isinstance(node, (ast.AsyncFunctionDef, ast.AsyncFor, ast.AsyncWith, ast.Await)):
            raise UnsupportedConstructError("async construct", getattr(node, "lineno", None))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            raise UnsupportedConstructError("generator function", getattr(node, "lineno", None))
