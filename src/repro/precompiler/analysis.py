"""Static analysis for the precompiler (paper Section 5.1.1).

"The precompiler only needs to insert labels at function calls that can
eventually lead to a potentialCheckpoint location."  This module computes
that *checkpoint-reaching* set over a compilation unit:

* a call site is a **checkpoint site** if it invokes a callable named
  ``potential_checkpoint`` (plain or as a method, e.g.
  ``ctx.potential_checkpoint()``);
* a call site is a **checkpointable call** if it invokes, by plain name,
  another function of the unit that reaches a checkpoint;
* a function *reaches* if it contains a checkpoint site or a checkpointable
  call (computed to fixpoint over the unit's call graph, which handles
  mutual recursion).

Method-call matches are anchored to the function's *communication root* —
the ``ctx``/``comm`` parameter that carries the protocol layer — so a
user's ``lock.barrier()`` is an ordinary call, not a checkpoint site (see
:func:`comm_roots`).

The analysis also enumerates every local name a function can bind (the VDS
membership) and validates the supported subset, rejecting checkpointable
calls in positions the transformation cannot relabel (inside ``try``/
``with``/nested functions/comprehensions/boolean short-circuits).

Two reporting modes exist for subset validation: the historical *raise*
mode (first violation aborts with :class:`UnsupportedConstructError`) and
*collect* mode, where every violation in the unit is appended to a caller
list as a :class:`Violation` carrying the offending node's full span —
this is what :mod:`repro.check` renders as ``RPR00x`` diagnostics and what
lets the precompiler report all violations at once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import UnsupportedConstructError

CHECKPOINT_NAME = "potential_checkpoint"

#: Call names that may take a local checkpoint inside the callee.  Barriers
#: are checkpoint sites because the paper's epoch-alignment rule (Section
#: 4.5) forces lagging processes to checkpoint just before executing one:
#: "This solution requires the precompiler to insert the all-to-all
#: communication and the potential checkpointing calls before each barrier."
#: Giving every barrier call its own labelled block realises exactly that.
CHECKPOINT_SITE_NAMES = frozenset({CHECKPOINT_NAME, "barrier"})

#: Parameter names conventionally carrying the protocol layer.  A method
#: call only counts as a checkpoint site (or, in :mod:`repro.check`, a
#: communication call) when its receiver chain is rooted at one of these.
COMM_PARAM_NAMES = ("ctx", "comm", "mpi")


def comm_roots(tree: ast.FunctionDef) -> frozenset[str]:
    """The function's communication-root parameter names.

    Parameters named ``ctx``/``comm``/``mpi`` qualify; when none is, the
    first positional parameter is assumed to be the context (the unit
    convention throughout this codebase), so units that spell the context
    differently still analyse correctly.  A function with no parameters
    has no comm roots — none of its method calls can be checkpoint sites.
    """
    args = tree.args
    params = [
        a.arg
        for a in (list(args.posonlyargs) + list(args.args))
    ]
    named = frozenset(p for p in params if p in COMM_PARAM_NAMES)
    if named:
        return named
    if params:
        return frozenset({params[0]})
    return frozenset()


def attr_root(node: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute chain (``ctx.mpi.barrier`` → ``ctx``),
    or None when the chain is rooted in a call/subscript/constant."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_checkpoint_site(
    node: ast.AST, comm_names: Optional[frozenset[str]] = None
) -> bool:
    """True if ``node`` is a call that can take a local checkpoint.

    With ``comm_names`` given, attribute calls only match when rooted at
    one of those names (``ctx.barrier()`` yes, ``lock.barrier()`` no).
    Without it, any receiver matches — the historical permissive mode kept
    for callers that have no per-function context.
    """
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Name) and fn.id in CHECKPOINT_SITE_NAMES:
        return True
    if isinstance(fn, ast.Attribute) and fn.attr in CHECKPOINT_SITE_NAMES:
        if comm_names is None:
            return True
        return attr_root(fn) in comm_names
    return False


#: Call names that declare module globals as managed checkpointable state
#: (see :func:`repro.statesave.checkpointable_state`).
REGISTRATION_NAMES = frozenset({"checkpointable_state"})


def module_registered_globals(tree: ast.Module) -> set[str]:
    """Module-global names registered via ``checkpointable_state("NAME")``.

    Scans top-level expression statements for calls whose callee is named
    ``checkpointable_state`` (bare or at the end of an attribute chain)
    and collects their string-constant arguments.  The static checker
    treats registered names as managed state: mutating them is no longer a
    virtual-data-segment escape (RPR030/033/034), because the globals
    registry snapshots and restores them with every checkpoint.
    """
    out: set[str] = set()
    for node in tree.body:
        if not (isinstance(node, ast.Expr) and isinstance(node.value,
                                                          ast.Call)):
            continue
        func = node.value.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            continue
        if name not in REGISTRATION_NAMES:
            continue
        for arg in node.value.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                out.add(arg.value)
    return out


def called_unit_functions(node: ast.AST, unit_names: set[str]) -> set[str]:
    """Names of unit functions invoked by plain name anywhere under node."""
    return set(unit_call_sites(node, unit_names))


def unit_call_sites(
    node: ast.AST, unit_names: set[str]
) -> dict[str, list[ast.Call]]:
    """Every plain-name call into the unit, callee → call nodes (document
    order).  The interprocedural checks in :mod:`repro.check` walk these
    edges instead of re-discovering them."""
    out: dict[str, list[ast.Call]] = {}
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id in unit_names:
                out.setdefault(sub.func.id, []).append(sub)
    return out


@dataclass(frozen=True)
class Violation:
    """One supported-subset violation, with its full source span.

    ``construct`` keeps the historical human-readable keyword (``"try
    containing checkpointable call"`` …) that exception messages and the
    ``RPR00x`` code mapping key off.
    """

    construct: str
    function: str
    lineno: Optional[int] = None
    col_offset: Optional[int] = None
    hint: str = ""

    def describe(self) -> str:
        where = ""
        if self.lineno is not None:
            where = f" at line {self.lineno}"
            if self.col_offset is not None:
                where += f":{self.col_offset + 1}"
        fn = f" in {self.function!r}" if self.function else ""
        extra = f" ({self.hint})" if self.hint else ""
        return f"{self.construct!r}{fn}{where}{extra}"


def _violation(
    construct: str, node: ast.AST, function: str, hint: str = ""
) -> Violation:
    return Violation(
        construct=construct,
        function=function,
        lineno=getattr(node, "lineno", None),
        col_offset=getattr(node, "col_offset", None),
        hint=hint,
    )


@dataclass
class FunctionInfo:
    """Analysis results for one unit function."""

    name: str
    tree: ast.FunctionDef
    has_checkpoint_site: bool = False
    callees: set[str] = field(default_factory=set)
    reaches: bool = False
    local_names: list[str] = field(default_factory=list)
    #: Names the function's checkpoint sites / comm calls must be rooted at.
    comm_names: frozenset[str] = frozenset()
    #: Plain-name calls into other unit functions, callee → call nodes.
    call_sites: dict[str, list[ast.Call]] = field(default_factory=dict)


class UnitAnalysis:
    """Whole-unit analysis over a set of function ASTs.

    ``collect`` switches subset violations found during local-name
    discovery (``global``/``nonlocal``) from raising to appending — the
    all-violations reporting path.
    """

    def __init__(
        self,
        functions: dict[str, ast.FunctionDef],
        collect: Optional[list[Violation]] = None,
    ) -> None:
        self.infos: dict[str, FunctionInfo] = {}
        unit_names = set(functions)
        for name, tree in functions.items():
            info = FunctionInfo(name=name, tree=tree)
            info.comm_names = comm_roots(tree)
            info.has_checkpoint_site = any(
                is_checkpoint_site(n, info.comm_names) for n in ast.walk(tree)
            )
            info.call_sites = unit_call_sites(tree, unit_names)
            info.callees = set(info.call_sites)
            info.local_names = discover_locals(
                tree,
                on_violation=(
                    None if collect is None
                    else lambda c, n, h, _fn=name: collect.append(
                        _violation(c, n, _fn, h)
                    )
                ),
            )
            self.infos[name] = info
        self._compute_reaching()

    def _compute_reaching(self) -> None:
        """Fixpoint: f reaches iff it has a site or calls a reaching callee."""
        for info in self.infos.values():
            info.reaches = info.has_checkpoint_site
        changed = True
        while changed:
            changed = False
            for info in self.infos.values():
                if info.reaches:
                    continue
                if any(
                    self.infos[c].reaches
                    for c in info.callees
                    if c in self.infos
                ):
                    info.reaches = True
                    changed = True

    @property
    def reaching(self) -> set[str]:
        return {n for n, i in self.infos.items() if i.reaches}

    def checkpointable_callees(self, name: str) -> set[str]:
        """Unit functions whose call sites in ``name`` need labels."""
        return {c for c in self.infos[name].callees if self.infos[c].reaches}


def stmt_contains_checkpointable(
    stmt: ast.stmt,
    reaching: set[str],
    comm_names: Optional[frozenset[str]] = None,
) -> bool:
    """Does this statement (recursively) contain a labelled call?"""
    for node in ast.walk(stmt):
        if is_checkpoint_site(node, comm_names):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in reaching
        ):
            return True
    return False


def expr_contains_checkpointable(
    expr: ast.expr,
    reaching: set[str],
    comm_names: Optional[frozenset[str]] = None,
) -> bool:
    for node in ast.walk(expr):
        if is_checkpoint_site(node, comm_names):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in reaching
        ):
            return True
    return False


def discover_locals(
    tree: ast.FunctionDef,
    on_violation: Optional[Callable[[str, ast.AST, str], None]] = None,
) -> list[str]:
    """Every name the function can bind: args, assignment targets, for
    targets, withitems, walrus targets.  Nested function scopes excluded.

    ``global``/``nonlocal`` are outside the supported subset: the default
    raises :class:`UnsupportedConstructError` on the first one;
    ``on_violation(construct, node, hint)`` collects them instead.
    """
    names: list[str] = []
    seen: set[str] = set()

    def add(name: str) -> None:
        if name not in seen:
            seen.add(name)
            names.append(name)

    def reject(construct: str, node: ast.AST, hint: str = "") -> None:
        if on_violation is not None:
            on_violation(construct, node, hint)
            return
        raise UnsupportedConstructError(
            construct,
            getattr(node, "lineno", None),
            hint,
            col_offset=getattr(node, "col_offset", None),
            function=tree.name,
        )

    args = tree.args
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        add(a.arg)
    if args.vararg:
        add(args.vararg.arg)
    if args.kwarg:
        add(args.kwarg.arg)

    class Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            add(node.name)  # the def binds its name; don't descend

        def visit_AsyncFunctionDef(self, node) -> None:
            add(node.name)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass  # separate scope

        def visit_ListComp(self, node) -> None:
            pass  # comprehension scopes are separate in py3

        visit_SetComp = visit_DictComp = visit_GeneratorExp = visit_ListComp

        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                add(node.id)

        def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
            add(node.target.id)
            self.visit(node.value)

        def visit_Global(self, node: ast.Global) -> None:
            reject(
                "global", node,
                "use the globals registry (repro.statesave.globals_registry)",
            )

        def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
            reject("nonlocal", node)

    collector = Collector()
    for stmt in tree.body:
        collector.visit(stmt)
    return names


def validate_supported(
    tree: ast.FunctionDef,
    reaching: set[str],
    comm_names: Optional[frozenset[str]] = None,
    collect: Optional[list[Violation]] = None,
) -> None:
    """Reject checkpointable calls in untransformable positions.

    Raise mode (``collect=None``) aborts on the first violation, as the
    precompiler historically did; collect mode appends every violation in
    the function so callers can report them all at once.
    """
    found: list[Violation] = []

    def reject(construct: str, node: ast.AST, hint: str = "") -> None:
        found.append(_violation(construct, node, tree.name, hint))
        if collect is None:
            raise UnsupportedConstructError(
                construct,
                getattr(node, "lineno", None),
                hint,
                col_offset=getattr(node, "col_offset", None),
                function=tree.name,
            )

    def check_no_reach(node: ast.AST, construct: str) -> None:
        for sub in ast.walk(node):
            if is_checkpoint_site(sub, comm_names) or (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in reaching
            ):
                reject(
                    construct, node,
                    "checkpointable calls cannot be labelled here",
                )
                return

    for node in ast.walk(tree):
        if isinstance(node, (ast.Try,)):
            check_no_reach(node, "try containing checkpointable call")
        elif isinstance(node, ast.With):
            check_no_reach(node, "with containing checkpointable call")
        elif isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            check_no_reach(node, "nested scope containing checkpointable call")
        elif isinstance(node, ast.FunctionDef) and node is not tree:
            check_no_reach(node, "nested def containing checkpointable call")
        elif isinstance(node, (ast.BoolOp, ast.IfExp)):
            check_no_reach(node, "short-circuit expression containing checkpointable call")
        elif isinstance(node, (ast.For, ast.While)) and node.orelse:
            # The desugarer cannot rewrite a loop that needs restartable
            # iteration but carries an else arm; catch it here so the
            # violation has a span instead of failing mid-transform.
            kind = "while" if isinstance(node, ast.While) else "for"
            if stmt_contains_checkpointable(node, reaching, comm_names):
                reject(f"{kind}-else containing checkpointable call", node)
        elif isinstance(node, (ast.AsyncFunctionDef, ast.AsyncFor, ast.AsyncWith, ast.Await)):
            reject("async construct", node)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            reject("generator function", node)
    if collect is not None:
        collect.extend(found)
