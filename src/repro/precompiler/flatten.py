"""Basic-block flattening: the label/goto machinery (paper Figure 6).

C3 inserts C labels at checkpointable call sites and ``goto``s to them on
restart.  Python has no ``goto``, so the flattener compiles each
checkpoint-reaching function into *basic blocks* dispatched by an explicit
program counter::

    while True:
        if _pc == 0:   ...straight-line statements...; _pc = 3; continue
        elif _pc == 1:  ...
        ...

Jumping to any block — including into the middle of a loop — is just setting
``_pc``, which is exactly the goto the restart path needs.  The ``_pc``
value of each live frame, captured with its locals, is the paper's Position
Stack entry.

Only statements containing checkpointable calls force block boundaries:

* a checkpointable call starts a fresh block (so restoring to that block
  re-executes the call and nothing before it);
* ``if``/``while`` containing such calls are exploded into test/arm/join
  blocks with conditional jumps;
* everything else stays as uninterpreted straight-line statements.

``break``/``continue`` belonging to an exploded loop are rewritten into
jumps; those belonging to intact (atomic) inner loops are left alone.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.errors import PrecompilerError, UnsupportedConstructError
from repro.precompiler.analysis import stmt_contains_checkpointable
from repro.precompiler.desugar import _const


@dataclass
class Block:
    """One basic block: straight-line statements, then a terminator."""

    index: int
    stmts: list[ast.stmt] = field(default_factory=list)
    #: Unconditional successor (block index) if not ended by return/cond.
    next: int | None = None
    terminated: bool = False


def _jump(target: int) -> list[ast.stmt]:
    """``_pc = target; continue``"""
    return [
        ast.Assign(targets=[ast.Name(id="_pc", ctx=ast.Store())], value=_const(target)),
        ast.Continue(),
    ]


def _cond_jump(test: ast.expr, then_target: int, else_target: int) -> ast.stmt:
    return ast.If(test=test, body=_jump(then_target), orelse=_jump(else_target))


class _LoopJumpRewriter(ast.NodeTransformer):
    """Rewrite break/continue of an exploded loop inside atomic statements.

    Does not descend into intact ``while``/``for`` loops (their break/
    continue bind tighter) nor into nested function scopes.
    """

    def __init__(self, head: int, exit: int) -> None:
        self.head = head
        self.exit = exit

    def visit_Break(self, node: ast.Break):
        return _jump(self.exit)

    def visit_Continue(self, node: ast.Continue):
        return _jump(self.head)

    def visit_While(self, node: ast.While):
        return node  # inner loop: do not rewrite its break/continue

    def visit_For(self, node: ast.For):
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        return node

    def visit_Lambda(self, node: ast.Lambda):
        return node


@dataclass
class _LoopCtx:
    head: int
    exit: int


class Flattener:
    """Flatten one desugared function body into blocks."""

    def __init__(self, reaching: set[str], comm_names=None) -> None:
        self.reaching = reaching
        #: Checkpoint-site attribute calls must be rooted at these names
        #: (the function's ctx/comm parameter); None = permissive.
        self.comm_names = comm_names
        self.blocks: list[Block] = []
        self._loop_stack: list[_LoopCtx] = []

    # ------------------------------------------------------------------ #

    def new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def flatten_function_body(self, body: list[ast.stmt]) -> list[Block]:
        entry = self.new_block()
        last = self._flatten_body(body, entry)
        if not last.terminated:
            last.stmts.append(ast.Return(value=_const(None)))
            last.terminated = True
        return self.blocks

    # ------------------------------------------------------------------ #

    def _flatten_body(self, stmts: list[ast.stmt], cur: Block) -> Block:
        """Emit ``stmts`` starting in ``cur``; returns the block control
        flow falls out of."""
        for stmt in stmts:
            if cur.terminated:
                # Unreachable trailing code (after return/break): drop it,
                # matching CPython's own dead-code tolerance.
                break
            if not stmt_contains_checkpointable(stmt, self.reaching, self.comm_names):
                cur = self._emit_atomic(stmt, cur)
                continue
            if isinstance(stmt, (ast.Assign, ast.Expr)):
                cur = self._emit_call_stmt(stmt, cur)
            elif isinstance(stmt, ast.If):
                cur = self._emit_if(stmt, cur)
            elif isinstance(stmt, ast.While):
                cur = self._emit_while(stmt, cur)
            elif isinstance(stmt, ast.Return):
                raise PrecompilerError(
                    "desugar pass should have lifted calls out of return"
                )
            else:
                raise UnsupportedConstructError(
                    type(stmt).__name__, getattr(stmt, "lineno", None),
                    "cannot flatten this statement kind",
                )
        return cur

    def _emit_atomic(self, stmt: ast.stmt, cur: Block) -> Block:
        if self._loop_stack:
            ctx = self._loop_stack[-1]
            rewritten = _LoopJumpRewriter(ctx.head, ctx.exit).visit(stmt)
            stmts = rewritten if isinstance(rewritten, list) else [rewritten]
        else:
            stmts = [stmt]
        for s in stmts:
            ast.fix_missing_locations(s)
            cur.stmts.append(s)
            if isinstance(s, (ast.Return, ast.Continue)):
                cur.terminated = True
                break
        return cur

    def _emit_call_stmt(self, stmt: ast.stmt, cur: Block) -> Block:
        """A standalone checkpointable call: must begin its own block so a
        restored ``_pc`` re-executes exactly this call (the Figure-6 label)."""
        if cur.stmts:
            target = self.new_block()
            cur.stmts.extend(_jump(target.index))
            cur.terminated = True
            cur = target
        cur.stmts.append(stmt)
        return cur

    def _emit_if(self, stmt: ast.If, cur: Block) -> Block:
        then_block = self.new_block()
        else_block = self.new_block() if stmt.orelse else None
        join = self.new_block()
        cur.stmts.append(
            _cond_jump(
                stmt.test,
                then_block.index,
                else_block.index if else_block else join.index,
            )
        )
        cur.terminated = True
        end_then = self._flatten_body(stmt.body, then_block)
        if not end_then.terminated:
            end_then.stmts.extend(_jump(join.index))
            end_then.terminated = True
        if else_block is not None:
            end_else = self._flatten_body(stmt.orelse, else_block)
            if not end_else.terminated:
                end_else.stmts.extend(_jump(join.index))
                end_else.terminated = True
        return join

    def _emit_while(self, stmt: ast.While, cur: Block) -> Block:
        head = self.new_block()
        body = self.new_block()
        exit_block = self.new_block()
        cur.stmts.extend(_jump(head.index))
        cur.terminated = True
        if isinstance(stmt.test, ast.Constant) and stmt.test.value is True:
            head.stmts.extend(_jump(body.index))
        else:
            head.stmts.append(_cond_jump(stmt.test, body.index, exit_block.index))
        head.terminated = True
        self._loop_stack.append(_LoopCtx(head=head.index, exit=exit_block.index))
        try:
            end_body = self._flatten_body(stmt.body, body)
        finally:
            self._loop_stack.pop()
        if not end_body.terminated:
            end_body.stmts.extend(_jump(head.index))
            end_body.terminated = True
        return exit_block
