"""The precompiler: automated application-level state saving (Section 5.1)."""

from repro.precompiler.api import PrecompiledApp, PrecompiledUnit, Precompiler
from repro.precompiler.iterators import RangeIterator, RestartableIterator, SequenceIterator, c3_iter
from repro.precompiler.runtime import C3StackRuntime, c3_enter, current_runtime

__all__ = [
    "C3StackRuntime",
    "PrecompiledApp",
    "PrecompiledUnit",
    "Precompiler",
    "RangeIterator",
    "RestartableIterator",
    "SequenceIterator",
    "c3_enter",
    "c3_iter",
    "current_runtime",
]
