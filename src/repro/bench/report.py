"""Rendering of Figure-8 charts and the overhead table as text.

The paper presents three bar charts (running time per problem size, four
bars each, annotated with application-state size).  ``render_chart``
produces the same information as an aligned text table plus a normalised
overhead summary, which EXPERIMENTS.md captures verbatim.
"""

from __future__ import annotations

from repro.bench.harness import ChartResult, PointResult
from repro.runtime.config import Variant

_VARIANT_SHORT = {
    Variant.UNMODIFIED: "unmodified",
    Variant.PIGGYBACK: "piggyback",
    Variant.NO_APP_STATE: "no-app-state",
    Variant.FULL: "full-ckpt",
}

_PAPER_TITLES = {
    "dense_cg": "Dense Conjugate Gradient",
    "laplace": "Laplace Solver",
    "neurosys": "Neurosys",
}


def render_point(result: PointResult) -> list[str]:
    lines = []
    base = result.baseline
    for variant, m in result.measurements.items():
        overhead = "" if variant is Variant.UNMODIFIED else (
            f"  (+{m.overhead_pct(base):.1f}%)"
            if m.overhead_pct(base) >= 0
            else f"  ({m.overhead_pct(base):.1f}%)"
        )
        extras = ""
        if m.checkpoints_committed:
            extras = (
                f"  ckpts={m.checkpoints_committed}"
                f" stored={_fmt_bytes(m.storage_bytes)}"
            )
        lines.append(
            f"    {_VARIANT_SHORT[variant]:<13} {m.wall_seconds*1e3:9.1f} ms"
            f"{overhead}{extras}"
        )
    return lines


def render_chart(chart: ChartResult) -> str:
    title = _PAPER_TITLES.get(chart.app, chart.app)
    out = [f"=== Figure 8: {title} ===", ""]
    for result in chart.points:
        out.append(
            f"  {result.point.label}"
            f"  [paper app-state: {result.point.paper_state};"
            f" scaled params: {result.point.params}]"
        )
        out.extend(render_point(result))
        out.append("")
    return "\n".join(out)


def render_overhead_table(charts: list[ChartResult]) -> str:
    """The Section 6.2 in-text overhead summary, one row per (app, size)."""
    header = (
        f"{'application':<12} {'size':<12} "
        f"{'piggyback%':>11} {'no-app-state%':>14} {'full%':>8}"
    )
    rows = [header, "-" * len(header)]
    for chart in charts:
        for result in chart.points:
            ov = result.overheads()
            rows.append(
                f"{chart.app:<12} {result.point.label:<12} "
                f"{ov.get(Variant.PIGGYBACK, 0.0):>10.1f} "
                f"{ov.get(Variant.NO_APP_STATE, 0.0):>14.1f} "
                f"{ov.get(Variant.FULL, 0.0):>8.1f}"
            )
    return "\n".join(rows)


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{n}B"
