"""Bench-trajectory diffing: the CI perf gate over ``BENCH_*.json``.

A trajectory file (written by :class:`repro.farm.bench.BenchRecorder`)
accumulates one record per campaign — conventionally a ``cold`` record
(cache being populated) and a ``warm`` record (cache being served) per CI
run.  This module compares trajectories:

* **within one file** — the newest ``warm`` record must reach a minimum
  cache-hit rate (a cold-performing warm run means the cache broke);
* **across two files** — the newest record per label in the current file
  must not regress wall time against the same label in a baseline file
  (the previous CI run's published artifact) beyond a tolerance.

Wall-clock comparisons are inherently noisy across CI hosts, so the
default tolerance is generous (+100%); the gate exists to catch
order-of-magnitude regressions (a cache that stopped hitting, a sweep
that started executing every cell twice), not 5% drift.

Records are read through the unified ``repro.metrics/1`` snapshot when
present (``record["metrics"]``), falling back to the flat legacy keys.

CLI::

    python -m repro.bench.trajectory BENCH_5.json \\
        --against prior/BENCH_5.json --allow-missing-baseline \\
        --min-warm-hit-rate 0.9 --max-wall-regression 1.0

Exit status: 0 when every check passes, 1 on a regression, 2 on unusable
input (missing/empty current trajectory).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.trace.metrics import snapshot_get

#: Default ceiling on wall-time growth vs the baseline record (fraction:
#: 1.0 allows up to 2x).  Cross-host CI timing is noisy; this is a
#: catastrophe gate, not a microbenchmark.
DEFAULT_MAX_WALL_REGRESSION = 1.0

#: Default floor on the newest warm record's cache-hit rate.
DEFAULT_MIN_WARM_HIT_RATE = 0.9


def _metric(record: Dict[str, Any], kind: str, name: str, flat_key: str) -> Optional[float]:
    """Read one number from a bench record: snapshot first, flat key second."""
    snap = record.get("metrics")
    if isinstance(snap, dict):
        value = snapshot_get(snap, kind, name)
        if value is not None:
            return value["sum"] if isinstance(value, dict) else float(value)
    value = record.get(flat_key)
    return float(value) if value is not None else None


def record_wall_seconds(record: Dict[str, Any]) -> Optional[float]:
    return _metric(record, "histograms", "farm.wall_seconds", "wall_seconds")


def record_hit_rate(record: Dict[str, Any]) -> Optional[float]:
    return _metric(record, "gauges", "farm.hit_rate", "hit_rate")


#: Histogram-name prefix for per-stage pipeline overhead in a record's
#: ``repro.metrics/1`` snapshot (written by ``outcome_metrics``).
_STAGE_PREFIX = "proto.stage_seconds."


def record_stage_seconds(record: Dict[str, Any]) -> Dict[str, float]:
    """Per-stage wall seconds carried by a bench record.

    Reads ``proto.stage_seconds.<stage>`` histograms from the record's
    metrics snapshot when present, merged over a flat ``stage_seconds``
    dict (how driver-level smokes stamp stage totals without routing a
    whole outcome snapshot through :class:`BenchRecorder`).
    """
    out: Dict[str, float] = {}
    snap = record.get("metrics")
    if isinstance(snap, dict):
        for name, value in snap.get("histograms", {}).items():
            if not name.startswith(_STAGE_PREFIX):
                continue
            stage = name[len(_STAGE_PREFIX):]
            out[stage] = float(value["sum"]) if isinstance(value, dict) else float(value)
    flat = record.get("stage_seconds")
    if isinstance(flat, dict):
        for stage, seconds in flat.items():
            out[str(stage)] = float(seconds)
    return out


def check_stage_budgets(
    records: Sequence[Dict[str, Any]],
    budgets: Dict[str, float],
) -> List[str]:
    """Per-stage wall-time budgets over the newest record per label.

    ``budgets`` maps a stage name (``checkpoint``, ``piggyback``, …) to a
    ceiling in seconds.  A record that carries no accounting for a
    budgeted stage is not a violation — only measured overshoot fails,
    so farm-campaign records (which carry no stage totals) coexist with
    driver smokes in one trajectory.
    """
    problems: List[str] = []
    for label, record in sorted(newest_by_label(records).items()):
        stages = record_stage_seconds(record)
        for stage, budget in sorted(budgets.items()):
            seconds = stages.get(stage)
            if seconds is not None and seconds > budget:
                problems.append(
                    f"stage budget exceeded for {label!r}: "
                    f"{_STAGE_PREFIX}{stage} = {seconds:.3f}s "
                    f"> budget {budget:.3f}s"
                )
    return problems


def load_records(path: str) -> List[Dict[str, Any]]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    records = doc.get("records", [])
    if not isinstance(records, list):
        raise ValueError(f"{path}: 'records' is not a list")
    return records


def newest_by_label(records: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Last record per label, in file (append) order."""
    out: Dict[str, Dict[str, Any]] = {}
    for record in records:
        label = record.get("label")
        if isinstance(label, str):
            out[label] = record
    return out


def check_warm_hit_rate(
    records: Sequence[Dict[str, Any]],
    *,
    warm_label: str = "warm",
    min_hit_rate: float = DEFAULT_MIN_WARM_HIT_RATE,
) -> List[str]:
    """The within-file check: the newest warm record must hit the cache."""
    warm = newest_by_label(records).get(warm_label)
    if warm is None:
        return [f"no record labelled {warm_label!r} in trajectory"]
    rate = record_hit_rate(warm)
    if rate is None:
        return [f"warm record {warm_label!r} carries no hit rate"]
    if rate < min_hit_rate:
        return [
            f"warm cache-hit rate regressed: {rate:.1%} < required "
            f"{min_hit_rate:.1%} (label {warm_label!r})"
        ]
    return []


def compare_trajectories(
    current: Sequence[Dict[str, Any]],
    baseline: Sequence[Dict[str, Any]],
    *,
    max_wall_regression: float = DEFAULT_MAX_WALL_REGRESSION,
) -> List[str]:
    """Cross-file check: per-label wall time must not blow past baseline.

    Labels present only on one side are ignored (new benchmarks appear,
    old ones retire); a label must exist in both files to be compared.
    """
    problems: List[str] = []
    current_by = newest_by_label(current)
    baseline_by = newest_by_label(baseline)
    for label in sorted(set(current_by) & set(baseline_by)):
        now = record_wall_seconds(current_by[label])
        then = record_wall_seconds(baseline_by[label])
        if now is None or then is None or then <= 0:
            continue
        growth = (now - then) / then
        if growth > max_wall_regression:
            problems.append(
                f"wall-time regression for {label!r}: {then:.2f}s -> {now:.2f}s "
                f"(+{growth:.0%}, allowed +{max_wall_regression:.0%})"
            )
    return problems


# --------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description="Diff bench trajectories; fail on perf regressions.",
    )
    parser.add_argument("current", help="current BENCH_*.json trajectory")
    parser.add_argument(
        "--against", default=None, metavar="BASELINE",
        help="baseline trajectory (e.g. the previous CI run's artifact)",
    )
    parser.add_argument(
        "--allow-missing-baseline", action="store_true",
        help="warn instead of failing when --against does not exist "
             "(first run on a branch has no prior artifact)",
    )
    parser.add_argument(
        "--max-wall-regression", type=float, default=DEFAULT_MAX_WALL_REGRESSION,
        help="allowed per-label wall-time growth vs baseline "
             f"(fraction; default {DEFAULT_MAX_WALL_REGRESSION})",
    )
    parser.add_argument(
        "--min-warm-hit-rate", type=float, default=DEFAULT_MIN_WARM_HIT_RATE,
        help="required cache-hit rate on the newest warm record "
             f"(default {DEFAULT_MIN_WARM_HIT_RATE})",
    )
    parser.add_argument(
        "--warm-label", default="warm", help="label of the warm record"
    )
    parser.add_argument(
        "--stage-budget", action="append", default=[], metavar="STAGE=SECONDS",
        help="per-stage wall-time ceiling checked against every label's "
             "newest proto.stage_seconds.* accounting (repeatable)",
    )
    parser.add_argument(
        "--no-warm-check", action="store_true",
        help="skip the warm cache-hit check (trajectories without farm "
             "records, e.g. the rank-scaling artifact)",
    )
    return parser


def parse_stage_budgets(specs: Sequence[str]) -> Dict[str, float]:
    budgets: Dict[str, float] = {}
    for spec in specs:
        stage, sep, seconds = spec.partition("=")
        if not sep or not stage:
            raise ValueError(f"bad --stage-budget {spec!r}; expected STAGE=SECONDS")
        budgets[stage] = float(seconds)
    return budgets


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        current = load_records(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read current trajectory: {exc}", file=sys.stderr)
        return 2
    if not current:
        print(f"{args.current}: empty trajectory", file=sys.stderr)
        return 2

    try:
        budgets = parse_stage_budgets(args.stage_budget)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    problems = [] if args.no_warm_check else check_warm_hit_rate(
        current, warm_label=args.warm_label, min_hit_rate=args.min_warm_hit_rate
    )
    if budgets:
        problems.extend(check_stage_budgets(current, budgets))

    if args.against is not None:
        if not os.path.exists(args.against):
            message = f"baseline trajectory {args.against!r} not found"
            if args.allow_missing_baseline:
                print(f"warning: {message}; skipping cross-file diff")
            else:
                print(message, file=sys.stderr)
                return 2
        else:
            try:
                baseline = load_records(args.against)
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"cannot read baseline trajectory: {exc}", file=sys.stderr)
                return 2
            problems.extend(
                compare_trajectories(
                    current, baseline,
                    max_wall_regression=args.max_wall_regression,
                )
            )

    if problems:
        for problem in problems:
            print(f"BENCH REGRESSION: {problem}", file=sys.stderr)
        return 1
    labels = ", ".join(sorted(newest_by_label(current)))
    print(f"bench trajectory ok ({len(current)} records; labels: {labels})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
