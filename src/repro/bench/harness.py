"""Four-variant measurement harness (the Figure-8 protocol, Section 6.2).

For every workload point the harness runs the application under the four
build variants the paper compares:

1. Unmodified Program
2. Using Protocol Layer, No Checkpoints   (piggyback + control exchange)
3. Checkpointing, No Application State    (protocol logs + MPI state)
4. Full Checkpoints

and records wall-clock runtime (the serialized simulator executes the real
numpy computation, piggybacking, logging and state serialisation, so
relative overheads are real work), virtual time, bytes moved, checkpoint
counts, and state sizes.  ``overhead_pct`` normalises against variant 1
exactly as the paper's charts do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Union

from repro.api.registry import AppSpec, get_app
from repro.api.session import ALL_VARIANTS, Session
from repro.apps.workloads import WorkloadPoint
from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import RunOutcome

#: A workload factory: anything measure_point can turn into ``params ->
#: app_main`` — a registered app name, an AppSpec, or a build callable.
BuildLike = Union[str, AppSpec, Callable[[object], Callable]]


@dataclass
class VariantMeasurement:
    """One bar of Figure 8."""

    variant: Variant
    wall_seconds: float
    virtual_time: float
    network_messages: int
    network_bytes: int
    checkpoints_committed: int
    storage_bytes: int
    checksum: float

    def overhead_pct(self, baseline: "VariantMeasurement") -> float:
        if baseline.wall_seconds <= 0:
            return 0.0
        return 100.0 * (self.wall_seconds - baseline.wall_seconds) / baseline.wall_seconds


@dataclass
class PointResult:
    """One bar group of Figure 8 (a problem size, four bars)."""

    point: WorkloadPoint
    measurements: dict[Variant, VariantMeasurement] = field(default_factory=dict)

    @property
    def baseline(self) -> VariantMeasurement:
        return self.measurements[Variant.UNMODIFIED]

    def overheads(self) -> dict[Variant, float]:
        base = self.baseline
        return {
            v: m.overhead_pct(base)
            for v, m in self.measurements.items()
            if v is not Variant.UNMODIFIED
        }


@dataclass
class ChartResult:
    """One chart of Figure 8 (an application, several problem sizes)."""

    app: str
    points: list[PointResult] = field(default_factory=list)


def _checksum_of(outcome: RunOutcome) -> float:
    total = 0.0
    for result in outcome.results:
        if isinstance(result, dict):
            for value in result.values():
                if isinstance(value, (int, float)):
                    total += float(value)
        elif isinstance(result, (int, float)):
            total += float(result)
    return total


def _resolve_build(build: BuildLike) -> Callable[[object], Callable]:
    if isinstance(build, str):
        return get_app(build).build
    if isinstance(build, AppSpec):
        return build.build
    return build


def measure_point(
    build: BuildLike,
    point: WorkloadPoint,
    base_config: RunConfig,
    variants: tuple[Variant, ...] = ALL_VARIANTS,
    repeats: int = 1,
    interval_fraction: Optional[float] = None,
    session: Optional[Session] = None,
) -> PointResult:
    """Run one workload point under each variant.

    Execution goes through a :class:`Session` (a fresh default one unless
    given), serially — wall-clock per bar is the measured quantity, so
    bars must not compete for cores.

    ``repeats`` > 1 re-runs each variant and keeps the *minimum* wall time
    (standard best-of-N to shave scheduler noise).  A discarded warmup run
    precedes the measurements so one-time costs (precompilation of the
    application unit, numpy thread-pool spin-up, allocator growth) never
    land in the first bar.

    ``interval_fraction``: when set, the checkpoint interval is derived from
    the warmup run's virtual duration (``fraction * duration``), pinning the
    number of checkpoint waves across problem sizes.  The paper instead
    fixes 30 s of wall time while runtimes grow from minutes to hours; a
    pinned wave count keeps the overhead-versus-state-size trend readable
    at simulator scale (per-wave cost is the quantity under study).
    """
    session = session if session is not None else Session()
    build = _resolve_build(build)
    result = PointResult(point=point)
    warm_cfg = replace(base_config, variant=Variant.UNMODIFIED)
    warmup = session.run(build(point.params), warm_cfg)
    if interval_fraction is not None:
        base_config = replace(
            base_config,
            checkpoint_interval=max(1e-6, warmup.total_virtual_time * interval_fraction),
        )
    for variant in variants:
        best: Optional[VariantMeasurement] = None
        for _ in range(max(1, repeats)):
            cfg = replace(base_config, variant=variant)
            app = build(point.params)
            t0 = time.perf_counter()
            outcome = session.run(app, cfg)
            wall = time.perf_counter() - t0
            measurement = VariantMeasurement(
                variant=variant,
                wall_seconds=wall,
                virtual_time=outcome.total_virtual_time,
                network_messages=outcome.network_messages,
                network_bytes=outcome.network_bytes,
                checkpoints_committed=outcome.checkpoints_committed,
                storage_bytes=outcome.storage_bytes_written,
                checksum=_checksum_of(outcome),
            )
            if best is None or measurement.wall_seconds < best.wall_seconds:
                best = measurement
        assert best is not None
        result.measurements[variant] = best
    return result


def measure_chart(
    build: BuildLike,
    app: str,
    points: tuple[WorkloadPoint, ...],
    base_config: RunConfig,
    variants: tuple[Variant, ...] = ALL_VARIANTS,
    repeats: int = 1,
    interval_fraction: Optional[float] = None,
    session: Optional[Session] = None,
) -> ChartResult:
    """Regenerate one full Figure-8 chart."""
    session = session if session is not None else Session()
    chart = ChartResult(app=app)
    for point in points:
        chart.points.append(
            measure_point(build, point, base_config, variants, repeats,
                          interval_fraction=interval_fraction, session=session)
        )
    return chart


def verify_variants_agree(point_result: PointResult, tol: float = 1e-6) -> bool:
    """All four variants must compute the same answer — instrumentation must
    never change application results."""
    sums = [m.checksum for m in point_result.measurements.values()]
    return max(sums) - min(sums) <= tol * max(1.0, abs(sums[0]))
