"""Benchmark harness: the four-variant Figure-8 measurement protocol."""

from repro.bench.harness import (
    ALL_VARIANTS,
    ChartResult,
    PointResult,
    VariantMeasurement,
    measure_chart,
    measure_point,
    verify_variants_agree,
)
from repro.bench.report import render_chart, render_overhead_table

__all__ = [
    "ALL_VARIANTS",
    "ChartResult",
    "PointResult",
    "VariantMeasurement",
    "measure_chart",
    "measure_point",
    "render_chart",
    "render_overhead_table",
    "verify_variants_agree",
]
