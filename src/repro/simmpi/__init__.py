"""simmpi: a deterministic MPI simulator substrate.

This package stands in for the paper's cluster + vendor MPI: it provides
ranks with real Python call stacks (one thread each, deterministically
interleaved), an MPI-style communicator API, a reliable but reorderable
network, stopping-fault injection, and heartbeat failure detection.

Quick use::

    from repro.simmpi import run_simple

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send("hello", dest=1)
        elif ctx.rank == 1:
            return ctx.comm.recv(source=0)

    result = run_simple(main, nprocs=2)
    assert result.results[1] == "hello"
"""

from repro.simmpi.clock import CostModel, VirtualClock
from repro.simmpi.comm import Comm
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG, TAG_CONTROL
from repro.simmpi.failure_detector import HeartbeatFailureDetector
from repro.simmpi.failures import CheckpointCrash, FailureSchedule, KillEvent
from repro.simmpi.group import Group
from repro.simmpi.message import Envelope
from repro.simmpi.op import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, Op
from repro.simmpi.request import Request, waitall, waitany
from repro.simmpi.simulator import RankContext, SimConfig, SimResult, Simulator, run_simple
from repro.simmpi.status import Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "TAG_CONTROL",
    "BAND",
    "BOR",
    "LAND",
    "LOR",
    "MAX",
    "MAXLOC",
    "MIN",
    "MINLOC",
    "PROD",
    "SUM",
    "CheckpointCrash",
    "Comm",
    "CostModel",
    "Envelope",
    "FailureSchedule",
    "Group",
    "HeartbeatFailureDetector",
    "KillEvent",
    "Op",
    "RankContext",
    "Request",
    "SimConfig",
    "SimResult",
    "Simulator",
    "Status",
    "VirtualClock",
    "run_simple",
    "waitall",
    "waitany",
]
