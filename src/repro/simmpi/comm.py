"""Communicators: the application-facing MPI interface of the simulator.

A :class:`Comm` binds a rank's :class:`~repro.simmpi.process.Proc` to a
:class:`~repro.simmpi.group.Group` and a context id.  The API mirrors
mpi4py's lowercase object interface (``send``/``recv``/``isend``/``irecv``/
``bcast``/``allreduce``...), with ranks expressed group-locally.

Context ids isolate communicators: a message sent on one communicator can
never match a receive on another.  ``dup``/``split`` derive child contexts
through a simulator-global registry keyed by ``(parent context, child
sequence)`` so every member allocates the *same* child id without any
message exchange, regardless of when each rank reaches the call (MPI
requires communicator construction to be called collectively and in the
same order, which keeps the per-parent sequence numbers aligned).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import MatchError
from repro.simmpi import collectives_impl as coll
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG, is_user_tag
from repro.simmpi.group import Group
from repro.simmpi.mailbox import RecvDescriptor
from repro.simmpi.message import Envelope
from repro.simmpi.op import Op
from repro.simmpi.process import Proc
from repro.simmpi.request import RecvRequest, Request, SendRequest
from repro.simmpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.simulator import Simulator


class Comm:
    """A communicator bound to one rank of the simulation."""

    def __init__(self, sim: "Simulator", proc: Proc, group: Group, context: int) -> None:
        self.sim = sim
        self.proc = proc
        self.group = group
        self.context = context
        #: The simulation clock, cached: every send/recv charges it.
        self._clock = sim.clock
        self._network = sim.network
        self._coll_seq = 0
        self._child_seq = 0
        self.last_status: Optional[Status] = None

    # ------------------------------------------------------------------ #
    # Identity.
    # ------------------------------------------------------------------ #

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self.group.rank_of(self.proc.rank)

    @property
    def size(self) -> int:
        """Number of processes in the communicator."""
        return self.group.size

    def wtime(self) -> float:
        """Current virtual time (the MPI_Wtime analogue)."""
        return self.sim.clock.now

    # ------------------------------------------------------------------ #
    # Internal plumbing.
    # ------------------------------------------------------------------ #

    def _world(self, local_rank: int) -> int:
        if local_rank == ANY_SOURCE:
            return ANY_SOURCE
        return self.group.world_rank(local_rank)

    def _local(self, world_rank: int) -> int:
        return self.group.rank_of(world_rank)

    def _yield_point(self) -> None:
        self.sim.scheduler.yield_point(self.proc)

    def co_yield_point(self):
        yield from self.sim.scheduler.co_yield_point(self.proc)

    def _block_on_recv(self, desc: RecvDescriptor) -> None:
        self.sim.scheduler.block_on_recv(self.proc, desc)

    def _co_block_on_recv(self, desc: RecvDescriptor):
        yield from self.sim.scheduler.co_block_on_recv(self.proc, desc)

    def _cancel_recv(self, desc: RecvDescriptor) -> bool:
        return self.proc.mailbox.cancel(desc)

    def _check_send_args(self, dest: int, tag: int) -> None:
        if not 0 <= dest < self.size:
            raise MatchError(f"send dest {dest} out of range for size {self.size}")
        if not is_user_tag(tag) and tag >= 0:
            raise MatchError(f"tag {tag} exceeds MAX_USER_TAG")

    def _post_envelope(
        self, dest_world: int, payload: Any, tag: int, piggyback: Any = None
    ) -> Envelope:
        env = Envelope(
            source=self.proc.rank,
            dest=dest_world,
            tag=tag,
            context=self.context,
            payload=payload,
            piggyback=piggyback,
        )
        clock = self._clock
        clock.charge(clock.cost.message_cost(env.nbytes))
        self._network.post(env, clock.now)
        return env

    # ------------------------------------------------------------------ #
    # Point-to-point.
    # ------------------------------------------------------------------ #

    def send(self, payload: Any, dest: int, tag: int = 0, piggyback: Any = None) -> None:
        """Eager-buffered blocking send (returns once the message is posted).

        ``piggyback`` is reserved for the C3 protocol layer; application code
        should never pass it.
        """
        self._check_send_args(dest, tag)
        self._post_envelope(self._world(dest), payload, tag, piggyback)
        self._yield_point()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload.

        The matched message's metadata is available as ``last_status``.
        """
        env = self.recv_envelope(source, tag)
        return env.payload

    def recv_envelope(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        predicate: Optional[Callable[[Envelope], bool]] = None,
    ) -> Envelope:
        """Blocking receive returning the full envelope (piggyback included).

        The C3 protocol layer uses this to read piggybacked words and, during
        recovery replay, to wait for the message with a specific
        ``messageID`` via ``predicate``.
        """
        desc = RecvDescriptor(self._world(source), tag, self.context, predicate)
        self.proc.mailbox.post(desc)
        if desc.matched is None:
            self._block_on_recv(desc)
        else:
            # Matching an already-queued message is still a scheduling point;
            # without it, tight recv loops would starve other ranks.
            self._yield_point()
        env = desc.matched
        assert env is not None
        self._clock.charge(self._clock.cost.step)
        self.last_status = Status(
            source=self._local(env.source), tag=env.tag, nbytes=env.nbytes
        )
        return env

    # -- generator twins (cooperative core) ----------------------------- #
    #
    # Same bodies as the synchronous calls above with each scheduling
    # point expressed as a yield; the suspension-free calls (``isend``,
    # ``irecv``, ``iprobe``, ``take_matching``, ``dup``) have no twins.

    def co_send(self, payload: Any, dest: int, tag: int = 0, piggyback: Any = None):
        self._check_send_args(dest, tag)
        self._post_envelope(self._world(dest), payload, tag, piggyback)
        yield from self.sim.scheduler.co_yield_point(self.proc)

    def co_recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        env = yield from self.co_recv_envelope(source, tag)
        return env.payload

    def co_recv_envelope(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        predicate: Optional[Callable[[Envelope], bool]] = None,
    ):
        desc = RecvDescriptor(self._world(source), tag, self.context, predicate)
        self.proc.mailbox.post(desc)
        if desc.matched is None:
            yield from self.sim.scheduler.co_block_on_recv(self.proc, desc)
        else:
            # Matching an already-queued message is still a scheduling point;
            # without it, tight recv loops would starve other ranks.
            yield from self.sim.scheduler.co_yield_point(self.proc)
        env = desc.matched
        assert env is not None
        self._clock.charge(self._clock.cost.step)
        self.last_status = Status(
            source=self._local(env.source), tag=env.tag, nbytes=env.nbytes
        )
        return env

    def co_sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ):
        if recv_tag is None:
            recv_tag = send_tag
        self._check_send_args(dest, send_tag)
        self._post_envelope(self._world(dest), payload, send_tag)
        return (yield from self.co_recv(recv_source, recv_tag))

    def co_probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        while True:
            env = self.proc.mailbox.probe(self._world(source), tag, self.context)
            if env is not None:
                return Status(
                    source=self._local(env.source), tag=env.tag, nbytes=env.nbytes
                )
            yield from self.sim.scheduler.co_yield_point(self.proc)

    def isend(self, payload: Any, dest: int, tag: int = 0, piggyback: Any = None) -> Request:
        """Nonblocking send; the returned request is already complete."""
        self._check_send_args(dest, tag)
        self._post_envelope(self._world(dest), payload, tag, piggyback)
        return SendRequest(self)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Nonblocking receive; complete it with ``req.wait()``/``req.test()``."""
        desc = RecvDescriptor(self._world(source), tag, self.context)
        self.proc.mailbox.post(desc)
        return RecvRequest(self, desc)

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        """Combined send+receive (deadlock-free under eager sends)."""
        if recv_tag is None:
            recv_tag = send_tag
        self._check_send_args(dest, send_tag)
        self._post_envelope(self._world(dest), payload, send_tag)
        return self.recv(recv_source, recv_tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe: wait until a matching message is queued."""
        while True:
            env = self.proc.mailbox.probe(self._world(source), tag, self.context)
            if env is not None:
                return Status(source=self._local(env.source), tag=env.tag, nbytes=env.nbytes)
            self._yield_point()

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe; None if no matching message is queued."""
        env = self.proc.mailbox.probe(self._world(source), tag, self.context)
        if env is None:
            return None
        return Status(source=self._local(env.source), tag=env.tag, nbytes=env.nbytes)

    def take_matching(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        predicate: Optional[Callable[[Envelope], bool]] = None,
    ) -> Optional[Envelope]:
        """Nonblocking receive of a queued message (used by the C3 layer to
        drain control traffic without blocking)."""
        return self.proc.mailbox.take(self._world(source), tag, self.context, predicate)

    # ------------------------------------------------------------------ #
    # Collective endpoint interface (see collectives_impl).
    # ------------------------------------------------------------------ #

    @property
    def coll_rank(self) -> int:
        return self.rank

    @property
    def coll_size(self) -> int:
        return self.size

    def coll_next_tag_block(self) -> int:
        from repro.simmpi.constants import TAG_COLLECTIVE_BASE

        base = TAG_COLLECTIVE_BASE - self._coll_seq * coll._TAG_STRIDE
        self._coll_seq += 1
        return base

    def coll_send(self, dest: int, payload: Any, tag: int) -> None:
        self._post_envelope(self._world(dest), payload, tag)
        self._yield_point()

    def coll_recv(self, source: int, tag: int) -> Any:
        desc = RecvDescriptor(self._world(source), tag, self.context)
        self.proc.mailbox.post(desc)
        if desc.matched is None:
            self._block_on_recv(desc)
        self._clock.charge(self._clock.cost.step)
        return desc.matched.payload

    def co_coll_send(self, dest: int, payload: Any, tag: int):
        self._post_envelope(self._world(dest), payload, tag)
        yield from self.sim.scheduler.co_yield_point(self.proc)

    def co_coll_recv(self, source: int, tag: int):
        desc = RecvDescriptor(self._world(source), tag, self.context)
        self.proc.mailbox.post(desc)
        if desc.matched is None:
            # Note the asymmetry with co_recv_envelope: an already-matched
            # collective receive is not a scheduling point (parity with the
            # synchronous path above).
            yield from self.sim.scheduler.co_block_on_recv(self.proc, desc)
        self._clock.charge(self._clock.cost.step)
        return desc.matched.payload

    # ------------------------------------------------------------------ #
    # Collectives.
    # ------------------------------------------------------------------ #

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return coll.bcast(self, obj, root)

    def reduce(self, obj: Any, op: Op, root: int = 0) -> Any:
        return coll.reduce(self, obj, op, root)

    def allreduce(self, obj: Any, op: Op) -> Any:
        return coll.allreduce(self, obj, op)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return coll.gather(self, obj, root)

    def allgather(self, obj: Any) -> list[Any]:
        return coll.allgather(self, obj)

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        return coll.scatter(self, objs, root)

    def alltoall(self, objs: list[Any]) -> list[Any]:
        return coll.alltoall(self, objs)

    def barrier(self) -> None:
        coll.barrier(self)

    def scan(self, obj: Any, op: Op) -> Any:
        return coll.scan(self, obj, op)

    # -- generator twins of the collectives ----------------------------- #

    def co_bcast(self, obj: Any, root: int = 0):
        return (yield from coll.co_bcast(self, obj, root))

    def co_reduce(self, obj: Any, op: Op, root: int = 0):
        return (yield from coll.co_reduce(self, obj, op, root))

    def co_allreduce(self, obj: Any, op: Op):
        return (yield from coll.co_allreduce(self, obj, op))

    def co_gather(self, obj: Any, root: int = 0):
        return (yield from coll.co_gather(self, obj, root))

    def co_allgather(self, obj: Any):
        return (yield from coll.co_allgather(self, obj))

    def co_scatter(self, objs: list[Any] | None, root: int = 0):
        return (yield from coll.co_scatter(self, objs, root))

    def co_alltoall(self, objs: list[Any]):
        return (yield from coll.co_alltoall(self, objs))

    def co_barrier(self):
        yield from coll.co_barrier(self)

    def co_scan(self, obj: Any, op: Op):
        return (yield from coll.co_scan(self, obj, op))

    # ------------------------------------------------------------------ #
    # Communicator construction.
    # ------------------------------------------------------------------ #

    def dup(self) -> "Comm":
        """Duplicate this communicator (same group, fresh context)."""
        ctx = self.sim.allocate_context(self.context, self._child_seq)
        self._child_seq += 1
        return Comm(self.sim, self.proc, self.group, ctx)

    def split(self, color: int, key: int | None = None) -> Optional["Comm"]:
        """Split by color/key (collective: every member must call it).

        Returns None for ``color is None`` (the MPI_UNDEFINED analogue).
        Uses an allgather to agree on membership.
        """
        if key is None:
            key = self.rank
        triples = self.allgather((color, key, self.rank))
        return self._split_from_triples(triples, color)

    def co_split(self, color: int, key: int | None = None):
        if key is None:
            key = self.rank
        triples = yield from self.co_allgather((color, key, self.rank))
        return self._split_from_triples(triples, color)

    def _split_from_triples(self, triples: list[Any], color: int) -> Optional["Comm"]:
        child_seq = self._child_seq
        self._child_seq += 1
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        group = Group(tuple(self.group.world_rank(r) for _, r in members))
        ctx = self.sim.allocate_context(self.context, (child_seq, color))
        return Comm(self.sim, self.proc, group, ctx)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Comm(rank={self.rank}/{self.size}, ctx={self.context})"
