"""Payload size accounting.

The simulator carries arbitrary Python objects as message payloads (numpy
arrays being the common case, as in mpi4py's uppercase methods).  For the
virtual-time cost model and for byte-level statistics (used to measure the
piggybacking overhead the paper discusses for Neurosys), every payload is
assigned a size in bytes by :func:`sizeof`.
"""

from __future__ import annotations

import pickle
import sys

import numpy as np

#: Overhead in bytes attributed to a message header on the wire.
HEADER_BYTES = 32

#: Bytes added to a message by the paper's packed piggyback word.
PIGGYBACK_PACKED_BYTES = 4

#: Bytes added by the unoptimised piggyback (epoch int + bool + id int).
PIGGYBACK_FULL_BYTES = 12


def sizeof(payload: object) -> int:
    """Best-effort wire size of a payload in bytes.

    numpy arrays report their buffer size; ``bytes``/``bytearray`` report
    their length; scalars report their native width; everything else falls
    back to the pickle length (an upper bound on a reasonable encoding).
    """
    if type(payload) is int:
        # Exact-type fast path: plain ints are the dominant payload on
        # the per-message hot path (protocol control words, benchmark
        # rings), and the isinstance chain below costs more than the
        # answer.  ``bool`` is not ``int`` under ``type()``, so it still
        # reaches its 1-byte case.
        return 8
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (bool, np.bool_)):
        return 1
    if isinstance(payload, (int, np.integer)):
        return 8
    if isinstance(payload, (float, np.floating)):
        return 8
    if isinstance(payload, complex):
        return 16
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        # Sum of elements plus a small per-element overhead; cheaper than
        # pickling and accurate for the homogeneous containers apps send.
        return 8 + sum(sizeof(item) + 4 for item in payload)
    if isinstance(payload, dict):
        return 8 + sum(sizeof(k) + sizeof(v) + 8 for k, v in payload.items())
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return sys.getsizeof(payload)
