"""Collective algorithms over abstract point-to-point endpoints.

The paper's protocol layer sits *between* the application and MPI and
implements its collective handling above point-to-point messages (Section
4.5 notes the elegance of this placement).  To let both the raw simulator
communicator and the C3 protocol layer share one set of algorithms, every
collective here is written against a minimal :class:`P2PEndpoint` interface.

Algorithms (standard HPC implementations):

* ``bcast``      — binomial tree.
* ``reduce``     — binomial tree (rank order preserved for determinism).
* ``allreduce``  — recursive doubling (butterfly), with the usual fold/expand
                   pre/post phases for non-power-of-two sizes.  The paper's
                   dense CG uses exactly a butterfly allreduce/allgather.
* ``gather``     — linear to root.
* ``allgather``  — recursive doubling (butterfly) for powers of two, ring
                   otherwise.
* ``scatter``    — linear from root.
* ``alltoall``   — pairwise exchange.
* ``barrier``    — dissemination barrier.
* ``scan``       — linear prefix.

Every collective call instance draws a fresh tag block from the endpoint so
that rounds of different collectives can never be confused even under the
network's ``random`` ordering mode.

Each algorithm exists once, as a ``co_*`` generator whose sends/receives
are ``yield from`` calls on the endpoint's ``co_coll_send``/``co_coll_recv``
— the cooperative simulator core suspends the whole rank there.  The
synchronous entry points (``bcast(ep, ...)`` etc.) wrap the endpoint in
:class:`_SyncView`, whose ``co_*`` methods call the endpoint's plain
``coll_send``/``coll_recv`` and never yield, then run the algorithm with
:func:`~repro.simmpi.coop.run_inline` — on a real communicator under the
threaded core the blocking happens inside ``coll_recv`` exactly as it
always did, and test endpoints need only implement the sync interface.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.errors import SimMPIError
from repro.simmpi.coop import run_inline
from repro.simmpi.op import Op, reduce_sequence

#: Rounds per collective instance reserved in the tag space.
_TAG_STRIDE = 64


class P2PEndpoint(Protocol):
    """What a collective algorithm needs from its transport."""

    @property
    def coll_rank(self) -> int:
        """This process's rank within the collective's group."""
        ...

    @property
    def coll_size(self) -> int:
        """Number of participants."""
        ...

    def coll_next_tag_block(self) -> int:
        """Reserve and return the base tag for one collective instance."""
        ...

    def coll_send(self, dest: int, payload: Any, tag: int) -> None:
        """Group-local-rank addressed send."""
        ...

    def coll_recv(self, source: int, tag: int) -> Any:
        """Group-local-rank addressed blocking receive."""
        ...


class _SyncView:
    """Adapter presenting a synchronous endpoint through the ``co_*`` shape.

    Its generators complete without yielding, so an algorithm driven over
    it runs inline — the endpoint's own ``coll_recv`` does any blocking.
    """

    __slots__ = ("_ep",)

    def __init__(self, ep: P2PEndpoint) -> None:
        self._ep = ep

    @property
    def coll_rank(self) -> int:
        return self._ep.coll_rank

    @property
    def coll_size(self) -> int:
        return self._ep.coll_size

    def coll_next_tag_block(self) -> int:
        return self._ep.coll_next_tag_block()

    def co_coll_send(self, dest: int, payload: Any, tag: int):
        self._ep.coll_send(dest, payload, tag)
        return
        yield  # pragma: no cover - generator marker, unreachable

    def co_coll_recv(self, source: int, tag: int):
        return self._ep.coll_recv(source, tag)
        yield  # pragma: no cover - generator marker, unreachable


def _round_tag(base: int, rnd: int) -> int:
    if rnd >= _TAG_STRIDE:
        raise SimMPIError(f"collective exceeded {_TAG_STRIDE} rounds")
    return base - rnd


def co_bcast(ep, obj: Any, root: int = 0):
    """Binomial-tree broadcast; returns the broadcast object on every rank."""
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    if size == 1:
        return obj
    # Work in a rotated rank space where root is 0.  Each rank receives at
    # most one message and every (parent, child) pair is unique, so a single
    # tag disambiguates; matching is by source.
    tag = _round_tag(base, 0)
    vrank = (rank - root) % size
    mask = 1
    received = obj if vrank == 0 else None
    # Receive phase: find the bit that brings data to us.
    while mask < size:
        if vrank & mask:
            src = (vrank - mask + root) % size
            received = yield from ep.co_coll_recv(src, tag)
            break
        mask <<= 1
    # Send phase: forward to children in decreasing-mask order.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield from ep.co_coll_send(dst, received, tag)
        mask >>= 1
    return received


def bcast(ep: P2PEndpoint, obj: Any, root: int = 0) -> Any:
    return run_inline(co_bcast(_SyncView(ep), obj, root))


def co_reduce(ep, obj: Any, op: Op, root: int = 0):
    """Gather-then-fold reduce preserving rank order; result only at root.

    A linear gather keeps the fold order identical to rank order, which makes
    floating-point reductions bit-deterministic across runs — essential for
    the recover-equals-failure-free integration tests.
    """
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    if size == 1:
        return obj
    if rank == root:
        parts: list[Any] = [None] * size
        parts[root] = obj
        for src in range(size):
            if src != root:
                parts[src] = yield from ep.co_coll_recv(src, _round_tag(base, 0))
        return reduce_sequence(op, parts)
    yield from ep.co_coll_send(root, obj, _round_tag(base, 0))
    return None


def reduce(ep: P2PEndpoint, obj: Any, op: Op, root: int = 0) -> Any:
    return run_inline(co_reduce(_SyncView(ep), obj, op, root))


def co_allreduce(ep, obj: Any, op: Op):
    """Recursive-doubling allreduce (butterfly) with non-power-of-two fold."""
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    if size == 1:
        return obj
    # Largest power of two <= size.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    rnd = 0
    value = obj
    # Fold phase: ranks [0, 2*rem) pair up so that odd ones drop out.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from ep.co_coll_send(rank + 1, value, _round_tag(base, rnd))
            newrank = -1
        else:
            other = yield from ep.co_coll_recv(rank - 1, _round_tag(base, rnd))
            # Fold in rank order: lower rank's value on the left.
            value = reduce_sequence(op, [other, value])
            newrank = rank // 2
    else:
        newrank = rank - rem
    rnd += 1
    # Butterfly over the pof2 survivors.
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            yield from ep.co_coll_send(partner, value, _round_tag(base, rnd))
            other = yield from ep.co_coll_recv(partner, _round_tag(base, rnd))
            if partner_new < newrank:
                value = reduce_sequence(op, [other, value])
            else:
                value = reduce_sequence(op, [value, other])
            mask <<= 1
            rnd += 1
    else:
        rnd += pof2.bit_length() - 1
    # Expand phase: survivors hand the result back to folded-out ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from ep.co_coll_send(rank - 1, value, _round_tag(base, rnd))
        else:
            value = yield from ep.co_coll_recv(rank + 1, _round_tag(base, rnd))
    return value


def allreduce(ep: P2PEndpoint, obj: Any, op: Op) -> Any:
    return run_inline(co_allreduce(_SyncView(ep), obj, op))


def co_gather(ep, obj: Any, root: int = 0):
    """Linear gather; returns the list of contributions at root, else None."""
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    if rank == root:
        out: list[Any] = [None] * size
        out[root] = obj
        for src in range(size):
            if src != root:
                out[src] = yield from ep.co_coll_recv(src, _round_tag(base, 0))
        return out
    yield from ep.co_coll_send(root, obj, _round_tag(base, 0))
    return None


def gather(ep: P2PEndpoint, obj: Any, root: int = 0) -> list[Any] | None:
    return run_inline(co_gather(_SyncView(ep), obj, root))


def co_allgather(ep, obj: Any):
    """Allgather; returns the list of all contributions on every rank.

    Uses recursive doubling (butterfly) when the size is a power of two —
    matching the paper's description of the CG code — and a ring otherwise.
    """
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    result: list[Any] = [None] * size
    result[rank] = obj
    if size == 1:
        return result
    if size & (size - 1) == 0:
        mask = 1
        rnd = 0
        while mask < size:
            partner = rank ^ mask
            # Send the block of entries I currently own.
            block_start = (rank // mask) * mask
            chunk = {
                i: result[i]
                for i in range(block_start, block_start + mask)
            }
            yield from ep.co_coll_send(partner, chunk, _round_tag(base, rnd))
            incoming = yield from ep.co_coll_recv(partner, _round_tag(base, rnd))
            for i, v in incoming.items():
                result[i] = v
            mask <<= 1
            rnd += 1
        return result
    # Ring algorithm for irregular sizes.
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_idx = rank
    for rnd in range(size - 1):
        yield from ep.co_coll_send(
            right, (send_idx, result[send_idx]), _round_tag(base, rnd)
        )
        idx, val = yield from ep.co_coll_recv(left, _round_tag(base, rnd))
        result[idx] = val
        send_idx = idx
    return result


def allgather(ep: P2PEndpoint, obj: Any) -> list[Any]:
    return run_inline(co_allgather(_SyncView(ep), obj))


def co_scatter(ep, objs: list[Any] | None, root: int = 0):
    """Linear scatter from root; returns this rank's element."""
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    if rank == root:
        if objs is None or len(objs) != size:
            raise SimMPIError(
                f"scatter at root needs a list of exactly {size} elements"
            )
        for dst in range(size):
            if dst != root:
                yield from ep.co_coll_send(dst, objs[dst], _round_tag(base, 0))
        return objs[root]
    return (yield from ep.co_coll_recv(root, _round_tag(base, 0)))


def scatter(ep: P2PEndpoint, objs: list[Any] | None, root: int = 0) -> Any:
    return run_inline(co_scatter(_SyncView(ep), objs, root))


def co_alltoall(ep, objs: list[Any]):
    """Pairwise-exchange all-to-all; ``objs[d]`` goes to rank ``d``."""
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    if len(objs) != size:
        raise SimMPIError(f"alltoall needs exactly {size} elements, got {len(objs)}")
    result: list[Any] = [None] * size
    result[rank] = objs[rank]
    # Exchange with partner rank ^ step when size is a power of two;
    # otherwise with (rank + step) % size / (rank - step) % size.
    if size & (size - 1) == 0:
        for step in range(1, size):
            partner = rank ^ step
            yield from ep.co_coll_send(
                partner, objs[partner], _round_tag(base, step % _TAG_STRIDE)
            )
            result[partner] = yield from ep.co_coll_recv(
                partner, _round_tag(base, step % _TAG_STRIDE)
            )
    else:
        for step in range(1, size):
            send_to = (rank + step) % size
            recv_from = (rank - step) % size
            yield from ep.co_coll_send(
                send_to, objs[send_to], _round_tag(base, step % _TAG_STRIDE)
            )
            result[recv_from] = yield from ep.co_coll_recv(
                recv_from, _round_tag(base, step % _TAG_STRIDE)
            )
    return result


def alltoall(ep: P2PEndpoint, objs: list[Any]) -> list[Any]:
    return run_inline(co_alltoall(_SyncView(ep), objs))


def co_barrier(ep):
    """Dissemination barrier: ceil(log2(size)) rounds of token exchange."""
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    if size == 1:
        return
    mask = 1
    rnd = 0
    while mask < size:
        dst = (rank + mask) % size
        src = (rank - mask) % size
        yield from ep.co_coll_send(dst, None, _round_tag(base, rnd))
        yield from ep.co_coll_recv(src, _round_tag(base, rnd))
        mask <<= 1
        rnd += 1


def barrier(ep: P2PEndpoint) -> None:
    run_inline(co_barrier(_SyncView(ep)))


def co_scan(ep, obj: Any, op: Op):
    """Inclusive prefix scan (linear chain)."""
    size, rank = ep.coll_size, ep.coll_rank
    base = ep.coll_next_tag_block()
    value = obj
    if rank > 0:
        prefix = yield from ep.co_coll_recv(rank - 1, _round_tag(base, 0))
        value = reduce_sequence(op, [prefix, value])
    if rank + 1 < size:
        yield from ep.co_coll_send(rank + 1, value, _round_tag(base, 0))
    return value


def scan(ep: P2PEndpoint, obj: Any, op: Op) -> Any:
    return run_inline(co_scan(_SyncView(ep), obj, op))
