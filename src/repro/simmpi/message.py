"""Message envelopes carried by the simulated network.

An :class:`Envelope` is what the transport moves between ranks.  It carries
the routing triple ``(source, dest, tag)`` within a communication context,
the payload, an optional piggyback word/tuple attached by the C3 protocol
layer, and bookkeeping used by the deterministic network model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.simmpi.datatypes import HEADER_BYTES, sizeof


@dataclass
class Envelope:
    """One in-flight message.

    Attributes
    ----------
    source, dest:
        World ranks of the sender and receiver.
    tag:
        Application tag (>= 0) or reserved negative tag.
    context:
        Communication context id (communicator isolation, like MPI's
        context id); matching requires equal contexts.
    payload:
        The application object being transported.
    piggyback:
        Data attached by the protocol layer (packed int or tuple), or
        ``None`` for uninstrumented traffic.
    send_time:
        Virtual time at which the send was posted.
    deliver_time:
        Virtual time at which the network will hand the message to the
        destination mailbox (set by the network model).
    seq:
        Global monotone sequence number (deterministic tiebreaker).
    """

    source: int
    dest: int
    tag: int
    context: int
    payload: Any
    piggyback: Any = None
    send_time: float = 0.0
    deliver_time: float = 0.0
    seq: int = 0
    nbytes: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            self.nbytes = sizeof(self.payload) + HEADER_BYTES
            if self.piggyback is not None:
                # Packed codec: one 32-bit word; full codec: ~12 bytes
                # (paper Section 4.2's two designs).
                self.nbytes += 4 if isinstance(self.piggyback, int) else 12

    def routing(self) -> tuple[int, int, int, int]:
        """The matching tuple ``(source, dest, tag, context)``."""
        return (self.source, self.dest, self.tag, self.context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope({self.source}->{self.dest} tag={self.tag} "
            f"ctx={self.context} bytes={self.nbytes} seq={self.seq} "
            f"pb={self.piggyback!r})"
        )
