"""Public constants for the MPI simulator.

Tag space layout
----------------
Application code may use any tag in ``[0, MAX_USER_TAG]``.  Negative tags are
reserved for the library itself:

* ``TAG_COLLECTIVE_BASE`` — point-to-point messages that implement collective
  operations (each collective call instance gets a distinct tag derived from
  a per-communicator collective sequence number, so concurrent collectives on
  different communicators cannot interfere).
* ``TAG_CONTROL`` — C3 protocol control messages (pleaseCheckpoint,
  mySendCount, readyToStopLogging, stopLogging, stoppedLogging, recovery
  handshakes).  Control messages bypass piggybacking.
"""

from __future__ import annotations

#: Wildcard source for receives: match a message from any rank.
ANY_SOURCE: int = -1

#: Wildcard tag for receives: match a message with any user tag.
ANY_TAG: int = -1

#: Largest tag available to applications.
MAX_USER_TAG: int = 2**29

#: Base of the (negative) tag range used by collective implementations.
TAG_COLLECTIVE_BASE: int = -1000

#: Tag carrying C3 protocol control messages.
TAG_CONTROL: int = -2

#: Tag carrying failure-detector heartbeats (when heartbeats are enabled).
TAG_HEARTBEAT: int = -3


def is_user_tag(tag: int) -> bool:
    """True if ``tag`` is legal for application sends."""
    return 0 <= tag <= MAX_USER_TAG


def collective_tag(sequence: int) -> int:
    """Reserved tag for the ``sequence``-th collective on a communicator."""
    return TAG_COLLECTIVE_BASE - sequence
