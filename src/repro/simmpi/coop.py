"""Cooperative-core plumbing: drivers and the current-proc registry.

The cooperative simulator core runs every rank as a *generator* resumed
by the scheduler on the one real thread.  Scheduling points are ``yield``
statements inside shared ``co_*`` generator code, so the sequence of
kill checks, trace emissions and clock charges is byte-for-byte the one
the threaded core executes — the two cores differ only in how control
moves between a suspended rank and the scheduler:

* **coop** — ``Scheduler.grant`` calls ``task.send(None)``; a ``yield``
  anywhere down the ``yield from`` chain suspends the whole rank.
* **threads** — a plain (non-generator) call path reaches the same
  ``co_*`` generator through :func:`drive`, which parks the rank thread
  on its baton gate at every ``yield`` — exactly what the historical
  synchronous primitives did.

:func:`run_inline` runs a generator that is *known* never to suspend
(e.g. collective algorithms over a fake in-test endpoint); it completes
in one step or raises.

The module also keeps a thread-local **current proc** registry, set by
the coop core around every ``task.send``.  Code that historically used
``threading.local`` for per-rank state (the precompiler's active
runtime) reads it first: under coop all ranks share one thread, so
"which rank is executing" is no longer "which thread am I on".
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimMPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.process import Proc

_here = threading.local()


def set_current_proc(proc: Optional["Proc"]) -> None:
    """Install ``proc`` as the rank the calling thread is executing."""
    _here.proc = proc


def current_proc() -> Optional["Proc"]:
    """The rank the coop core is currently resuming on this thread, if any."""
    return getattr(_here, "proc", None)


def thread_suspend(proc: "Proc") -> None:
    """One baton handoff for a rank *thread* parked inside :func:`drive`.

    Gate ping-pong only — every kill check, trace emission and clock
    charge lives inside the ``co_*`` generator being driven, after its
    ``yield``, so the observable sequence matches the coop core exactly.
    """
    scheduler = proc.sim.scheduler
    scheduler._sched_gate.set()
    proc.run_gate.wait()
    proc.run_gate.clear()


def drive(gen: Generator[None, None, Any], comm: Any) -> Any:
    """Run a ``co_*`` generator to completion on behalf of a sync caller.

    Under the threaded core each ``yield`` becomes a baton handoff of the
    calling rank thread.  Under the coop core a synchronous call that
    reaches a real scheduling point is a conversion bug (the single
    thread would deadlock parking on its own gate), so the first yield
    raises :class:`SimMPIError` instead.  Generators that complete
    without yielding (fake in-test comms, already-matched receives) work
    under either core — and with no simulator at all.
    """
    try:
        gen.send(None)
    except StopIteration as stop:
        return stop.value
    proc = getattr(comm, "proc", None)
    if proc is None or getattr(proc.sim, "sim_core", "threads") == "coop":
        gen.close()
        raise SimMPIError(
            "synchronous MPI call reached a scheduling point under the "
            "cooperative core; rank mains must be generators (or the app "
            "must provide co_* variants) when sim_core='coop'"
        )
    while True:
        thread_suspend(proc)
        try:
            gen.send(None)
        except StopIteration as stop:
            return stop.value


def run_inline(gen: Generator[None, None, Any]) -> Any:
    """Complete a generator that must not suspend (sync collective path)."""
    try:
        gen.send(None)
    except StopIteration as stop:
        return stop.value
    gen.close()
    raise SimMPIError(
        "collective algorithm suspended on a synchronous endpoint"
    )
