"""Deterministic cooperative scheduler.

Design
------
Baton passing over per-thread events.  Each rank's :class:`Proc` owns a
private ``run_gate`` event and the scheduler owns one of its own; a
control transfer sets exactly the target's event, so a handoff wakes
exactly one thread.  (The original design shared a single condition
variable and ``notify_all``-ed every handoff, waking all ``nprocs``
parked rank threads per simulated MPI call just so they could observe
``running != my_rank`` and sleep again — O(nprocs) spurious wakeups per
scheduling point, measurable in ``bench_protocol_micro``.)  Control
transfers are explicit (``_switch_to_scheduler`` / ``grant``), so the
interleaving of ranks is fully determined by the scheduler's policy and
seed — a requirement for reproducing protocol bugs found by randomised
testing.  The strict baton discipline (exactly one thread is ever
runnable) is what makes the two-event ping-pong safe: an event is only
ever set by the thread handing over the baton and cleared by its owner
on wake.

Scheduling points occur at every simulated MPI call (and anywhere the
application calls ``yield_point`` explicitly).  Between scheduling points a
rank runs uninterrupted, which models the paper's single-threaded C/MPI
processes faithfully.

Policies
--------
``random``
    Pick uniformly among runnable ranks (seeded).  Default; maximises
    interleaving diversity for protocol testing.
``round_robin``
    Cycle through runnable ranks in rank order; useful for debugging.

Stopping faults are realised here: a due kill sets the victim's ``kill_flag``
and the victim raises :class:`~repro.errors.ProcessKilled` at its next
scheduling point (or immediately when woken from a blocked state), after
which it never runs again.
"""

from __future__ import annotations

import threading
import time as _time
from bisect import bisect_left
from typing import TYPE_CHECKING

from repro.errors import ConfigError, DeadlockError, ProcessKilled, SimMPIError
from repro.simmpi import coop
from repro.simmpi.mailbox import RecvDescriptor
from repro.simmpi.process import BlockInfo, Proc, ProcState
from repro.util.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.simulator import Simulator

POLICIES = ("random", "round_robin")


class Scheduler:
    """Baton-passing scheduler over the simulation's rank threads."""

    def __init__(self, sim: "Simulator", seed: int, policy: str = "random") -> None:
        if policy not in POLICIES:
            raise ConfigError(f"unknown scheduling policy {policy!r}; expected {POLICIES}")
        self.sim = sim
        self.policy = policy
        self._policy_is_rr = policy == "round_robin"
        #: Optional repro.trace recorder, taken from the simulator at
        #: construction (the simulator binds its clock first).
        self.tracer = getattr(sim, "tracer", None)
        #: The simulation clock, cached: ``grant`` charges it every slice.
        self._clock = getattr(sim, "clock", None)
        self.rng = RngStream(seed, "scheduler")
        #: Per-rank wall accounting is opt-in (``SimConfig.wall_accounting``):
        #: two ``perf_counter`` reads per baton handoff are pure overhead on
        #: the hot path and the numbers never enter deterministic outputs.
        self._wall_accounting = bool(getattr(sim, "wall_accounting", False))
        #: Set when the baton is handed back to the scheduler thread.
        self._sched_gate = threading.Event()
        self._rr_cursor = 0
        #: Total scheduling slices granted (observability).
        self.total_slices = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # Rank-thread side.
    # ------------------------------------------------------------------ #

    def yield_point(self, proc: Proc) -> None:
        """Voluntary scheduling point for a running rank."""
        self._check_kill(proc)
        proc.state = ProcState.RUNNABLE
        self._switch_to_scheduler(proc)

    def block(self, proc: Proc, info: BlockInfo) -> None:
        """Block the calling rank; returns when the scheduler re-grants it.

        The caller must re-check its wake condition in a loop: the scheduler
        wakes blocked ranks whenever a message is delivered to them, which
        may be a spurious wake for this particular descriptor.
        """
        self._check_kill(proc)
        proc.state = ProcState.BLOCKED
        proc.block_info = info
        tr = self.tracer
        if tr is not None:
            tr.emit("sched", "block", rank=proc.rank, why=info.kind)
        self._switch_to_scheduler(proc)
        proc.block_info = None

    def block_on_recv(self, proc: Proc, desc: RecvDescriptor) -> None:
        """Block until ``desc`` has been matched (or the rank is killed)."""
        while desc.matched is None:
            self.block(proc, BlockInfo("recv", desc))

    # -- generator twins of the three primitives above ------------------- #
    #
    # Under the cooperative core a scheduling point is a ``yield`` instead
    # of a gate handoff; everything around it (kill checks, state flips,
    # trace emissions) is kept line-for-line identical so both cores
    # produce the same event sequence.  Synchronous callers reach these
    # through ``coop.drive``.

    def co_yield_point(self, proc: Proc):
        # Kill checks are inlined (``_raise_kill`` is the cold path): this
        # generator brackets every suspension on the coop hot path.
        if proc.kill_flag:
            self._raise_kill(proc)
        proc.state = ProcState.RUNNABLE
        yield
        if proc.kill_flag:
            self._raise_kill(proc)

    def co_block(self, proc: Proc, info: BlockInfo):
        if proc.kill_flag:
            self._raise_kill(proc)
        proc.state = ProcState.BLOCKED
        proc.block_info = info
        tr = self.tracer
        if tr is not None:
            tr.emit("sched", "block", rank=proc.rank, why=info.kind)
        yield
        if proc.kill_flag:
            self._raise_kill(proc)
        proc.block_info = None

    def co_block_on_recv(self, proc: Proc, desc: RecvDescriptor):
        while desc.matched is None:
            yield from self.co_block(proc, BlockInfo("recv", desc))

    def _switch_to_scheduler(self, proc: Proc) -> None:
        if proc.task is not None:
            # A synchronous primitive on a coop-core rank would park the
            # one real thread on its own gate; fail loudly instead.
            raise SimMPIError(
                f"rank {proc.rank}: synchronous scheduling point under the "
                "cooperative core (missing co_* conversion)"
            )
        self._sched_gate.set()
        proc.run_gate.wait()
        proc.run_gate.clear()
        self._check_kill(proc)

    def _check_kill(self, proc: Proc) -> None:
        if proc.kill_flag:
            self._raise_kill(proc)

    def _raise_kill(self, proc: Proc) -> None:
        proc.kill_flag = False
        raise ProcessKilled(proc.rank, self.sim.clock.now)

    def finish(self, proc: Proc) -> None:
        """Called by a rank thread as its very last act: hand back the baton."""
        self._sched_gate.set()

    def wait_first_grant(self, proc: Proc) -> None:
        """Entry gate: a new thread parks here until its first slice."""
        if proc.task is not None:
            raise SimMPIError(
                f"rank {proc.rank}: thread entry gate reached under the "
                "cooperative core"
            )
        proc.run_gate.wait()
        proc.run_gate.clear()
        self._check_kill(proc)

    # ------------------------------------------------------------------ #
    # Scheduler side (runs on the thread that called Simulator.run).
    # ------------------------------------------------------------------ #

    def grant(self, proc: Proc) -> None:
        """Give ``proc`` one slice; returns when it hands the baton back."""
        self.total_slices += 1
        proc.slices += 1
        tr = self.tracer
        if tr is not None:
            tr.emit("sched", "grant", rank=proc.rank)
        # Every slice costs a scheduling step of virtual time; without this
        # a busy-polling rank (e.g. an MPI_Test loop) would freeze the clock
        # and in-flight messages would never come due.
        clock = self._clock
        if clock is None:
            clock = self._clock = self.sim.clock
        # Inlined ``clock.charge(clock.cost.step)``: the step cost is a
        # non-negative constant and this runs once per scheduling slice.
        clock._now += clock.cost.step
        task = proc.task
        if task is not None:
            # Cooperative core: resume the rank generator until its next
            # scheduling point.  StopIteration is the baton handback of a
            # finished rank (``_co_rank_body`` already recorded the state).
            # The current-proc registry is written directly (it is two
            # writes per slice on the hottest path in the simulator).
            if not self._wall_accounting:
                registry = coop._here
                registry.proc = proc
                try:
                    task.send(None)
                except StopIteration:
                    pass
                finally:
                    registry.proc = None
                return
            t0 = _time.perf_counter()
            coop.set_current_proc(proc)
            try:
                task.send(None)
            except StopIteration:
                pass
            finally:
                coop.set_current_proc(None)
            proc.wall_seconds += _time.perf_counter() - t0
            return
        if not self._wall_accounting:
            proc.run_gate.set()
            self._sched_gate.wait()
            self._sched_gate.clear()
            return
        t0 = _time.perf_counter()
        proc.run_gate.set()
        self._sched_gate.wait()
        self._sched_gate.clear()
        proc.wall_seconds += _time.perf_counter() - t0

    def pick(self, runnable: list[Proc]) -> Proc:
        """Choose the next rank to run according to the policy."""
        if not runnable:
            raise DeadlockError("pick() called with no runnable ranks")
        rank = self.pick_rank(sorted(p.rank for p in runnable))
        return next(p for p in runnable if p.rank == rank)

    def pick_rank(self, ranks: list[int]) -> int:
        """Policy choice over an ascending list of runnable ranks.

        The simulator loop calls this with its maintained runnable index,
        so a pick is O(1)-ish instead of rebuilding and re-sorting a proc
        list every scheduling step.  RNG consumption is identical to the
        historical proc-list path (no draw for a solo rank, one draw
        otherwise), so seeded interleavings are unchanged.
        """
        if not ranks:
            raise DeadlockError("pick_rank() called with no runnable ranks")
        if len(ranks) == 1:
            # The fast path must still advance the round-robin cursor: a
            # solo slice is a real turn, and leaving the cursor behind the
            # rank that just ran would skew the next multi-runnable pick
            # back toward ranks that already had their turn.
            if self._policy_is_rr:
                self._rr_cursor = ranks[0] + 1
            return ranks[0]
        if self._policy_is_rr:
            # First rank at or past the cursor, wrapping to the lowest.
            i = bisect_left(ranks, self._rr_cursor)
            chosen = ranks[i] if i < len(ranks) else ranks[0]
            self._rr_cursor = chosen + 1
            return chosen
        return self.rng.choice(ranks)

    def wake(self, proc: Proc) -> None:
        """Make a blocked rank runnable (a message arrived, or teardown)."""
        if proc.state is ProcState.BLOCKED:
            proc.state = ProcState.RUNNABLE
            tr = self.tracer
            if tr is not None:
                tr.emit("sched", "wake", rank=proc.rank)

    def request_kill(self, proc: Proc) -> None:
        """Arrange for ``proc`` to die at its next scheduling opportunity."""
        if proc.finished:
            return
        proc.kill_flag = True
        if proc.state is ProcState.BLOCKED:
            proc.state = ProcState.RUNNABLE

    def describe_blocked(self, procs: list[Proc]) -> str:
        """Deadlock diagnostics: every blocked rank's state, and — when
        tracing is armed — its last few trace events, so a simulator
        deadlock report shows *how* each rank got stuck."""
        tr = self.tracer
        lines = []
        for p in procs:
            if p.state is not ProcState.BLOCKED:
                continue
            line = p.describe()
            if tr is not None:
                recent = tr.tail(p.rank, 3)
                if recent:
                    line += " | recent: " + ", ".join(ev.short() for ev in recent)
            lines.append(line)
        return "; ".join(lines) if lines else "(no blocked ranks)"
