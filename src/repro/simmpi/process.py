"""Simulated rank processes.

Each rank runs its application function on a dedicated Python thread, but the
scheduler guarantees **exactly one** rank thread executes at any moment
(baton-passing over per-process events — each ``Proc`` owns its private
``run_gate``, so a handoff wakes exactly one thread).  This gives every rank
a real Python call stack — which the precompiler's checkpoint runtime walks
with ``sys._getframe`` — while keeping execution fully deterministic.
"""

from __future__ import annotations

import enum
import threading
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.simmpi.mailbox import Mailbox, RecvDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.simulator import Simulator


class ProcState(enum.Enum):
    NEW = "new"            # thread not yet granted its first slice
    RUNNABLE = "runnable"  # ready to run
    BLOCKED = "blocked"    # waiting on a receive (or explicit wait)
    DONE = "done"          # main returned normally
    DEAD = "dead"          # stopping fault injected
    ERRORED = "errored"    # main raised an application exception


# Tuple, not frozenset: ``in`` over a 3-tuple of enum members is identity
# comparisons in C, while a set probe routes through Enum.__hash__ (a
# Python-level call) — and ``alive`` runs once per scheduling step.
_FINISHED_STATES = (ProcState.DONE, ProcState.DEAD, ProcState.ERRORED)


class BlockInfo:
    """Why a rank is blocked (for deadlock diagnostics)."""

    def __init__(self, kind: str, desc: Optional[RecvDescriptor] = None, detail: str = ""):
        self.kind = kind
        self.desc = desc
        self.detail = detail

    def __repr__(self) -> str:
        if self.desc is not None:
            return (
                f"{self.kind}(source={self.desc.source}, tag={self.desc.tag}, "
                f"ctx={self.desc.context})"
            )
        return f"{self.kind}({self.detail})"


class Proc:
    """One simulated rank: thread, mailbox, and scheduling state."""

    def __init__(self, sim: "Simulator", rank: int, main: Callable[..., Any]) -> None:
        self.sim = sim
        self.rank = rank
        self.main = main
        self._state = ProcState.NEW
        self.mailbox = Mailbox(rank)
        #: Private baton gate: set by the scheduler to grant this rank a
        #: slice, cleared by the rank on wake.  Being per-process, a grant
        #: wakes exactly this thread (no shared-condition thundering herd).
        self.run_gate = threading.Event()
        self.thread: Optional[threading.Thread] = None
        #: Cooperative core: the rank's resumable generator (None under the
        #: threaded core — the scheduler dispatches on this being set).
        self.task: Any = None
        #: Per-rank slot for the precompiler's active checkpoint runtime;
        #: under the coop core all ranks share one OS thread, so the
        #: historical thread-local cannot distinguish them.
        self.c3_runtime: Any = None
        self.kill_flag = False
        self.block_info: Optional[BlockInfo] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: Number of scheduling slices this rank has received.
        self.slices = 0
        #: Wall-clock seconds this rank spent running (real work measurement).
        self.wall_seconds = 0.0

    @property
    def state(self) -> ProcState:
        return self._state

    @state.setter
    def state(self, value: ProcState) -> None:
        """State transition; keeps the simulator's runnable index current.

        Every transition site in the codebase assigns ``proc.state``, so
        routing the runnable-set bookkeeping through this setter lets the
        scheduler loop read a maintained rank-ordered list instead of
        rescanning all procs each step — the scan was O(nprocs) per
        scheduling point and dominated large-rank-count runs.
        """
        old = self._state
        if value is old:
            return
        self._state = value
        if value is ProcState.RUNNABLE:
            insort(self.sim._runnable_ranks, self.rank)
        elif old is ProcState.RUNNABLE:
            ranks = self.sim._runnable_ranks
            ranks.pop(bisect_left(ranks, self.rank))

    @property
    def alive(self) -> bool:
        return self._state not in _FINISHED_STATES

    @property
    def finished(self) -> bool:
        return self._state in _FINISHED_STATES

    def describe(self) -> str:
        base = f"rank {self.rank}: {self.state.value}"
        if self.state is ProcState.BLOCKED and self.block_info is not None:
            base += f" on {self.block_info!r}"
        return base
