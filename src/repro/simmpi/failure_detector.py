"""Heartbeat-based distributed failure detector.

The paper assumes "a mechanism such as a distributed failure detector" for
noticing dead processes (Section 1.1, citing Gupta/Chandra/Goldszmidt).  We
model the standard eventually-perfect heartbeat detector: every process is
expected to emit a heartbeat each ``heartbeat_interval`` of virtual time, and
a process whose silence exceeds ``timeout`` is *suspected*.

In the simulator, the scheduler plays the role of the heartbeat fabric: it
reports activity for a rank whenever that rank runs or one of its messages is
delivered, and it ticks the detector as virtual time advances.  Because
injected faults are real inside the simulation (the rank truly stops), the
detector's suspicions are always eventually accurate; the ``timeout`` adds
the realistic *detection latency* between a fault and the global restart the
recovery driver performs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SuspectEvent:
    """Rank ``rank`` became suspected at virtual time ``time``."""

    rank: int
    time: float
    last_heard: float


class HeartbeatFailureDetector:
    """Tracks per-rank last-activity times and raises suspicions."""

    def __init__(self, nprocs: int, timeout: float = 0.5, heartbeat_interval: float = 0.1) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if heartbeat_interval <= 0 or heartbeat_interval > timeout:
            raise ValueError(
                "heartbeat_interval must be in (0, timeout]; "
                f"got {heartbeat_interval} vs timeout {timeout}"
            )
        self.nprocs = nprocs
        self.timeout = timeout
        self.heartbeat_interval = heartbeat_interval
        self._last_heard = {r: 0.0 for r in range(nprocs)}
        self._suspected: dict[int, SuspectEvent] = {}
        self._completed: set[int] = set()
        #: Optional repro.trace recorder (armed by the simulator).
        self.tracer = None

    # ------------------------------------------------------------------ #

    def heard_from(self, rank: int, now: float) -> None:
        """Record liveness evidence for ``rank`` at time ``now``."""
        if rank in self._suspected:
            # A stopping fault never recovers in this model; evidence after
            # suspicion would indicate a simulator bug.
            raise AssertionError(f"heard from suspected rank {rank}")
        prev = self._last_heard.get(rank, 0.0)
        if now > prev:
            self._last_heard[rank] = now

    def mark_completed(self, rank: int) -> None:
        """A rank that finished its program is exempt from suspicion."""
        self._completed.add(rank)

    def tick(self, now: float) -> list[SuspectEvent]:
        """Advance detector time; returns newly suspected ranks."""
        fresh: list[SuspectEvent] = []
        for rank, last in self._last_heard.items():
            if rank in self._suspected or rank in self._completed:
                continue
            if now - last >= self.timeout:
                event = SuspectEvent(rank=rank, time=now, last_heard=last)
                self._suspected[rank] = event
                fresh.append(event)
                tr = self.tracer
                if tr is not None:
                    tr.emit(
                        "detect", "suspect", t=now,
                        rank=rank, last_heard=last,
                    )
        return fresh

    def suspected(self) -> tuple[int, ...]:
        return tuple(sorted(self._suspected))

    def is_suspected(self, rank: int) -> bool:
        return rank in self._suspected

    def last_heard(self, rank: int) -> float:
        """Latest recorded liveness evidence for ``rank``."""
        return self._last_heard.get(rank, 0.0)

    def detection_latency(self, rank: int, true_death_time: float) -> float | None:
        """Observed latency between a death and its suspicion (for tests)."""
        event = self._suspected.get(rank)
        if event is None:
            return None
        return event.time - true_death_time
