"""Receive status objects (the MPI_Status analogue)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.message import Envelope


@dataclass(frozen=True)
class Status:
    """Metadata about a completed receive."""

    source: int
    tag: int
    nbytes: int

    @classmethod
    def from_envelope(cls, env: Envelope) -> "Status":
        return cls(source=env.source, tag=env.tag, nbytes=env.nbytes)
