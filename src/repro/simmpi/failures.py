"""Stopping-fault injection.

The paper's fault model (Section 1.1): a faulty process hangs and stops
responding — it neither sends nor receives.  Injection is expressed as a
schedule of ``(virtual_time, rank)`` kill events, or as derived schedules
(kill a random rank at a random time in a window, kill during checkpointing,
etc.) built from a seeded RNG so adversarial tests are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class KillEvent:
    """Kill ``rank`` at virtual time ``time``."""

    time: float
    rank: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"kill time must be >= 0, got {self.time}")
        if self.rank < 0:
            raise ConfigError(f"kill rank must be >= 0, got {self.rank}")


class FailureSchedule:
    """An ordered schedule of stopping faults consumed by the scheduler."""

    def __init__(self, events: Iterable[KillEvent] = ()) -> None:
        self._events = sorted(events, key=lambda e: (e.time, e.rank))
        self._cursor = 0

    @classmethod
    def none(cls) -> "FailureSchedule":
        return cls(())

    @classmethod
    def single(cls, time: float, rank: int) -> "FailureSchedule":
        return cls((KillEvent(time, rank),))

    @classmethod
    def random_single(
        cls, master_seed: int, nprocs: int, window: tuple[float, float]
    ) -> "FailureSchedule":
        """One kill of a uniformly random rank at a uniform time in ``window``."""
        lo, hi = window
        if hi <= lo:
            raise ConfigError(f"empty failure window {window}")
        rng = RngStream(master_seed, "failure-injection")
        time = lo + rng.random() * (hi - lo)
        rank = rng.integers(nprocs)
        return cls((KillEvent(time, rank),))

    def next_time(self) -> float | None:
        """Virtual time of the next pending kill, or None when exhausted."""
        if self._cursor < len(self._events):
            return self._events[self._cursor].time
        return None

    def due(self, now: float) -> list[KillEvent]:
        """Pop every kill event whose time has arrived."""
        out: list[KillEvent] = []
        while self._cursor < len(self._events) and self._events[self._cursor].time <= now:
            out.append(self._events[self._cursor])
            self._cursor += 1
        return out

    def remaining(self) -> list[KillEvent]:
        return list(self._events[self._cursor:])

    def reset(self) -> None:
        """Rewind the schedule (a fresh simulator run replays it)."""
        self._cursor = 0

    def shifted(self, dt: float) -> "FailureSchedule":
        """A copy with every event time shifted by ``dt`` (clamped at 0)."""
        return FailureSchedule(
            KillEvent(max(0.0, e.time + dt), e.rank) for e in self._events
        )

    def __len__(self) -> int:
        return len(self._events)
