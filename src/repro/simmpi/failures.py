"""Stopping-fault injection.

The paper's fault model (Section 1.1): a faulty process hangs and stops
responding — it neither sends nor receives.  Injection is expressed as a
schedule of ``(virtual_time, rank)`` kill events, or as derived schedules
(kill a random rank at a random time in a window, kill during checkpointing,
etc.) built from a seeded RNG so adversarial tests are reproducible.

Multi-failure semantics across recovery attempts
------------------------------------------------

A schedule is *stateful across attempts*: an event consumed in attempt *n*
does not fire again in attempt *n+1* — the faulty node has been replaced.
Three rules pin down what "consumed" means when a schedule carries more
than one event:

* **Time-indexed kills** (:class:`KillEvent`) are measured on the attempt's
  own virtual clock, which restarts at 0 every attempt.  An event that was
  *not* reached in attempt *n* (because the failure detector ended the
  attempt first) stays armed and will fire in a later attempt once that
  attempt's clock reaches it — this is how a single schedule expresses a
  cascade of failures across restarts.
* **Attempt-pinned kills** (``KillEvent(t, r, attempt=k)``) are eligible
  only while attempt *k* is running; they model faults *during recovery*
  (a node dying while everyone is replaying attempt ``k``'s restart).  An
  attempt-pinned event whose attempt has passed never fires.
* **Mid-checkpoint crashes** (:class:`CheckpointCrash`) are epoch-indexed,
  not time-indexed: each fires at most once, the first time its
  ``(rank, epoch)`` checkpoint write happens, in whichever attempt that
  occurs.

:meth:`FailureSchedule.reset` rewinds *everything* — consumed kills,
attempt gating and fired checkpoint crashes — so a fresh simulator run
replays the schedule from scratch (rerun-determinism harnesses rely on
this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class KillEvent:
    """Kill ``rank`` at virtual time ``time``.

    ``attempt`` pins the event to one recovery attempt (0-based index):
    ``None`` means "whenever the running attempt's clock reaches ``time``",
    an integer means "only while attempt ``attempt`` is running" — the
    kill-during-recovery scenario.
    """

    time: float
    rank: int
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"kill time must be >= 0, got {self.time}")
        if self.rank < 0:
            raise ConfigError(f"kill rank must be >= 0, got {self.rank}")
        if self.attempt is not None and self.attempt < 0:
            raise ConfigError(f"kill attempt must be >= 0, got {self.attempt}")


@dataclass(frozen=True)
class CheckpointCrash:
    """Kill ``rank`` *while it is writing* its checkpoint for ``epoch``.

    Time-indexed kills (:class:`KillEvent`) land between MPI calls; this
    event lands inside stable storage's write path, after exactly
    ``after_chunks`` chunks of the checkpoint have been processed (written
    or deduped; 0 means before any byte lands) and always before the
    generation manifest is published — the torn-write scenario the storage
    engine's two-phase commit must survive (recovery falls back to the
    previous committed generation).  With ``corrupt_manifest=True`` the
    write instead completes but publishes a checksum-invalid manifest, so
    recovery must *reject* generation ``epoch`` rather than miss it.
    """

    rank: int
    epoch: int
    after_chunks: int = 1
    corrupt_manifest: bool = False

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigError(f"crash rank must be >= 0, got {self.rank}")
        if self.epoch < 1:
            raise ConfigError(f"crash epoch must be >= 1, got {self.epoch}")
        if self.after_chunks < 0:
            raise ConfigError(
                f"after_chunks must be >= 0, got {self.after_chunks}"
            )


class FailureSchedule:
    """An ordered schedule of stopping faults consumed by the scheduler.

    Two event families share the schedule: time-indexed :class:`KillEvent`
    kills (consumed by the scheduler) and :class:`CheckpointCrash` events
    (consumed by stable storage mid-write).  Both are stateful across
    recovery attempts — see the module docstring for the exact
    multi-failure semantics.  The recovery driver announces each attempt
    via :meth:`begin_attempt`; standalone simulator runs default to
    attempt 0.
    """

    def __init__(
        self,
        events: Iterable[KillEvent] = (),
        checkpoint_crashes: Iterable[CheckpointCrash] = (),
    ) -> None:
        self._events: tuple[KillEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.rank))
        )
        self._pristine_crashes: tuple[CheckpointCrash, ...] = tuple(
            checkpoint_crashes
        )
        self._consumed: list[KillEvent] = []
        self._pending: list[KillEvent] = list(self._events)
        self._checkpoint_crashes: list[CheckpointCrash] = list(
            self._pristine_crashes
        )
        self._fired_crashes: list[CheckpointCrash] = []
        self._attempt = 0

    @classmethod
    def none(cls) -> "FailureSchedule":
        return cls(())

    @classmethod
    def single(cls, time: float, rank: int) -> "FailureSchedule":
        return cls((KillEvent(time, rank),))

    @classmethod
    def during_checkpoint(
        cls,
        rank: int,
        epoch: int,
        after_chunks: int = 1,
        corrupt_manifest: bool = False,
    ) -> "FailureSchedule":
        """Kill ``rank`` in the middle of writing its ``epoch`` checkpoint."""
        return cls(
            (),
            checkpoint_crashes=(
                CheckpointCrash(rank, epoch, after_chunks, corrupt_manifest),
            ),
        )

    @classmethod
    def random_single(
        cls, master_seed: int, nprocs: int, window: tuple[float, float]
    ) -> "FailureSchedule":
        """One kill of a uniformly random rank at a uniform time in ``window``."""
        lo, hi = window
        if hi <= lo:
            raise ConfigError(f"empty failure window {window}")
        rng = RngStream(master_seed, "failure-injection")
        time = lo + rng.random() * (hi - lo)
        rank = rng.integers(nprocs)
        return cls((KillEvent(time, rank),))

    # ------------------------------------------------------------------ #
    # Attempt gating.
    # ------------------------------------------------------------------ #

    def begin_attempt(self, index: int) -> None:
        """Announce that recovery attempt ``index`` is starting.

        Attempt-pinned events (``KillEvent.attempt is not None``) are only
        eligible while their attempt is the current one.  The recovery
        driver calls this before every simulator attempt; standalone
        simulator runs stay on the default attempt 0.
        """
        if index < 0:
            raise ConfigError(f"attempt index must be >= 0, got {index}")
        self._attempt = index

    @property
    def current_attempt(self) -> int:
        return self._attempt

    def _eligible(self, event: KillEvent) -> bool:
        return event.attempt is None or event.attempt == self._attempt

    # ------------------------------------------------------------------ #
    # Kill events.
    # ------------------------------------------------------------------ #

    def next_time(self) -> float | None:
        """Virtual time of the next pending *eligible* kill, or None.

        Events pinned to a different attempt are invisible here: the
        simulator uses this to advance virtual time, and jumping to a time
        whose event cannot fire would stall the event loop.
        """
        times = [e.time for e in self._pending if self._eligible(e)]
        return min(times) if times else None

    def due(self, now: float) -> list[KillEvent]:
        """Pop every eligible kill event whose time has arrived."""
        out: list[KillEvent] = []
        keep: list[KillEvent] = []
        for event in self._pending:
            if self._eligible(event) and event.time <= now:
                out.append(event)
            else:
                keep.append(event)
        self._pending = keep
        self._consumed.extend(out)
        return out

    def remaining(self) -> list[KillEvent]:
        """Every not-yet-consumed kill event (any attempt)."""
        return list(self._pending)

    def consumed_events(self) -> tuple[KillEvent, ...]:
        """Kill events already consumed, in consumption order."""
        return tuple(self._consumed)

    # ------------------------------------------------------------------ #
    # Checkpoint crashes.
    # ------------------------------------------------------------------ #

    def take_checkpoint_crash(self, rank: int, epoch: int) -> CheckpointCrash | None:
        """Pop the crash armed for ``(rank, epoch)``, if any (fires once)."""
        for index, crash in enumerate(self._checkpoint_crashes):
            if crash.rank == rank and crash.epoch == epoch:
                fired = self._checkpoint_crashes.pop(index)
                self._fired_crashes.append(fired)
                return fired
        return None

    def remaining_checkpoint_crashes(self) -> tuple[CheckpointCrash, ...]:
        return tuple(self._checkpoint_crashes)

    def fired_checkpoint_crashes(self) -> tuple[CheckpointCrash, ...]:
        """Checkpoint crashes already realised, in firing order."""
        return tuple(self._fired_crashes)

    # ------------------------------------------------------------------ #
    # Whole-schedule operations.
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Rewind the schedule (a fresh simulator run replays it).

        Restores consumed kill events, the attempt cursor *and* fired
        checkpoint crashes — the schedule becomes indistinguishable from a
        newly constructed one.
        """
        self._pending = list(self._events)
        self._consumed.clear()
        self._checkpoint_crashes = list(self._pristine_crashes)
        self._fired_crashes.clear()
        self._attempt = 0

    def shifted(self, dt: float) -> "FailureSchedule":
        """A pristine copy with every kill time shifted by ``dt`` (clamped
        at 0).  Checkpoint crashes are epoch-indexed, not time-indexed, so
        they carry over unchanged."""
        return FailureSchedule(
            (
                KillEvent(max(0.0, e.time + dt), e.rank, e.attempt)
                for e in self._events
            ),
            checkpoint_crashes=self._pristine_crashes,
        )

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        """Truthiness covers *both* event families — a schedule holding only
        mid-checkpoint crashes must not read as empty."""
        return bool(self._events or self._pristine_crashes)
