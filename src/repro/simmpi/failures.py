"""Stopping-fault injection.

The paper's fault model (Section 1.1): a faulty process hangs and stops
responding — it neither sends nor receives.  Injection is expressed as a
schedule of ``(virtual_time, rank)`` kill events, or as derived schedules
(kill a random rank at a random time in a window, kill during checkpointing,
etc.) built from a seeded RNG so adversarial tests are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class KillEvent:
    """Kill ``rank`` at virtual time ``time``."""

    time: float
    rank: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"kill time must be >= 0, got {self.time}")
        if self.rank < 0:
            raise ConfigError(f"kill rank must be >= 0, got {self.rank}")


@dataclass(frozen=True)
class CheckpointCrash:
    """Kill ``rank`` *while it is writing* its checkpoint for ``epoch``.

    Time-indexed kills (:class:`KillEvent`) land between MPI calls; this
    event lands inside stable storage's write path, after exactly
    ``after_chunks`` chunks of the checkpoint have been processed (written
    or deduped; 0 means before any byte lands) and always before the
    generation manifest is published — the torn-write scenario the storage
    engine's two-phase commit must survive (recovery falls back to the
    previous committed generation).  With ``corrupt_manifest=True`` the
    write instead completes but publishes a checksum-invalid manifest, so
    recovery must *reject* generation ``epoch`` rather than miss it.
    """

    rank: int
    epoch: int
    after_chunks: int = 1
    corrupt_manifest: bool = False

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigError(f"crash rank must be >= 0, got {self.rank}")
        if self.epoch < 1:
            raise ConfigError(f"crash epoch must be >= 1, got {self.epoch}")
        if self.after_chunks < 0:
            raise ConfigError(
                f"after_chunks must be >= 0, got {self.after_chunks}"
            )


class FailureSchedule:
    """An ordered schedule of stopping faults consumed by the scheduler.

    Two event families share the schedule: time-indexed :class:`KillEvent`
    kills (consumed by the scheduler) and :class:`CheckpointCrash` events
    (consumed by stable storage mid-write).  Both are stateful across
    recovery attempts: an event consumed in attempt *n* does not fire in
    attempt *n+1* — the faulty node has been replaced.
    """

    def __init__(
        self,
        events: Iterable[KillEvent] = (),
        checkpoint_crashes: Iterable[CheckpointCrash] = (),
    ) -> None:
        self._events = sorted(events, key=lambda e: (e.time, e.rank))
        self._cursor = 0
        self._checkpoint_crashes = list(checkpoint_crashes)

    @classmethod
    def none(cls) -> "FailureSchedule":
        return cls(())

    @classmethod
    def single(cls, time: float, rank: int) -> "FailureSchedule":
        return cls((KillEvent(time, rank),))

    @classmethod
    def during_checkpoint(
        cls,
        rank: int,
        epoch: int,
        after_chunks: int = 1,
        corrupt_manifest: bool = False,
    ) -> "FailureSchedule":
        """Kill ``rank`` in the middle of writing its ``epoch`` checkpoint."""
        return cls(
            (),
            checkpoint_crashes=(
                CheckpointCrash(rank, epoch, after_chunks, corrupt_manifest),
            ),
        )

    @classmethod
    def random_single(
        cls, master_seed: int, nprocs: int, window: tuple[float, float]
    ) -> "FailureSchedule":
        """One kill of a uniformly random rank at a uniform time in ``window``."""
        lo, hi = window
        if hi <= lo:
            raise ConfigError(f"empty failure window {window}")
        rng = RngStream(master_seed, "failure-injection")
        time = lo + rng.random() * (hi - lo)
        rank = rng.integers(nprocs)
        return cls((KillEvent(time, rank),))

    def next_time(self) -> float | None:
        """Virtual time of the next pending kill, or None when exhausted."""
        if self._cursor < len(self._events):
            return self._events[self._cursor].time
        return None

    def due(self, now: float) -> list[KillEvent]:
        """Pop every kill event whose time has arrived."""
        out: list[KillEvent] = []
        while self._cursor < len(self._events) and self._events[self._cursor].time <= now:
            out.append(self._events[self._cursor])
            self._cursor += 1
        return out

    def remaining(self) -> list[KillEvent]:
        return list(self._events[self._cursor:])

    def take_checkpoint_crash(self, rank: int, epoch: int) -> CheckpointCrash | None:
        """Pop the crash armed for ``(rank, epoch)``, if any (fires once)."""
        for index, crash in enumerate(self._checkpoint_crashes):
            if crash.rank == rank and crash.epoch == epoch:
                return self._checkpoint_crashes.pop(index)
        return None

    def remaining_checkpoint_crashes(self) -> tuple[CheckpointCrash, ...]:
        return tuple(self._checkpoint_crashes)

    def reset(self) -> None:
        """Rewind the schedule (a fresh simulator run replays it)."""
        self._cursor = 0

    def shifted(self, dt: float) -> "FailureSchedule":
        """A copy with every event time shifted by ``dt`` (clamped at 0)."""
        return FailureSchedule(
            KillEvent(max(0.0, e.time + dt), e.rank) for e in self._events
        )

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        """Truthiness covers *both* event families — a schedule holding only
        mid-checkpoint crashes must not read as empty."""
        return bool(self._events or self._checkpoint_crashes)
