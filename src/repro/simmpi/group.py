"""Process groups (the MPI_Group analogue).

A group is an ordered set of world ranks.  Communicators are built over
groups; ``Comm.split``/``Comm.dup`` produce new groups.  Groups are plain
immutable values, safe to checkpoint directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimMPIError


@dataclass(frozen=True)
class Group:
    """An ordered, duplicate-free tuple of world ranks."""

    members: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise SimMPIError(f"duplicate ranks in group {self.members}")
        if any(r < 0 for r in self.members):
            raise SimMPIError(f"negative rank in group {self.members}")

    @classmethod
    def world(cls, nprocs: int) -> "Group":
        return cls(tuple(range(nprocs)))

    @property
    def size(self) -> int:
        return len(self.members)

    def rank_of(self, world_rank: int) -> int:
        """Group-local rank of a world rank (raises if not a member)."""
        try:
            return self.members.index(world_rank)
        except ValueError:
            raise SimMPIError(f"rank {world_rank} not in group {self.members}") from None

    def world_rank(self, group_rank: int) -> int:
        """World rank of a group-local rank."""
        if not 0 <= group_rank < len(self.members):
            raise SimMPIError(f"group rank {group_rank} out of range for {self.members}")
        return self.members[group_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self.members

    def subset(self, group_ranks: list[int]) -> "Group":
        """New group from a list of *group-local* ranks."""
        return Group(tuple(self.world_rank(r) for r in group_ranks))

    def translate(self, other: "Group", group_rank: int) -> int | None:
        """Translate a rank in this group to its rank in ``other`` (or None)."""
        world = self.world_rank(group_rank)
        return other.members.index(world) if world in other.members else None
