"""Nonblocking communication requests (the MPI_Request analogue).

The simulator uses an eager-buffered send model (a reliable transport with
unbounded buffering, per the paper's assumption), so send requests complete
as soon as they are posted.  Receive requests complete when the matching
engine pairs them with a message.  ``wait`` is a scheduling point: the
calling rank blocks cooperatively until completion.

These are the *simulator's* request objects; the C3 protocol layer never
exposes them to applications directly — it wraps them in pseudo-handles
(:mod:`repro.protocol.pseudo_handles`) so they can be reinitialised on
restart without access to library internals (paper Section 5.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.errors import SimMPIError
from repro.simmpi.mailbox import RecvDescriptor
from repro.simmpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Comm


class Request:
    """Base class for nonblocking operation handles."""

    def __init__(self, comm: "Comm") -> None:
        self._comm = comm
        self._done = False

    def test(self) -> bool:
        """Nonblocking completion check."""
        raise NotImplementedError

    def wait(self) -> Any:
        """Block (cooperatively) until complete; returns the received object
        for receive requests and ``None`` for send requests."""
        raise NotImplementedError

    @property
    def completed(self) -> bool:
        return self._done


class SendRequest(Request):
    """Handle for an eager send: complete at creation."""

    def __init__(self, comm: "Comm") -> None:
        super().__init__(comm)
        self._done = True

    def test(self) -> bool:
        return True

    def wait(self) -> None:
        # Even an already-complete wait is a scheduling point, matching the
        # behaviour of a real MPI progress engine.
        self._comm._yield_point()
        return None

    def co_wait(self):
        yield from self._comm.co_yield_point()
        return None


class RecvRequest(Request):
    """Handle for a posted nonblocking receive."""

    def __init__(self, comm: "Comm", desc: RecvDescriptor) -> None:
        super().__init__(comm)
        self._desc = desc
        self._payload: Any = None
        self.status: Optional[Status] = None

    def _harvest(self) -> None:
        if self._desc.matched is not None and not self._done:
            env = self._desc.matched
            self._payload = env.payload
            self.status = Status.from_envelope(env)
            self._done = True

    def test(self) -> bool:
        self._harvest()
        return self._done

    def wait(self) -> Any:
        self._harvest()
        while not self._done:
            self._comm._block_on_recv(self._desc)
            self._harvest()
        return self._payload

    def co_wait(self):
        self._harvest()
        while not self._done:
            yield from self._comm._co_block_on_recv(self._desc)
            self._harvest()
        return self._payload

    def cancel(self) -> bool:
        """Cancel if not yet matched; True on success."""
        if self._done:
            return False
        return self._comm._cancel_recv(self._desc)


def waitall(requests: list[Request]) -> list[Any]:
    """Wait for every request; returns their payloads in order."""
    return [req.wait() for req in requests]


def waitany(requests: list[Request]) -> tuple[int, Any]:
    """Wait until at least one request completes; returns (index, payload).

    Polls in index order at each scheduling step, which is deterministic
    under the simulator's cooperative scheduler.
    """
    if not requests:
        raise SimMPIError("waitany on empty request list")
    while True:
        for i, req in enumerate(requests):
            if req.test():
                return i, req.wait()
        # Nothing ready: let the world make progress.
        requests[0]._comm._yield_point()
