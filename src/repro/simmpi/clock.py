"""Virtual time for the simulator.

Virtual time drives everything that the paper expresses in wall-clock terms:
the 30-second checkpoint interval, network delivery delays, fault-injection
times and failure-detection latency.  It advances in two ways:

* ranks *charge* time for the operations they perform (a linear
  latency/bandwidth cost model for messages, explicit charges for compute
  phases), and
* the scheduler *jumps* time forward to the next pending event when every
  rank is blocked.

Keeping time virtual (rather than reading the host clock) makes every run
exactly reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Linear cost model for simulated operations.

    ``alpha`` is per-message latency in seconds, ``beta`` is seconds per
    byte (inverse bandwidth), ``step`` is the charge for a bare scheduling
    step, and ``flop`` is seconds per floating point operation for
    applications that charge compute by operation count.
    """

    alpha: float = 10e-6
    beta: float = 1.0 / 100e6
    step: float = 0.5e-6
    flop: float = 1.0 / 1e9

    def message_cost(self, nbytes: int) -> float:
        """Time to move one message of ``nbytes`` across the network."""
        return self.alpha + self.beta * nbytes

    def compute_cost(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations."""
        return self.flop * flops


class VirtualClock:
    """Monotone virtual clock."""

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost = cost_model or CostModel()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def charge(self, seconds: float) -> float:
        """Advance time by a non-negative amount; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (never backwards)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self) -> None:
        self._now = 0.0
