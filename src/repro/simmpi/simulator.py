"""Top-level simulator: configuration, run loop, failure handling.

:class:`Simulator` executes one *job attempt*: it spawns one thread per rank,
interleaves them deterministically through the :class:`Scheduler`, moves
messages through the :class:`Network`, injects stopping faults from a
:class:`FailureSchedule`, and watches for them with a heartbeat
:class:`HeartbeatFailureDetector`.

A run ends in one of three ways:

* **completed** — every rank's main function returned; per-rank results are
  collected in :class:`SimResult`;
* **failed** — a stopping fault was detected; the simulator tears all ranks
  down (they are all rolled back on restart, per the paper's recovery model)
  and returns a failed :class:`SimResult`, which the recovery driver turns
  into a restart from the last committed global checkpoint;
* **error** — a rank raised an ordinary Python exception, which is re-raised
  to the caller after teardown (a bug, not a simulated fault).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from types import GeneratorType

from repro.errors import ConfigError, DeadlockError, ProcessKilled, SimMPIError
from repro.simmpi import coop
from repro.simmpi.clock import CostModel, VirtualClock
from repro.simmpi.comm import Comm
from repro.simmpi.failure_detector import HeartbeatFailureDetector
from repro.simmpi.failures import FailureSchedule
from repro.simmpi.group import Group
from repro.simmpi.network import Network, NetworkStats
from repro.simmpi.process import Proc, ProcState
from repro.simmpi.scheduler import Scheduler
from repro.util.rng import RngStream

MainFn = Callable[["RankContext"], Any]


@dataclass
class SimConfig:
    """Knobs for one simulation attempt."""

    nprocs: int
    seed: int = 0
    #: Seed for per-rank application RNG streams.  Defaults to ``seed``;
    #: the recovery driver pins it across attempts so that application
    #: randomness is stable while scheduler/network interleavings vary.
    app_seed: Optional[int] = None
    sched_policy: str = "random"
    ordering: str = "per_tag_fifo"
    base_delay: float = 5e-6
    jitter: float = 20e-6
    detector_timeout: float = 0.25
    cost_model: CostModel = field(default_factory=CostModel)
    #: Hard cap on scheduling slices — catches livelocks in protocol code.
    max_slices: int = 20_000_000
    #: Execution core.  ``"threads"`` runs one OS thread per rank (any
    #: plain ``main(ctx)`` works); ``"coop"`` runs every rank as a
    #: generator resumed on the scheduler's thread (mains must be
    #: generator functions or provide ``co_*`` call paths) — same baton
    #: discipline, bit-identical outcomes, no thread overhead.
    sim_core: str = "threads"
    #: Opt-in per-rank wall-clock accounting (``SimResult.per_rank_wall``).
    #: Off by default: it costs two ``perf_counter`` reads per scheduling
    #: slice and never feeds deterministic outputs.
    wall_accounting: bool = False

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ConfigError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.detector_timeout <= 0:
            raise ConfigError("detector_timeout must be positive")
        if self.sim_core not in ("threads", "coop"):
            raise ConfigError(
                f"sim_core must be 'threads' or 'coop', got {self.sim_core!r}"
            )


@dataclass
class SimResult:
    """Outcome of one simulation attempt."""

    completed: bool
    failed: bool
    dead_ranks: tuple[int, ...]
    detected_at: Optional[float]
    results: list[Any]
    virtual_time: float
    wall_seconds: float
    per_rank_wall: list[float]
    network: NetworkStats
    total_slices: int


class RankContext:
    """The per-rank handle passed to application main functions."""

    def __init__(self, sim: "Simulator", proc: Proc) -> None:
        self.sim = sim
        self.proc = proc
        self.comm = Comm(sim, proc, sim.world_group, context=0)
        #: A per-rank deterministic RNG stream for application use.  Its
        #: state is ordinary application memory: the C3 context checkpoints
        #: and restores it, so post-restart draws resume mid-stream.
        seed = sim.config.app_seed if sim.config.app_seed is not None else sim.config.seed
        self.rng = RngStream(seed, f"app-rank-{proc.rank}")
        #: Slot used by the recovery driver to attach the C3 machinery.
        self.c3: Any = None
        #: True when this attempt is restarting from a checkpoint.
        self.restoring: bool = False

    @property
    def rank(self) -> int:
        return self.proc.rank

    @property
    def size(self) -> int:
        return self.sim.config.nprocs

    def compute(self, flops: float = 0.0, seconds: float = 0.0) -> None:
        """Charge virtual time for a computation phase."""
        cost = self.sim.clock.cost.compute_cost(flops) + seconds
        self.sim.clock.charge(cost)

    def wtime(self) -> float:
        return self.sim.clock.now

    def yield_point(self) -> None:
        """Voluntary scheduling point (lets other ranks run)."""
        self.sim.scheduler.yield_point(self.proc)

    def co_yield_point(self):
        """Generator twin of :meth:`yield_point` (coop-core mains)."""
        yield from self.sim.scheduler.co_yield_point(self.proc)

    def potential_checkpoint(self) -> None:
        """No-op unless the recovery driver attached the C3 machinery."""
        if self.c3 is not None:
            self.c3.potential_checkpoint()

    def co_potential_checkpoint(self):
        """Generator twin of :meth:`potential_checkpoint`."""
        if self.c3 is not None:
            co = getattr(self.c3, "co_potential_checkpoint", None)
            if co is not None:
                return (yield from co())
            return self.c3.potential_checkpoint()
        return None


class Simulator:
    """One deterministic simulation attempt over ``nprocs`` ranks."""

    def __init__(
        self,
        config: SimConfig,
        main: MainFn | Sequence[MainFn],
        failures: FailureSchedule | None = None,
        context_factory: Callable[["Simulator", Proc], RankContext] | None = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self.config = config
        self.clock = VirtualClock(config.cost_model)
        #: Optional :class:`repro.trace.TraceRecorder`.  Bound to this
        #: attempt's clock here so every layer that can see the simulator
        #: (scheduler, pipeline via ``comm.sim``) emits at current virtual
        #: time; network/detector get direct references because they never
        #: hold a sim back-pointer.
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(self.clock)
        self.world_group = Group.world(config.nprocs)
        self.network = Network(
            config.nprocs,
            RngStream(config.seed, "network"),
            base_delay=config.base_delay,
            jitter=config.jitter,
            ordering=config.ordering,
        )
        self.network.tracer = tracer
        #: Mirrored from the config so hot paths (and ``coop.drive``) read
        #: one attribute; must be set before the scheduler is built.
        self.sim_core = config.sim_core
        self.wall_accounting = config.wall_accounting
        self.scheduler = Scheduler(self, config.seed, config.sched_policy)
        self.detector = HeartbeatFailureDetector(
            config.nprocs, timeout=config.detector_timeout,
            heartbeat_interval=config.detector_timeout / 2,
        )
        self.detector.tracer = tracer
        self.failures = failures or FailureSchedule.none()
        self._context_factory = context_factory or RankContext
        if callable(main):
            mains: list[MainFn] = [main] * config.nprocs
        else:
            mains = list(main)
            if len(mains) != config.nprocs:
                raise ConfigError(
                    f"need {config.nprocs} main functions, got {len(mains)}"
                )
        #: Ranks currently RUNNABLE, ascending; maintained by the
        #: ``Proc.state`` setter so the scheduler loop never rescans procs.
        self._runnable_ranks: list[int] = []
        self.procs = [Proc(self, r, mains[r]) for r in range(config.nprocs)]
        self._death_time: dict[int, float] = {}
        self._contexts: dict[Any, int] = {}
        self._next_context = 1
        self._ran = False

    # ------------------------------------------------------------------ #

    def allocate_context(self, parent: int, key: Any) -> int:
        """Deterministically allocate a child communicator context id.

        Every member of the parent communicator calls this with the same
        ``(parent, key)`` pair (MPI's collective-order requirement), so the
        memoised registry hands them all the same fresh id without any
        message exchange.
        """
        full_key = (parent, key)
        if full_key not in self._contexts:
            self._contexts[full_key] = self._next_context
            self._next_context += 1
        return self._contexts[full_key]

    # ------------------------------------------------------------------ #

    def _thread_body(self, proc: Proc) -> None:
        try:
            self.scheduler.wait_first_grant(proc)
            ctx = self._context_factory(self, proc)
            out = proc.main(ctx)
            if isinstance(out, GeneratorType):
                # Generator mains run under either core; here each of its
                # yields becomes a baton handoff of this rank thread.
                out = coop.drive(out, ctx.comm)
            proc.result = out
            proc.state = ProcState.DONE
        except ProcessKilled:
            proc.state = ProcState.DEAD
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            proc.error = exc
            proc.state = ProcState.ERRORED
        finally:
            self.scheduler.finish(proc)

    def _co_rank_body(self, proc: Proc):
        """Cooperative twin of :meth:`_thread_body`: the rank as a generator.

        The scheduler resumes it via ``task.send(None)``; a ``ProcessKilled``
        raised at any inner scheduling point unwinds the whole generator
        chain (``finally`` blocks run, as on a killed thread) and is
        absorbed here, exactly like the threaded body's except clause.
        """
        try:
            self.scheduler._check_kill(proc)  # first-grant kill window
            ctx = self._context_factory(self, proc)
            out = proc.main(ctx)
            if isinstance(out, GeneratorType):
                proc.result = yield from out
            else:
                proc.result = out
            proc.state = ProcState.DONE
        except ProcessKilled:
            proc.state = ProcState.DEAD
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            proc.error = exc
            proc.state = ProcState.ERRORED

    def _start_ranks(self) -> None:
        if self.sim_core == "coop":
            for proc in self.procs:
                proc.state = ProcState.RUNNABLE
                proc.task = self._co_rank_body(proc)
            return
        for proc in self.procs:
            proc.state = ProcState.RUNNABLE
            proc.thread = threading.Thread(
                target=self._thread_body,
                args=(proc,),
                name=f"rank-{proc.rank}",
                daemon=True,
            )
            proc.thread.start()

    def _apply_due_failures(self) -> None:
        for event in self.failures.due(self.clock.now):
            proc = self.procs[event.rank]
            if proc.finished:
                continue
            if event.rank not in self._death_time and not self.detector.is_suspected(
                event.rank
            ):
                # The victim heartbeated right up to its death.  Credit it
                # now, *before* freezing its liveness: after a long
                # advance_to jump its last refresh can be arbitrarily stale,
                # and measuring silence from there would fire the detector
                # the instant the kill lands (latency 0) instead of exactly
                # one timeout after the death.
                self.detector.heard_from(event.rank, self.clock.now)
            self._death_time.setdefault(event.rank, self.clock.now)
            tr = self.tracer
            if tr is not None:
                tr.emit("fail", "kill", rank=event.rank, at=event.time)
            self.scheduler.request_kill(proc)

    def _deliver_due_messages(self) -> None:
        for env in self.network.pop_due(self.clock.now):
            proc = self.procs[env.dest]
            if proc.finished:
                continue
            proc.mailbox.deliver(env)
            self.scheduler.wake(proc)

    def _detector_due(self) -> bool:
        """Can this step's detector tick possibly produce a suspicion?

        Live ranks are refreshed to ``now`` before every tick, so the only
        ranks a tick can newly suspect are registered deaths whose frozen
        silence has reached the timeout.  Checking just those (usually zero
        or one) keeps the per-step detector work O(#deaths) instead of
        O(nprocs) — the difference between O(steps) and O(steps * nprocs)
        total, which dominated large-rank-count runs.  The decisive step
        still runs the full refresh+tick pair, so suspicion times, event
        fields, and trace output are bit-identical to the always-tick
        regime.
        """
        if not self._death_time:
            return False
        now = self.clock.now
        detector = self.detector
        timeout = detector.timeout
        for rank in self._death_time:
            if not detector.is_suspected(rank) and (
                now - detector.last_heard(rank) >= timeout
            ):
                return True
        return False

    def _refresh_liveness(self) -> None:
        for proc in self.procs:
            if proc.state is ProcState.DONE or proc.state is ProcState.ERRORED:
                self.detector.mark_completed(proc.rank)
            elif proc.state is not ProcState.DEAD:
                # A rank with a kill pending is already dead for detection
                # purposes (its death_time is recorded); refreshing it here
                # would push last_heard past death_time and stall the
                # detector-fire time jump.
                if proc.rank in self._death_time:
                    continue
                if not self.detector.is_suspected(proc.rank):
                    self.detector.heard_from(proc.rank, self.clock.now)

    def _next_detector_fire(self) -> Optional[float]:
        times = [
            self._death_time[r] + self.detector.timeout
            for r in self._death_time
            if not self.detector.is_suspected(r)
        ]
        return min(times) if times else None

    def _teardown(self) -> None:
        """Kill every remaining rank and join all threads."""
        for proc in self.procs:
            if not proc.finished:
                self.scheduler.request_kill(proc)
        # Grant each not-yet-finished rank so its thread can unwind.
        for proc in self.procs:
            while not proc.finished:
                self.scheduler.grant(proc)
        for proc in self.procs:
            if proc.thread is not None:
                proc.thread.join(timeout=10)
        self.network.drain()

    def _handle_new_death(self, proc: Proc) -> None:
        self.network.mark_dead(proc.rank)
        proc.mailbox.clear()
        self._death_time.setdefault(proc.rank, self.clock.now)

    # ------------------------------------------------------------------ #

    def run(self) -> SimResult:
        """Execute the attempt to completion, failure, or error."""
        if self._ran:
            raise SimMPIError("a Simulator instance can only run once")
        self._ran = True
        import time as _time

        wall_start = _time.perf_counter()
        self._start_ranks()
        detected_at: Optional[float] = None

        # Hot-loop locals: one scheduling step runs for every simulated MPI
        # call, so attribute traffic here is a measurable fraction of total
        # wall time at large rank counts.  The inline peeks (pending kills,
        # due deliveries, registered deaths) skip whole handler calls on
        # the overwhelmingly common step where nothing is due.
        procs = self.procs
        scheduler = self.scheduler
        clock = self.clock
        failures = self.failures
        net_heap = self.network._heap
        runnable_ranks = self._runnable_ranks
        death_time = self._death_time
        max_slices = self.config.max_slices

        while True:
            if failures._pending:
                self._apply_due_failures()
            if net_heap and net_heap[0][0] <= clock._now:
                self._deliver_due_messages()
            if death_time and self._detector_due():
                self._refresh_liveness()
                suspicions = self.detector.tick(clock.now)
                if suspicions:
                    detected_at = suspicions[0].time
                    break

            if runnable_ranks:
                if scheduler.total_slices >= max_slices:
                    self._teardown()
                    raise SimMPIError(
                        f"exceeded max_slices={max_slices}; likely livelock"
                    )
                proc = procs[scheduler.pick_rank(runnable_ranks)]
                # The pick came from the runnable index, so the proc is
                # RUNNABLE — and hence alive — going into its slice; a
                # DEAD state afterwards is always a fresh death.
                scheduler.grant(proc)
                state = proc._state
                if state is ProcState.ERRORED:
                    error = proc.error
                    self._teardown()
                    raise error  # application bug: surface with traceback
                if state is ProcState.DEAD:
                    self._handle_new_death(proc)
                continue

            if all(p.finished for p in self.procs):
                if any(p.state is ProcState.DEAD for p in self.procs):
                    # Everybody else finished before the detector fired;
                    # jump time forward so the fault is still reported.
                    # The 1e-12 floor matches the event-jump branch below:
                    # with last_heard == death_time, float rounding can put
                    # (death + timeout) - death just under timeout, and a
                    # bare jump to the fire time would then spin forever.
                    fire = self._next_detector_fire()
                    if fire is not None:
                        self.clock.advance_to(max(fire, self.clock.now + 1e-12))
                        continue
                break

            # Nobody runnable: advance virtual time to the next event.
            candidates = [
                t
                for t in (
                    self.network.next_delivery_time(),
                    self.failures.next_time(),
                    self._next_detector_fire(),
                )
                if t is not None
            ]
            if not candidates:
                blocked = self.scheduler.describe_blocked(self.procs)
                self._teardown()
                raise DeadlockError(f"no runnable ranks and no pending events: {blocked}")
            self.clock.advance_to(max(min(candidates), self.clock.now + 1e-12))

        # Either clean completion or detected failure.
        failed = detected_at is not None
        if failed:
            self._teardown()
        wall = _time.perf_counter() - wall_start
        # Only injected faults count as deaths; teardown after detection also
        # unwinds surviving ranks via ProcessKilled, but those are rollback
        # victims, not failures.
        dead = tuple(sorted(self._death_time))
        return SimResult(
            completed=not failed and all(p.state is ProcState.DONE for p in self.procs),
            failed=failed,
            dead_ranks=dead,
            detected_at=detected_at,
            results=[p.result for p in self.procs],
            virtual_time=self.clock.now,
            wall_seconds=wall,
            per_rank_wall=[p.wall_seconds for p in self.procs],
            network=self.network.stats,
            total_slices=self.scheduler.total_slices,
        )


def run_simple(
    main: MainFn | Sequence[MainFn],
    nprocs: int,
    seed: int = 0,
    **config_kwargs: Any,
) -> SimResult:
    """Convenience wrapper: build a config, run once, return the result."""
    config = SimConfig(nprocs=nprocs, seed=seed, **config_kwargs)
    return Simulator(config, main).run()
