"""Per-rank message matching engine.

Implements MPI's two-queue matching discipline:

* messages delivered before a matching receive is posted wait in the
  *unexpected-message queue* (in delivery order);
* receives posted before a matching message arrives wait in the
  *posted-receive queue* (in post order).

A newly delivered message is matched against posted receives in post order;
a newly posted receive is matched against unexpected messages in delivery
order.  ``ANY_SOURCE``/``ANY_TAG`` wildcards are honoured.  Matching is also
extensible with an arbitrary predicate, which the C3 recovery engine uses to
wait for the message with a specific piggybacked ``messageID`` during
deterministic replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.message import Envelope


@dataclass
class RecvDescriptor:
    """A posted receive waiting to be matched."""

    source: int
    tag: int
    context: int
    predicate: Optional[Callable[[Envelope], bool]] = None
    matched: Optional[Envelope] = None
    cancelled: bool = False
    #: Post-order sequence assigned by the mailbox.
    order: int = field(default=-1)

    def accepts(self, env: Envelope) -> bool:
        """True if this descriptor matches ``env``."""
        if self.cancelled or self.matched is not None:
            return False
        if self.context != env.context:
            return False
        if self.source != ANY_SOURCE and self.source != env.source:
            return False
        if self.tag != ANY_TAG and self.tag != env.tag:
            return False
        if self.predicate is not None and not self.predicate(env):
            return False
        return True

    @property
    def completed(self) -> bool:
        return self.matched is not None


class Mailbox:
    """Matching queues for one rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.unexpected: list[Envelope] = []
        self.posted: list[RecvDescriptor] = []
        self._post_counter = 0
        #: Counters for observability and tests.
        self.delivered_count = 0
        self.matched_count = 0

    # ------------------------------------------------------------------ #
    # Delivery side (called by the network when a message arrives).
    # ------------------------------------------------------------------ #

    def deliver(self, env: Envelope) -> Optional[RecvDescriptor]:
        """Hand an arriving message to this rank.

        Returns the receive descriptor it completed, or ``None`` if the
        message was queued as unexpected.
        """
        self.delivered_count += 1
        for desc in self.posted:
            if desc.accepts(env):
                desc.matched = env
                self.posted.remove(desc)
                self.matched_count += 1
                return desc
        self.unexpected.append(env)
        return None

    # ------------------------------------------------------------------ #
    # Receive side (called by the rank's own thread).
    # ------------------------------------------------------------------ #

    def post(self, desc: RecvDescriptor) -> RecvDescriptor:
        """Post a receive; matches immediately against unexpected messages."""
        desc.order = self._post_counter
        self._post_counter += 1
        for i, env in enumerate(self.unexpected):
            if desc.accepts(env):
                desc.matched = env
                del self.unexpected[i]
                self.matched_count += 1
                return desc
        self.posted.append(desc)
        return desc

    def cancel(self, desc: RecvDescriptor) -> bool:
        """Cancel a posted, unmatched receive.  Returns True if removed."""
        if desc in self.posted:
            desc.cancelled = True
            self.posted.remove(desc)
            return True
        return False

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        context: int = 0,
        predicate: Optional[Callable[[Envelope], bool]] = None,
    ) -> Optional[Envelope]:
        """Peek at the first unexpected message matching the arguments."""
        probe_desc = RecvDescriptor(source, tag, context, predicate)
        for env in self.unexpected:
            if probe_desc.accepts(env):
                return env
        return None

    def take(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        context: int = 0,
        predicate: Optional[Callable[[Envelope], bool]] = None,
    ) -> Optional[Envelope]:
        """Non-blocking receive: pop the first matching unexpected message."""
        desc = RecvDescriptor(source, tag, context, predicate)
        for i, env in enumerate(self.unexpected):
            if desc.accepts(env):
                del self.unexpected[i]
                self.matched_count += 1
                return env
        return None

    def pending_unexpected(self) -> int:
        """Number of queued unexpected messages (for stats/assertions)."""
        return len(self.unexpected)

    def clear(self) -> None:
        """Drop all state (used when a rank dies or the sim restarts)."""
        self.unexpected.clear()
        for desc in self.posted:
            desc.cancelled = True
        self.posted.clear()
