"""The simulated interconnect.

Models a *reliable* transport (the paper assumes one, e.g. LA-MPI): no
message is ever lost or corrupted while both endpoints are alive.  What the
model does vary — under seed control — is **delivery timing and order**:

* every message gets a delivery delay ``base + Exp(jitter)``;
* ordering mode ``"fifo"`` forces per-(source, dest) FIFO delivery,
  ``"per_tag_fifo"`` forces FIFO only among messages with equal
  ``(source, dest, tag, context)`` (MPI's non-overtaking guarantee), and
  ``"random"`` allows arbitrary reordering.

The C3 protocol makes **no FIFO assumption at the application level**
(Section 3.3), so it must pass all tests under ``"random"`` as well.

Stopping faults: once a rank is marked dead, in-flight messages addressed to
it are silently dropped at delivery time, and nothing further is accepted
from it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import SimMPIError
from repro.simmpi.message import Envelope
from repro.util.rng import RngStream

ORDERINGS = ("fifo", "per_tag_fifo", "random")


@dataclass
class NetworkStats:
    """Aggregate transport statistics for one run."""

    posted: int = 0
    delivered: int = 0
    dropped_dead_dest: int = 0
    dropped_dead_source: int = 0
    bytes_posted: int = 0
    bytes_delivered: int = 0
    per_rank_sent: dict = field(default_factory=dict)
    per_rank_received: dict = field(default_factory=dict)


class Network:
    """Priority-queue network with configurable delay and ordering."""

    def __init__(
        self,
        nprocs: int,
        rng: RngStream,
        base_delay: float = 5e-6,
        jitter: float = 20e-6,
        ordering: str = "per_tag_fifo",
    ) -> None:
        if ordering not in ORDERINGS:
            raise SimMPIError(f"unknown ordering {ordering!r}; expected one of {ORDERINGS}")
        if base_delay < 0 or jitter < 0:
            raise SimMPIError("delays must be non-negative")
        self.nprocs = nprocs
        self.rng = rng
        self.base_delay = base_delay
        self.jitter = jitter
        self.ordering = ordering
        #: Ordering discipline resolved to flags once; ``post`` runs per
        #: message and string-compares there are measurable.
        self._order_per_tag = ordering == "per_tag_fifo"
        self._order_fifo = ordering == "fifo"
        self.stats = NetworkStats()
        self._seq = 0
        self._heap: list[tuple[float, int, Envelope]] = []
        # Latest scheduled delivery time per ordering key, used to enforce
        # the chosen non-overtaking discipline.
        self._last_delivery: dict[tuple, float] = {}
        self._dead: set[int] = set()
        #: Optional repro.trace recorder (armed by the simulator).
        self.tracer = None

    # ------------------------------------------------------------------ #

    def _ordering_key(self, env: Envelope) -> tuple | None:
        if self.ordering == "fifo":
            return (env.source, env.dest)
        if self.ordering == "per_tag_fifo":
            return (env.source, env.dest, env.tag, env.context)
        return None

    def post(self, env: Envelope, now: float) -> None:
        """Accept a message from a live sender and schedule its delivery."""
        if env.source in self._dead:
            self.stats.dropped_dead_source += 1
            return
        env.seq = seq = self._seq
        self._seq = seq + 1
        env.send_time = now
        delay = self.base_delay
        if self.jitter > 0:
            delay += self.rng.exponential(self.jitter)
        deliver = now + delay
        if self._order_per_tag:
            key = (env.source, env.dest, env.tag, env.context)
        elif self._order_fifo:
            key = (env.source, env.dest)
        else:
            key = None
        if key is not None:
            floor = self._last_delivery.get(key, 0.0)
            if deliver <= floor:
                deliver = floor + 1e-12
            self._last_delivery[key] = deliver
        env.deliver_time = deliver
        heapq.heappush(self._heap, (deliver, env.seq, env))
        self.stats.posted += 1
        self.stats.bytes_posted += env.nbytes
        self.stats.per_rank_sent[env.source] = (
            self.stats.per_rank_sent.get(env.source, 0) + 1
        )

    def mark_dead(self, rank: int) -> None:
        """Record a stopping fault: drop traffic to/from ``rank`` from now on."""
        self._dead.add(rank)

    def revive_all(self) -> None:
        """Reset the network for reuse across simulated job attempts.

        Clears death records *and* per-key delivery floors: a restarted
        attempt replays traffic from scratch, and inheriting the previous
        attempt's FIFO floors would push its first messages artificially
        far into the future (and skew timing determinism against a fresh
        network).  Note the recovery driver builds a fresh ``Simulator``
        — and hence a fresh ``Network`` — per attempt, so this guards the
        standalone reuse API, not the driver's restart path.
        """
        self._dead.clear()
        self._last_delivery.clear()

    # ------------------------------------------------------------------ #

    def next_delivery_time(self) -> float | None:
        """Virtual time of the earliest in-flight message, or None if idle."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now: float) -> list[Envelope]:
        """Remove and return all messages whose delivery time has arrived.

        Dead-destination messages are dropped here (the stopping model: a
        dead process neither sends nor receives).
        """
        due: list[Envelope] = []
        tr = self.tracer
        while self._heap and self._heap[0][0] <= now:
            _, _, env = heapq.heappop(self._heap)
            if env.dest in self._dead or env.source in self._dead:
                if env.dest in self._dead:
                    self.stats.dropped_dead_dest += 1
                else:
                    self.stats.dropped_dead_source += 1
                if tr is not None:
                    tr.emit(
                        "net", "drop", t=env.deliver_time, rank=env.dest,
                        source=env.source, tag=env.tag,
                    )
                continue
            if tr is not None:
                tr.emit(
                    "net", "deliver", t=env.deliver_time, rank=env.dest,
                    source=env.source, tag=env.tag, nbytes=env.nbytes,
                )
            self.stats.delivered += 1
            self.stats.bytes_delivered += env.nbytes
            self.stats.per_rank_received[env.dest] = (
                self.stats.per_rank_received.get(env.dest, 0) + 1
            )
            due.append(env)
        return due

    def in_flight(self) -> int:
        return len(self._heap)

    def drain(self) -> None:
        """Drop every in-flight message (global teardown before restart)."""
        self._heap.clear()
        self._last_delivery.clear()
