"""Reduction operations (the MPI_Op analogue).

Operations work elementwise on numpy arrays and on Python scalars.  MAXLOC
and MINLOC follow MPI semantics on ``(value, index)`` pairs.  User-defined
operations wrap a binary callable; the C3 protocol records user-op creation
in its persistent-object call log so the op can be recreated on restart
(Section 5.2), which is why ops carry a stable ``name``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import SimMPIError


class Op:
    """A named, associative binary reduction operation."""

    _registry: dict[str, "Op"] = {}

    def __init__(self, name: str, fn: Callable[[Any, Any], Any], commutative: bool = True):
        self.name = name
        self.fn = fn
        self.commutative = commutative
        Op._registry[name] = self

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Op({self.name})"

    def __reduce__(self):
        # Ops pickle by name so checkpoints never serialise closures.
        return (Op.lookup, (self.name,))

    @staticmethod
    def lookup(name: str) -> "Op":
        try:
            return Op._registry[name]
        except KeyError:
            raise SimMPIError(f"unknown Op {name!r}; user ops must be re-created before restore") from None

    @staticmethod
    def create(name: str, fn: Callable[[Any, Any], Any], commutative: bool = True) -> "Op":
        """Create (or fetch) a user-defined op under a stable name."""
        existing = Op._registry.get(name)
        if existing is not None:
            return existing
        return Op(name, fn, commutative)


def _pairwise(fn):
    def wrapped(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return fn(np.asarray(a), np.asarray(b))
        return fn(a, b)
    return wrapped


def _maxloc(a, b):
    (va, ia), (vb, ib) = a, b
    if vb > va or (vb == va and ib < ia):
        return (vb, ib)
    return (va, ia)


def _minloc(a, b):
    (va, ia), (vb, ib) = a, b
    if vb < va or (vb == va and ib < ia):
        return (vb, ib)
    return (va, ia)


SUM = Op("SUM", _pairwise(lambda a, b: a + b))
PROD = Op("PROD", _pairwise(lambda a, b: a * b))
MAX = Op("MAX", _pairwise(np.maximum))
MIN = Op("MIN", _pairwise(np.minimum))
LAND = Op("LAND", _pairwise(np.logical_and))
LOR = Op("LOR", _pairwise(np.logical_or))
BAND = Op("BAND", _pairwise(lambda a, b: a & b))
BOR = Op("BOR", _pairwise(lambda a, b: a | b))
MAXLOC = Op("MAXLOC", _maxloc)
MINLOC = Op("MINLOC", _minloc)


def reduce_sequence(op: Op, values: list) -> Any:
    """Left fold of ``op`` over a non-empty list (rank order, as MPI requires
    for deterministic reductions)."""
    if not values:
        raise SimMPIError("cannot reduce an empty sequence")
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc
