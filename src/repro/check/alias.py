"""Alias-aware VDS-escape facts (the substrate behind RPR033/RPR034).

The v1 escape analysis is name-rooted: it flags ``GLOBAL.append(x)`` but
misses the same mutation smuggled through an alias (``g = GLOBAL;
g.append(x)``), a container element, or a helper's return value.  This
module computes a small intra-unit points-to abstraction:

* every local is classified into a **region** — ``ALIAS`` (the value *is*
  non-local state: a module global, an attribute/subscript chain rooted
  at one, or a unit callee's returned global), ``HOLDS`` (a fresh
  container whose elements include aliases), or clean (fresh values,
  call results, comm-rooted managed state);

* per-function **summaries** — ``returns_nonlocal`` (the function can
  return an alias, so its call sites inherit the region) and
  ``param_escapes`` (parameters the function stores into module state,
  directly or through its own callees);

both computed to fixpoint over the unit.  :class:`AliasFacts` then
enumerates the two defect shapes: a mutation whose receiver is a local
*alias* of non-local state, and a call site handing a checkpointed local
to a callee that parks it in module state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.precompiler.analysis import UnitAnalysis, attr_root

CLEAN = "clean"
ALIAS = "alias"
HOLDS = "holds"


@dataclass(frozen=True)
class AliasMutation:
    """A mutation whose receiver is a local alias of non-local state."""

    function: str
    local: str
    node: ast.AST
    via: str  # "store" or the mutator method name


@dataclass(frozen=True)
class EscapingArg:
    """A call site passing a checkpointed local to an escaping parameter."""

    function: str
    callee: str
    param: str
    local: str
    node: ast.Call


class AliasFacts:
    """Region classification + escape summaries over one checked unit."""

    def __init__(
        self,
        functions: dict[str, ast.FunctionDef],
        analysis: UnitAnalysis,
        mutator_names: frozenset[str],
        registered: Optional[dict[str, set[str]]] = None,
    ) -> None:
        self.functions = functions
        self.analysis = analysis
        self.mutator_names = mutator_names
        #: Per-function sets of module globals registered as managed state
        #: via ``checkpointable_state(...)`` — mutating those is fine.
        self.registered = dict(registered or {})
        self.alias_locals: dict[str, set[str]] = {n: set() for n in functions}
        self.holds_locals: dict[str, set[str]] = {n: set() for n in functions}
        self.returns_nonlocal: dict[str, bool] = {n: False for n in functions}
        self.param_escapes: dict[str, set[str]] = {n: set() for n in functions}
        self._run_fixpoint()

    # -- helpers -------------------------------------------------------- #

    def _locals_of(self, fn_name: str) -> set[str]:
        return set(self.analysis.infos[fn_name].local_names)

    def _comm_names(self, fn_name: str) -> frozenset[str]:
        return self.analysis.infos[fn_name].comm_names

    def _params_of(self, fn_name: str) -> list[str]:
        args = self.functions[fn_name].args
        return [a.arg for a in (list(args.posonlyargs) + list(args.args))]

    def _is_nonlocal_name(self, fn_name: str, name: str) -> bool:
        """A name whose binding lives outside the checkpointed frame set:
        not a local, not the comm root, not a unit function, and not a
        global registered as managed checkpointable state."""
        return (
            name not in self._locals_of(fn_name)
            and name not in self._comm_names(fn_name)
            and name not in self.functions
            and name not in self.registered.get(fn_name, ())
        )

    def region_of(self, fn_name: str, expr: Optional[ast.expr]) -> str:
        """Which region the expression's value lives in."""
        if expr is None:
            return CLEAN
        alias = self.alias_locals[fn_name]
        holds = self.holds_locals[fn_name]

        def visit(node: ast.expr) -> str:
            if isinstance(node, ast.Name):
                if self._is_nonlocal_name(fn_name, node.id):
                    return ALIAS
                if node.id in alias:
                    return ALIAS
                if node.id in holds:
                    return HOLDS
                return CLEAN
            if isinstance(node, ast.Attribute):
                root = attr_root(node)
                if root is not None and root in self._comm_names(fn_name):
                    return CLEAN  # ctx.rng etc. is managed state
                if root is not None:
                    if self._is_nonlocal_name(fn_name, root) or root in alias:
                        return ALIAS
                    if root in holds:
                        return ALIAS
                    return CLEAN
                return CLEAN  # rooted at a call/constant: fresh
            if isinstance(node, ast.Subscript):
                inner = visit(node.value)
                if inner is ALIAS:
                    return ALIAS
                if inner is HOLDS:
                    return ALIAS  # element pulled out of an alias container
                return CLEAN
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in self.functions
                    and self.returns_nonlocal[func.id]
                ):
                    return ALIAS
                return CLEAN  # other call results are fresh objects
            if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
                if any(visit(el) is not CLEAN for el in node.elts):
                    return HOLDS
                return CLEAN
            if isinstance(node, ast.Dict):
                values = [v for v in node.values if v is not None]
                if any(visit(v) is not CLEAN for v in values):
                    return HOLDS
                return CLEAN
            if isinstance(node, ast.IfExp):
                regions = {visit(node.body), visit(node.orelse)}
                for r in (ALIAS, HOLDS):
                    if r in regions:
                        return r
                return CLEAN
            if isinstance(node, ast.Starred):
                return visit(node.value)
            if isinstance(node, ast.NamedExpr):
                return visit(node.value)
            return CLEAN

        return visit(expr)

    # -- fixpoint ------------------------------------------------------- #

    def _intra_regions(self, fn_name: str) -> bool:
        tree = self.functions[fn_name]
        alias = self.alias_locals[fn_name]
        holds = self.holds_locals[fn_name]
        changed = False

        def bind(name: str, region: str) -> None:
            nonlocal changed
            if region is ALIAS and name not in alias:
                alias.add(name)
                changed = True
            elif region is HOLDS and name not in holds:
                holds.add(name)
                changed = True

        def bind_target(target: ast.expr, region: str) -> None:
            if isinstance(target, ast.Name):
                bind(target.id, region)
            elif isinstance(target, (ast.Tuple, ast.List)):
                # Element-wise when the value is a matching display is
                # handled by the caller; here the whole value's region
                # flows to every element (elements of an alias-holding
                # value are aliases).
                elem = ALIAS if region in (ALIAS, HOLDS) else CLEAN
                for el in target.elts:
                    bind_target(el, elem)

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                value = node.value
                for target in node.targets:
                    if (
                        isinstance(target, (ast.Tuple, ast.List))
                        and isinstance(value, (ast.Tuple, ast.List))
                        and len(target.elts) == len(value.elts)
                    ):
                        for t, v in zip(target.elts, value.elts):
                            bind_target(t, self.region_of(fn_name, v))
                    else:
                        bind_target(target, self.region_of(fn_name, value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bind_target(node.target, self.region_of(fn_name, node.value))
            elif isinstance(node, ast.NamedExpr):
                bind(node.target.id, self.region_of(fn_name, node.value))
            elif isinstance(node, ast.For):
                region = self.region_of(fn_name, node.iter)
                if region is not CLEAN:
                    bind_target(node.target, ALIAS)
        return changed

    def _recompute_returns(self) -> bool:
        changed = False
        for name, tree in self.functions.items():
            flag = any(
                isinstance(n, ast.Return)
                and n.value is not None
                and self.region_of(name, n.value) is not CLEAN
                for n in ast.walk(tree)
            )
            if flag != self.returns_nonlocal[name]:
                self.returns_nonlocal[name] = flag
                changed = True
        return changed

    def _names_in(self, expr: ast.expr) -> set[str]:
        return {
            n.id for n in ast.walk(expr)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }

    def _escape_sink_root(self, fn_name: str, node: ast.expr) -> Optional[str]:
        """The receiver root when storing through ``node`` parks values in
        non-local state (a global, or a local alias of one)."""
        root = attr_root(
            node.value if isinstance(node, ast.Subscript) else node
        )
        if root is None:
            return None
        if self._is_nonlocal_name(fn_name, root):
            return root
        if root in self.alias_locals[fn_name]:
            return root
        return None

    def _recompute_param_escapes(self) -> bool:
        changed = False
        for name, tree in self.functions.items():
            params = set(self._params_of(name)) - set(self._comm_names(name))
            escapes = self.param_escapes[name]

            def mark(candidates: set[str]) -> None:
                nonlocal changed
                for p in candidates & params:
                    if p not in escapes:
                        escapes.add(p)
                        changed = True

            for node in ast.walk(tree):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, (ast.Attribute, ast.Subscript)) \
                                and self._escape_sink_root(name, target):
                            mark(self._names_in(node.value))
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.target,
                                  (ast.Attribute, ast.Subscript)) \
                            and self._escape_sink_root(name, node.target):
                        mark(self._names_in(node.value))
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in self.mutator_names
                        and self._escape_sink_root(name, func) is not None
                    ):
                        for arg in list(node.args) + [
                            k.value for k in node.keywords
                        ]:
                            mark(self._names_in(arg))
                    elif (
                        isinstance(func, ast.Name)
                        and func.id in self.functions
                    ):
                        callee_params = self._params_of(func.id)
                        callee_escapes = self.param_escapes[func.id]
                        for i, arg in enumerate(node.args):
                            if (
                                i < len(callee_params)
                                and callee_params[i] in callee_escapes
                                and isinstance(arg, ast.Name)
                            ):
                                mark({arg.id})
                        for kw in node.keywords:
                            if (
                                kw.arg in callee_escapes
                                and isinstance(kw.value, ast.Name)
                            ):
                                mark({kw.value.id})
        return changed

    def _run_fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                if self._intra_regions(name):
                    changed = True
            if self._recompute_returns():
                changed = True
            if self._recompute_param_escapes():
                changed = True

    # -- defect enumeration --------------------------------------------- #

    def alias_mutations(self) -> list[AliasMutation]:
        """Mutations whose receiver is a *local* alias of non-local state
        (the name-rooted v1 analysis already covers non-local receivers)."""
        out: list[AliasMutation] = []
        for name, tree in self.functions.items():
            alias = self.alias_locals[name]
            for node in ast.walk(tree):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if not isinstance(
                            target, (ast.Attribute, ast.Subscript)
                        ):
                            continue
                        root = attr_root(
                            target.value
                            if isinstance(target, ast.Subscript)
                            else target
                        )
                        if root in alias:
                            out.append(AliasMutation(
                                function=name, local=root,
                                node=target, via="store",
                            ))
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in self.mutator_names
                    ):
                        root = attr_root(func)
                        if root in alias:
                            out.append(AliasMutation(
                                function=name, local=root,
                                node=node, via=func.attr,
                            ))
        return out

    def escaping_args(self) -> list[EscapingArg]:
        """Call sites passing a clean checkpointed local to a parameter the
        callee stores into module state."""
        out: list[EscapingArg] = []
        for name, tree in self.functions.items():
            locals_ = self._locals_of(name)
            alias = self.alias_locals[name]
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in self.functions
                ):
                    continue
                callee = node.func.id
                callee_params = self._params_of(callee)
                callee_escapes = self.param_escapes[callee]
                pairs: list[tuple[str, ast.expr]] = []
                for i, arg in enumerate(node.args):
                    if i < len(callee_params):
                        pairs.append((callee_params[i], arg))
                for kw in node.keywords:
                    if kw.arg:
                        pairs.append((kw.arg, kw.value))
                for param, arg in pairs:
                    if (
                        param in callee_escapes
                        and isinstance(arg, ast.Name)
                        and arg.id in locals_
                        and arg.id not in alias
                        and arg.id not in self._comm_names(name)
                    ):
                        out.append(EscapingArg(
                            function=name, callee=callee, param=param,
                            local=arg.id, node=node,
                        ))
        return out
