"""Incremental result cache for ``repro-check`` (content-hash keyed).

Re-checking an unchanged module is pure waste: the analyses are
deterministic functions of the module's source text, the sources of the
sibling modules the import-graph slicer can join, and the analyzer build
itself.  The cache key is therefore a digest over exactly those inputs::

    sha256(SCHEMA | ANALYSIS_VERSION | sorted (path, content) pairs)

where the pairs cover the target file plus its one-level sibling import
closure (:func:`repro.check.driver.import_closure`) — editing ``halo.py``
invalidates the cached verdict of every app that imports it, while an
untouched app hits the cache even across analyzer restarts.

Entries are JSON files (one per key, farm-cell style) holding the
serialized :class:`~repro.check.diagnostics.CheckResult`; a hit is
rehydrated with :meth:`CheckResult.from_dict` and is indistinguishable
from a fresh run.  Cache metrics land in the module-level ``METRICS``
registry (``repro.metrics/1``): ``check.cache.hit`` / ``check.cache.miss``
counters and a ``check.seconds`` histogram observed by the CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.check.diagnostics import SCHEMA, CheckResult
from repro.check.driver import import_closure
from repro.trace.metrics import MetricsRegistry

#: Bump when any analysis changes behaviour without a schema bump — the
#: salt makes stale caches miss instead of replaying outdated verdicts.
ANALYSIS_VERSION = 3

#: Process-wide cache metrics; ``repro-check`` folds these into its
#: summary and tests assert on the hit/miss counters.
METRICS = MetricsRegistry()


class CheckCache:
    """Content-hash keyed store of :class:`CheckResult` payloads."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------ #

    @staticmethod
    def key_for(path: str) -> str:
        """Digest of the file, its sibling import closure, and the
        analyzer build."""
        h = hashlib.sha256()
        h.update(SCHEMA.encode("utf-8"))
        h.update(str(ANALYSIS_VERSION).encode("utf-8"))
        pairs: list[tuple[str, bytes]] = []
        for member in import_closure(path):
            try:
                with open(member, "rb") as fh:
                    content = fh.read()
            except OSError:
                content = b"<unreadable>"
            pairs.append((os.path.basename(member), content))
        for name, content in sorted(pairs):
            h.update(b"\x00")
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            h.update(content)
        return h.hexdigest()

    def _entry(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def get(self, key: str) -> Optional[CheckResult]:
        """The cached result, or ``None`` (counts hit/miss either way)."""
        entry = self._entry(key)
        try:
            with open(entry, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            result = CheckResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            METRICS.count("check.cache.miss")
            return None
        METRICS.count("check.cache.hit")
        return result

    def put(self, key: str, result: CheckResult) -> None:
        entry = self._entry(key)
        tmp = entry + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=None, sort_keys=True)
        os.replace(tmp, entry)
