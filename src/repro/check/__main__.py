"""``python -m repro.check`` — same as the ``repro-check`` console script."""

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
