"""``# repro: ignore[RPR0xx]`` suppression comments.

Two scopes:

* **line** — ``x = random.random()  # repro: ignore[RPR020]`` silences the
  listed codes on that source line only;
* **file** — a ``# repro: ignore-file[RPR021]`` comment anywhere in the
  file silences the listed codes for the whole file.

Multiple codes separate with commas: ``# repro: ignore[RPR020,RPR021]``.
Suppressed findings are not dropped — they move to the result's
``suppressed`` record (and the JSON payload) so reviewers can audit what
was waved through.  A suppression that silences nothing earns an
``RPR090`` warning of its own: stale suppressions hide future regressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.check.diagnostics import Diagnostic

#: ``# repro: ignore[RPR020, RPR021]`` / ``# repro: ignore-file[RPR030]``.
SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*(ignore-file|ignore)\[([A-Z0-9,\s]+)\]"
)


@dataclass(frozen=True)
class Suppression:
    """One suppression comment (line- or file-scoped)."""

    file: str
    line: int
    col: int
    codes: tuple[str, ...]
    file_scope: bool

    def describe(self) -> str:
        kind = "ignore-file" if self.file_scope else "ignore"
        return f"# repro: {kind}[{','.join(self.codes)}]"


def find_suppressions(source: str, file: str) -> list[Suppression]:
    """Every suppression comment in one source file."""
    out: list[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in SUPPRESS_RE.finditer(text):
            codes = tuple(
                c.strip() for c in match.group(2).split(",") if c.strip()
            )
            if not codes:
                continue
            out.append(Suppression(
                file=file,
                line=lineno,
                col=match.start(),
                codes=codes,
                file_scope=(match.group(1) == "ignore-file"),
            ))
    return out


class SuppressionFilter:
    """Split diagnostics into kept/suppressed and track stale suppressions."""

    def __init__(self, suppressions: Iterable[Suppression]) -> None:
        self.suppressions = list(suppressions)
        self._used: set[tuple[Suppression, str]] = set()

    def _matching(self, d: Diagnostic) -> bool:
        hit = False
        for s in self.suppressions:
            if d.span.file != s.file or d.code not in s.codes:
                continue
            if s.file_scope or d.span.line == s.line:
                self._used.add((s, d.code))
                hit = True
        return hit

    def split(
        self, diagnostics: Iterable[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        kept: list[Diagnostic] = []
        suppressed: list[Diagnostic] = []
        for d in diagnostics:
            (suppressed if self._matching(d) else kept).append(d)
        return kept, suppressed

    def unused(self) -> list[tuple[Suppression, str]]:
        """Every (suppression, code) pair that silenced nothing.  Call
        after :meth:`split` has seen all diagnostics."""
        out: list[tuple[Suppression, str]] = []
        for s in self.suppressions:
            for code in s.codes:
                if (s, code) not in self._used:
                    out.append((s, code))
        return out


def prune_stale(
    source: str, stale: Iterable[tuple[Suppression, str]]
) -> tuple[str, int]:
    """Drop stale codes from their suppression comments.

    A comment whose codes all went stale is removed outright (with the
    whitespace that separated it from the code); one with surviving codes
    is rewritten to list only those.  Returns ``(new_source, pruned)``
    where ``pruned`` counts the removed (suppression, code) pairs.
    """
    stale_by_loc: dict[tuple[int, int], set[str]] = {}
    for s, code in stale:
        stale_by_loc.setdefault((s.line, s.col), set()).add(code)
    if not stale_by_loc:
        return source, 0

    pruned = 0
    lines = source.splitlines(keepends=True)
    for lineno, text in enumerate(lines, start=1):
        edits: list[tuple[int, int, str]] = []
        for match in SUPPRESS_RE.finditer(text):
            drop = stale_by_loc.get((lineno, match.start()))
            if not drop:
                continue
            codes = [
                c.strip() for c in match.group(2).split(",") if c.strip()
            ]
            keep = [c for c in codes if c not in drop]
            pruned += len(codes) - len(keep)
            if keep:
                new = f"# repro: {match.group(1)}[{','.join(keep)}]"
                edits.append((match.start(), match.end(), new))
            else:
                start = match.start()
                while start > 0 and text[start - 1] in " \t":
                    start -= 1
                edits.append((start, match.end(), ""))
        for start, end, new in sorted(edits, reverse=True):
            text = text[:start] + new + text[end:]
        if edits and text.strip() == "":
            text = ""  # the comment was the whole line: drop the line
        lines[lineno - 1] = text
    return "".join(lines), pruned
