"""``repro-check`` — the static verifier's command line.

Targets are resolved in order: an existing path is checked as a source
file; a registered app name as an app; anything else as an importable
module.  ``--apps`` adds every registered application.  Exit status is 1
when any error-severity finding survives (``--fail-on`` tightens or
loosens that), so the command slots straight into CI::

    repro-check src/repro/apps/dense_cg.py examples/quickstart.py
    repro-check --apps --format json
    repro-check dense_cg --fail-on warning

``--fix`` proposes span-anchored rewrites for the mechanical findings
(entropy → ``ctx.rng``/``ctx.nondet``, wall clocks → ``ctx.now()``,
mutable defaults → ``None`` + rebuild guard) and prints them as unified
diffs; ``--fix --write`` applies them in place, ``--fix --dry-run`` only
reports the count (the CI gate asserts ``0 fix(es) proposed`` on clean
examples)::

    repro-check --fix examples/quickstart.py
    repro-check --fix --write path/to/app.py
    repro-check --fix --dry-run examples/*.py

``--fix --write`` also re-lints the rewritten file and prunes any
suppression comment the fixes made stale, so a repaired file never keeps
an ``# repro: ignore[...]`` that silences nothing.

``--format sarif`` emits SARIF 2.1.0 for code-scanning upload, and
``--cache-dir DIR`` enables the incremental cache: path targets whose
content (including their sibling import closure) is unchanged are served
from the cache instead of re-analyzed::

    repro-check --format sarif --apps > repro-check.sarif
    repro-check --cache-dir .repro-check-cache examples/*.py
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
from typing import Optional, Sequence

from repro.check.cache import METRICS, CheckCache
from repro.check.diagnostics import SCHEMA, CheckResult
from repro.check.driver import check_app, check_module, check_path
from repro.check.fixes import (
    apply_fixes,
    propose_fixes,
    prune_stale_suppressions,
    render_diff,
)
from repro.check.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Static verification for checkpointable apps: supported "
            "subset, collective matching, unlogged nondeterminism, VDS "
            "escape, checkpoint placement."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="source files, registered app names, or importable modules",
    )
    parser.add_argument(
        "--apps",
        action="store_true",
        help="also check every registered application",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "incremental cache directory: unchanged path targets (by "
            "content hash over the file and its sibling import closure) "
            "reuse their cached result"
        ),
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that causes exit status 1 (default: error)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the diagnostic code registry and exit",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="propose span-anchored rewrites for mechanical findings",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="with --fix: apply the proposed rewrites in place",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: report counts only, never print diffs or write",
    )
    return parser


def _check_target(
    target: str, cache: Optional[CheckCache] = None
) -> tuple[CheckResult, bool]:
    """Check one target; returns ``(result, served_from_cache)``."""
    if os.path.exists(target):
        if cache is not None:
            key = CheckCache.key_for(target)
            cached = cache.get(key)
            if cached is not None:
                return cached, True
            result = check_path(target)
            cache.put(key, result)
            return result, False
        return check_path(target), False
    try:
        return check_app(target), False
    except Exception:
        return check_module(target), False


def _target_path(target: str) -> Optional[str]:
    """The on-disk source file behind a CLI target (for ``--fix``)."""
    if os.path.exists(target):
        return target
    try:
        from repro.api.registry import get_app

        spec = get_app(target)
        module = spec.module
    except Exception:
        module = target
    try:
        if isinstance(module, str):
            module = importlib.import_module(module)
        return getattr(module, "__file__", None)
    except Exception:
        return None


def _fails(result: CheckResult, fail_on: str) -> bool:
    if fail_on == "never":
        return False
    if fail_on == "warning":
        return bool(result.errors or result.warnings)
    return bool(result.errors)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    opts = parser.parse_args(argv)

    if opts.list_codes:
        from repro.check.diagnostics import CODES

        for info in CODES.values():
            print(
                f"{info.code}  {info.severity.value:<7}  "
                f"{info.analysis:<22}  {info.title}"
            )
        return 0

    targets = list(opts.targets)
    if opts.apps:
        from repro.api.registry import list_apps

        targets.extend(
            name for name in sorted(list_apps()) if name not in targets
        )
    if not targets:
        parser.error("no targets (give paths/app names, or --apps)")

    cache = CheckCache(opts.cache_dir) if opts.cache_dir else None
    results: list[CheckResult] = []
    broken: list[tuple[str, str]] = []
    cache_hits = 0
    analyzed = 0
    for target in targets:
        started = time.perf_counter()
        try:
            result, hit = _check_target(target, cache)
        except Exception as exc:  # unreadable/unimportable target
            broken.append((target, f"{type(exc).__name__}: {exc}"))
            continue
        finally:
            METRICS.observe("check.seconds", time.perf_counter() - started)
        results.append(result)
        if hit:
            cache_hits += 1
        else:
            analyzed += 1

    fix_records: list[dict] = []
    diffs: list[str] = []
    pruned_suppressions = 0
    if opts.fix:
        for target in targets:
            path = _target_path(target)
            if path is None or not os.path.exists(path):
                continue
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            try:
                proposals = propose_fixes(source, file=path)
            except SyntaxError:
                continue
            if not proposals:
                continue
            fixed = apply_fixes(source, proposals)
            # Fixes can strand suppression comments: re-lint the fixed
            # text and drop anything that no longer silences a finding.
            try:
                fixed, pruned = prune_stale_suppressions(fixed, file=path)
            except SyntaxError:
                pruned = 0
            pruned_suppressions += pruned
            fix_records.extend(p.to_dict() for p in proposals)
            diffs.append(render_diff(source, fixed, path))
            if opts.write and not opts.dry_run:
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(fixed)

    status = 0
    if opts.format == "sarif":
        print(render_sarif(results))
        for target, error in broken:
            print(f"{target}: check failed to run: {error}",
                  file=sys.stderr)
    elif opts.format == "json":
        payload = {
            "schema": SCHEMA,
            "results": [r.to_dict() for r in results],
            "failed_targets": [
                {"target": t, "error": e} for t, e in broken
            ],
        }
        if opts.fix:
            payload["fixes"] = fix_records
        print(json.dumps(payload, indent=2))
    else:
        for result in results:
            print(result.render())
        for target, error in broken:
            print(f"{target}: check failed to run: {error}")
        if opts.fix and not opts.dry_run:
            for diff in diffs:
                print(diff, end="" if diff.endswith("\n") else "\n")
    if broken:
        status = 2
    elif any(_fails(r, opts.fail_on) for r in results):
        status = 1
    if opts.format == "text" and results:
        errors = sum(len(r.errors) for r in results)
        warnings = sum(len(r.warnings) for r in results)
        advice = sum(len(r.advice) for r in results)
        summary = (
            f"checked {len(results)} target(s): {errors} error(s), "
            f"{warnings} warning(s), {advice} advice"
        )
        if opts.fix:
            applied = " (applied)" if opts.write and not opts.dry_run else ""
            summary += f"; {len(fix_records)} fix(es) proposed{applied}"
            if pruned_suppressions:
                summary += (
                    f"; {pruned_suppressions} stale suppression(s) pruned"
                )
        print(summary)
        if cache is not None:
            print(f"cache: {cache_hits} hit(s), {analyzed} analyzed")
    return status


if __name__ == "__main__":
    sys.exit(main())
