"""The analysis battery behind ``repro-check``.

Each analysis is a function ``(unit: CheckedUnit) -> list[Diagnostic]``;
:data:`ANALYSES` is the battery the driver runs.  All of them operate on
the same substrate as the precompiler — :class:`UnitAnalysis` over the
unit's function ASTs, with method calls anchored at each function's
communication root (its ``ctx``/``comm`` parameter) — so what the checker
flags is exactly what the transformation and the protocol will see.

The analyses are deliberately conservative in the direction of the
protocol's correctness argument: collective matching compares the
*syntactic* collective sequence of branch arms (the paper's requirement is
that all processes execute the same sequence of collectives); VDS escape
flags state the checkpointed variable-descriptor set cannot contain; and
nondeterminism flags calls whose results the message/result log will not
replay.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.check.alias import AliasFacts
from repro.check.callgraph import DIVERGENT, UNIFORM, UnitCallGraph
from repro.check.cfg import collectives_in, equivalent, has_unknown
from repro.check.diagnostics import Diagnostic, Span
from repro.precompiler.analysis import (
    UnitAnalysis,
    Violation,
    attr_root,
    is_checkpoint_site,
    stmt_contains_checkpointable,
)

#: MPI collective operations (every process of the communicator must call
#: them in the same order — paper Section 4.5 handles their log/replay).
COLLECTIVE_NAMES = frozenset({
    "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "scan", "barrier",
})

#: Point-to-point and completion calls; together with the collectives these
#: are the unit's *communication* calls.
P2P_NAMES = frozenset({
    "send", "isend", "recv", "irecv", "wait", "test", "sendrecv",
})

COMM_CALL_NAMES = COLLECTIVE_NAMES | P2P_NAMES

#: Dotted-prefix table for nondeterministic stdlib/numpy entropy sources
#: (``RPR020``).  A call matches when its dotted name equals an entry or
#: extends one past a dot.
NONDET_PREFIXES = (
    "random",
    "np.random",
    "numpy.random",
    "os.urandom",
    "uuid",
    "secrets",
)

#: Host wall-clock reads (``RPR021``): replay produces a different value.
CLOCK_NAMES = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Method names that mutate their receiver in place (``RPR030`` when the
#: receiver is not a local).
MUTATOR_NAMES = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "write", "writelines", "__setitem__",
})

#: ``construct`` keyword prefix (from :class:`Violation`) → diagnostic code.
_SUBSET_CODE_BY_PREFIX = (
    ("try", "RPR001"),
    ("with", "RPR002"),
    ("nested", "RPR003"),
    ("short-circuit", "RPR004"),
    ("async", "RPR005"),
    ("generator", "RPR006"),
    ("global", "RPR007"),
    ("nonlocal", "RPR007"),
    ("for-else", "RPR008"),
    ("while-else", "RPR008"),
)

_SUBSET_HINTS = {
    "RPR001": "hoist the checkpointable call out of the try block",
    "RPR002": "replace the with-statement by explicit acquire/release around the call",
    "RPR003": "move the checkpointable call to a top-level unit function",
    "RPR004": "assign the call result to a local first, then test it",
    "RPR005": "the checkpointable subset is synchronous; remove async/await",
    "RPR006": "rewrite the generator as a loop accumulating into a list",
    "RPR007": ("pass state explicitly or register the global with "
               "checkpointable_state(...)"),
    "RPR008": "move the else-arm after the loop (guarded by a flag)",
}


@dataclass
class CheckedUnit:
    """What the driver hands each analysis: the unit's ASTs (line numbers
    already absolute), one source file per function, the precompiler-grade
    :class:`UnitAnalysis`, and every subset violation collected on the way.
    """

    functions: dict[str, ast.FunctionDef]
    files: dict[str, str]
    analysis: UnitAnalysis
    violations: list[Violation] = field(default_factory=list)
    #: Module-level integer/string constants visible to the unit (tag
    #: names like ``TAG_UP = 12``), resolved by the driver from source.
    constants: dict[str, object] = field(default_factory=dict)
    #: Per-file constant tables for cross-module units: each function's
    #: names resolve against its *own* module's constants.  Empty when the
    #: unit is single-module (the flat ``constants`` table then applies).
    file_constants: dict[str, dict[str, object]] = field(default_factory=dict)
    #: Per-file sets of globals registered via ``checkpointable_state``.
    registered_globals: dict[str, set[str]] = field(default_factory=dict)
    #: Driver-produced cross-module diagnostics (RPR050/051) rendered by
    #: the :func:`cross_module_imports` analysis.
    import_diagnostics: list[Diagnostic] = field(default_factory=list)

    def file_of(self, name: str) -> str:
        return self.files.get(name, "<unknown>")

    def registered_of(self, name: str) -> set[str]:
        """Globals registered as managed state in ``name``'s module."""
        return self.registered_globals.get(self.file_of(name), set())

    def span(self, name: str, node: ast.AST) -> Span:
        return Span.of(node, self.file_of(name))

    def comm_names(self, name: str):
        return self.analysis.infos[name].comm_names

    def locals_of(self, name: str) -> set[str]:
        return set(self.analysis.infos[name].local_names)

    # -- communication fixpoints ------------------------------------------ #

    def _direct(self, predicate: Callable[[str, ast.AST], bool]) -> set[str]:
        return {
            name
            for name, tree in self.functions.items()
            if any(predicate(name, n) for n in ast.walk(tree))
        }

    def _transitive(self, seed: set[str]) -> set[str]:
        out = set(seed)
        changed = True
        while changed:
            changed = False
            for name, info in self.analysis.infos.items():
                if name not in out and info.callees & out:
                    out.add(name)
                    changed = True
        return out

    def _comm_call(self, fn_name: str, node: ast.AST, names) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in names
            and attr_root(func) in self.comm_names(fn_name)
        )

    @property
    def collective_callers(self) -> set[str]:
        """Functions that (transitively) execute a collective."""
        if not hasattr(self, "_collective_callers"):
            seed = self._direct(
                lambda f, n: self._comm_call(f, n, COLLECTIVE_NAMES)
            )
            self._collective_callers = self._transitive(seed)
        return self._collective_callers

    @property
    def comm_callers(self) -> set[str]:
        """Functions that (transitively) communicate at all."""
        if not hasattr(self, "_comm_callers"):
            seed = self._direct(
                lambda f, n: self._comm_call(f, n, COMM_CALL_NAMES)
            )
            self._comm_callers = self._transitive(seed)
        return self._comm_callers

    # -- interprocedural substrates (built lazily, shared by analyses) ---- #

    @property
    def callgraph(self) -> UnitCallGraph:
        """Summaries + rank-divergence taint + p2p census for the unit."""
        if not hasattr(self, "_callgraph"):
            by_function: Optional[dict[str, dict[str, object]]] = None
            if self.file_constants:
                by_function = {
                    name: self.file_constants.get(
                        self.file_of(name), self.constants
                    )
                    for name in self.functions
                }
            self._callgraph = UnitCallGraph(
                self.functions,
                self.analysis,
                self.constants,
                COLLECTIVE_NAMES,
                P2P_NAMES,
                NONDET_PREFIXES,
                constants_by_function=by_function,
            )
        return self._callgraph

    @property
    def aliasfacts(self) -> AliasFacts:
        """Points-to regions and escape summaries for the unit."""
        if not hasattr(self, "_aliasfacts"):
            registered = {
                name: self.registered_of(name) for name in self.functions
            }
            self._aliasfacts = AliasFacts(
                self.functions, self.analysis, MUTATOR_NAMES,
                registered=registered,
            )
        return self._aliasfacts


def _dotted(func: ast.expr) -> Optional[str]:
    """``np.random.seed`` for an attribute-chain callee, ``foo`` for a
    plain name; None for computed callees (``xs[0]()``)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------- #
# supported-subset (RPR001..RPR008)
# ---------------------------------------------------------------------- #

def supported_subset(unit: CheckedUnit) -> list[Diagnostic]:
    """Render the precompiler's collected subset violations as diagnostics."""
    out: list[Diagnostic] = []
    for v in unit.violations:
        code = next(
            (c for prefix, c in _SUBSET_CODE_BY_PREFIX
             if v.construct.startswith(prefix)),
            "RPR003",  # unknown construct kinds are still subset errors
        )
        span = Span(
            file=unit.file_of(v.function),
            line=v.lineno or 0,
            col=v.col_offset or 0,
        )
        out.append(Diagnostic(
            code=code,
            message=f"unsupported construct: {v.construct}",
            span=span,
            function=v.function,
            hint=v.hint or _SUBSET_HINTS.get(code, ""),
        ))
    return out


# ---------------------------------------------------------------------- #
# collective-matching (RPR010, RPR011)
# ---------------------------------------------------------------------- #

def collective_matching(unit: CheckedUnit) -> list[Diagnostic]:
    """All processes must execute the same sequence of collectives.

    Per function, the analysis extracts the *collective sequence* of every
    straight-line region (direct ``ctx.<collective>()`` calls plus calls to
    unit functions that transitively perform collectives) and requires the
    two arms of every ``if`` to produce equal sequences.  Path-sensitive
    refinement (v3) consults the branch predicate's rank-divergence
    verdict first: a *uniform* predicate means every rank takes the same
    arm, so differing arms are fine; a *divergent* predicate (``ctx.rank``
    or received data syntactically in the test) upgrades the mismatch to
    ``RPR014`` (the divergence is provable); anything in between stays
    ``RPR010``.  A conditional ``return``/``break`` under a non-uniform
    predicate with collectives still ahead in the enclosing region earns a
    ``RPR011`` warning: the exiting process would skip them while its
    peers block.
    """
    out: list[Diagnostic] = []

    def tokens_of(node: ast.AST, fn_name: str) -> list[str]:
        """Collective tokens in an expression/atomic statement (canonical
        walk order — both arms of a branch are canonicalised identically)."""
        toks = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in COLLECTIVE_NAMES
                and attr_root(func) in unit.comm_names(fn_name)
            ):
                toks.append(func.attr)
            elif (
                isinstance(func, ast.Name)
                and func.id in unit.collective_callers
            ):
                toks.append(f"call:{func.id}")
        return toks

    def has_exit(stmts: list[ast.stmt]) -> bool:
        for s in stmts:
            for sub in ast.walk(s):
                if isinstance(sub, (ast.Return, ast.Break)):
                    return True
        return False

    def seq_of(stmts: list[ast.stmt], fn_name: str) -> list[str]:
        toks: list[str] = []
        exits: list[tuple[ast.stmt, int]] = []  # (conditional exit, pos)
        for s in stmts:
            if isinstance(s, ast.If):
                toks += tokens_of(s.test, fn_name)
                then_seq = seq_of(s.body, fn_name)
                else_seq = seq_of(s.orelse, fn_name)
                verdict = unit.callgraph.predicate_verdict(fn_name, s.test)
                mismatch = then_seq != else_seq
                if mismatch and verdict == UNIFORM:
                    # Every rank evaluates the same predicate value, so
                    # all of them take the same arm: asymmetric arms are
                    # not a protocol divergence (the v2 RPR010
                    # false-positive family).
                    mismatch = False
                if mismatch:
                    # The token view differs, but resolving unit calls to
                    # their own collective summaries may prove both arms
                    # execute the same protocol (e.g. each arm calls a
                    # different helper wrapping the same allreduce, or
                    # correlated uniform sub-branches merge per path).
                    then_res = unit.callgraph.resolve_block(fn_name, s.body)
                    else_res = unit.callgraph.resolve_block(fn_name, s.orelse)
                    if equivalent(then_res, else_res) \
                            and not has_unknown(then_res):
                        mismatch = False
                if mismatch:
                    divergent = verdict == DIVERGENT
                    out.append(Diagnostic(
                        code="RPR014" if divergent else "RPR010",
                        message=(
                            (
                                "branch predicate is provably rank-"
                                "divergent and the arms execute different "
                                if divergent else
                                "branch arms execute different "
                            )
                            + "collective sequences: "
                            f"{then_seq or ['<none>']} vs "
                            f"{else_seq or ['<none>']}"
                        ),
                        span=unit.span(fn_name, s),
                        function=fn_name,
                        hint=(
                            (
                                "the predicate reads ctx.rank/received "
                                "data, so ranks take different arms; "
                                "broadcast the decision or hoist the "
                                "collective out of the branch"
                            ) if divergent else (
                                "all ranks must execute the same "
                                "collectives; hoist the collective out of "
                                "the branch"
                            )
                        ),
                    ))
                elif (
                    verdict != UNIFORM
                    and (has_exit(s.body) or has_exit(s.orelse))
                ):
                    # A uniform predicate exits on every rank together —
                    # only rank-divergent exits can strand peers.
                    exits.append((s, len(toks)))
                toks += then_seq
            elif isinstance(s, (ast.For, ast.While)):
                if isinstance(s, ast.While):
                    toks += tokens_of(s.test, fn_name)
                else:
                    toks += tokens_of(s.iter, fn_name)
                toks += seq_of(s.body, fn_name)
                toks += seq_of(s.orelse, fn_name)
            elif isinstance(s, ast.Try):
                toks += seq_of(s.body, fn_name)
                for handler in s.handlers:
                    seq_of(handler.body, fn_name)
                toks += seq_of(s.orelse, fn_name)
                toks += seq_of(s.finalbody, fn_name)
            elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                continue  # separate scope/unit
            else:
                toks += tokens_of(s, fn_name)
        for stmt, pos in exits:
            if len(toks) > pos:  # collectives still ahead of the exit
                out.append(Diagnostic(
                    code="RPR011",
                    message=(
                        "conditional early exit may skip "
                        f"{len(toks) - pos} later collective call(s)"
                    ),
                    span=unit.span(fn_name, stmt),
                    function=fn_name,
                    hint=(
                        "a rank leaving early deadlocks peers blocked in "
                        "the collective; make the exit collective too "
                        "(e.g. allreduce the stop flag)"
                    ),
                ))
        return toks

    for name, tree in unit.functions.items():
        seq_of(tree.body, name)
    return out


# ---------------------------------------------------------------------- #
# collective-sequencing (RPR012, RPR013)
# ---------------------------------------------------------------------- #

def collective_sequencing(unit: CheckedUnit) -> list[Diagnostic]:
    """Interprocedural sequencing hazards the syntactic matcher misses.

    ``RPR012``: a loop whose guard (``while`` test / ``for`` iterable) may
    differ across ranks — it depends on ``ctx.rank``, a received message,
    or an unlogged draw, tracked through assignments *and* unit-function
    calls — while the loop body (interprocedurally resolved) executes
    collectives.  Ranks iterate different counts, so some rank eventually
    blocks in a collective its peers never enter: the classic
    ``while local_err > tol: allreduce(...)`` convergence deadlock.
    When the divergence source appears *syntactically in the guard itself*
    (``while ctx.recv(...)``, ``for i in range(ctx.rank)``), divergence is
    provable rather than merely possible and the finding upgrades to
    ``RPR014``.

    ``RPR013``: a point-to-point tag with traffic in only one direction
    anywhere in the unit (sends nobody receives, or receives nobody
    sends), with module-level tag constants resolved.  This replaces the
    v1 carve-out that ignored p2p calls entirely.
    """
    cg = unit.callgraph
    out: list[Diagnostic] = []
    for name, tree in unit.functions.items():
        for node in ast.walk(tree):
            if isinstance(node, ast.While):
                guard: ast.expr = node.test
                kind = "while condition"
            elif isinstance(node, ast.For):
                guard = node.iter
                kind = "for iterable"
            else:
                continue
            verdict = cg.predicate_verdict(name, guard)
            if verdict == UNIFORM:
                continue
            body = cg.resolve_block(name, node.body)
            colls = collectives_in(body)
            if colls:
                divergent = verdict == DIVERGENT
                out.append(Diagnostic(
                    code="RPR014" if divergent else "RPR012",
                    message=(
                        (
                            f"loop {kind} is provably rank-divergent "
                            if divergent else
                            f"loop {kind} may differ across ranks "
                        )
                        + "but the body executes collective(s) "
                        f"{', '.join(colls)}; ranks iterate different "
                        "counts and deadlock"
                    ),
                    span=unit.span(name, node),
                    function=name,
                    hint=(
                        "make the guard rank-uniform first, e.g. "
                        "allreduce the continue/error value every "
                        "iteration so all ranks decide together"
                    ),
                ))
    for um in cg.unmatched_p2p():
        if um.kind == "send":
            message = (
                f"send with tag {um.tag!r} has no matching recv "
                "anywhere in the unit"
            )
            hint = (
                "the destination rank blocks forever waiting to be "
                "received from; add the peer recv or fix the tag"
            )
        else:
            message = (
                f"recv with tag {um.tag!r} has no matching send "
                "anywhere in the unit"
            )
            hint = (
                "this rank blocks forever waiting for a message nobody "
                "sends; add the peer send or fix the tag"
            )
        out.append(Diagnostic(
            code="RPR013",
            message=message,
            span=unit.span(um.site.function, um.site.node),
            function=um.site.function,
            hint=hint,
        ))
    return out


# ---------------------------------------------------------------------- #
# unlogged-nondeterminism (RPR020, RPR021)
# ---------------------------------------------------------------------- #

def _matches_nondet(dotted: str) -> bool:
    return any(
        dotted == p or dotted.startswith(p + ".") for p in NONDET_PREFIXES
    )


def unlogged_nondeterminism(unit: CheckedUnit) -> list[Diagnostic]:
    """Entropy and wall-clock reads the result log cannot replay.

    The protocol replays received messages and ``ctx.nondet(...)`` results
    from its logs; ``random.random()``/``os.urandom``/``uuid4`` draws and
    ``time.time()`` reads happen *outside* the log, so a restarted rank
    recomputes different values and diverges from the failure-free run.
    Chains rooted at a local name or at the communication root
    (``ctx.rng.random()``) are exempt — those are managed state.
    """
    out: list[Diagnostic] = []
    for name, tree in unit.functions.items():
        local = unit.locals_of(name) | set(unit.comm_names(name))
        # Calls inside the arguments of a comm-rooted ``ctx.nondet(...)``
        # are the logged-replay idiom itself, not a finding (this is what
        # ``--fix`` rewrites unfixable entropy into).
        logged: set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "nondet"
                and attr_root(node.func) in unit.comm_names(name)
            ):
                for arg in list(node.args) + [
                    k.value for k in node.keywords
                ]:
                    for sub in ast.walk(arg):
                        logged.add(id(sub))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if id(node) in logged:
                continue
            dotted = _dotted(node.func)
            if dotted is None or "." not in dotted:
                continue
            root = dotted.split(".", 1)[0]
            if root in local:
                continue
            if _matches_nondet(dotted):
                out.append(Diagnostic(
                    code="RPR020",
                    message=(
                        f"call to {dotted}() is nondeterministic and not "
                        "logged; replay after recovery diverges"
                    ),
                    span=unit.span(name, node),
                    function=name,
                    hint=(
                        "draw from ctx.rng (checkpointed per rank) or wrap "
                        "the call in ctx.nondet(lambda: ...)"
                    ),
                ))
            elif dotted in CLOCK_NAMES:
                out.append(Diagnostic(
                    code="RPR021",
                    message=(
                        f"call to {dotted}() reads the host wall clock, "
                        "which differs across recovery replays"
                    ),
                    span=unit.span(name, node),
                    function=name,
                    hint=(
                        "use the simulator's virtual time, or wrap in "
                        "ctx.nondet(...) if the value affects control flow"
                    ),
                ))
    return out


# ---------------------------------------------------------------------- #
# VDS-escape (RPR030, RPR031, RPR032)
# ---------------------------------------------------------------------- #

def _store_targets(node: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield node.target
    elif isinstance(node, ast.Delete):
        yield from node.targets


def vds_escape(unit: CheckedUnit) -> list[Diagnostic]:
    """State outside the checkpointed variable descriptor set.

    The VDS covers the unit functions' locals (captured frame-by-frame at a
    checkpoint).  Mutating anything else — a module global, a shared
    default-argument object, a closure cell — survives into the restarted
    process *or* is silently reset by it, either way breaking the paper's
    assumption that a checkpoint captures all application state.
    """
    out: list[Diagnostic] = []
    for name, tree in unit.functions.items():
        local = unit.locals_of(name)
        # Globals registered via checkpointable_state(...) are managed by
        # the globals registry (snapshotted/restored with every
        # checkpoint), so mutating them is not an escape.
        exempt = local | set(unit.comm_names(name)) | unit.registered_of(name)

        # RPR031: mutable default arguments (shared across calls; their
        # mutation is invisible to frame capture).
        args = tree.args
        pos = list(args.posonlyargs) + list(args.args)
        for arg, default in zip(pos[len(pos) - len(args.defaults):],
                                args.defaults):
            if _is_mutable_literal(default):
                out.append(_mutable_default(unit, name, arg, default))
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable_literal(default):
                out.append(_mutable_default(unit, name, arg, default))

        for node in ast.walk(tree):
            # RPR030 (stores): x.attr = ... / x[i] = ... where x is not a
            # local — the object lives outside every frame in the VDS.
            if isinstance(node, ast.stmt):
                for target in _store_targets(node):
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = attr_root(
                            target.value if isinstance(target, ast.Subscript)
                            else target
                        )
                        if root is not None and root not in exempt:
                            out.append(Diagnostic(
                                code="RPR030",
                                message=(
                                    f"store to {root}.{{...}} mutates state "
                                    "outside the checkpointed VDS"
                                ),
                                span=unit.span(name, target),
                                function=name,
                                hint=(
                                    "thread the object through parameters/"
                                    "locals, or register it with "
                                    'checkpointable_state("'
                                    f'{root}")'
                                ),
                            ))
            # RPR030 (calls): GLOBAL.append(x) and friends.
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_NAMES
                ):
                    root = attr_root(func)
                    if root is not None and root not in exempt:
                        out.append(Diagnostic(
                            code="RPR030",
                            message=(
                                f"{root}.{func.attr}() mutates state "
                                "outside the checkpointed VDS"
                            ),
                            span=unit.span(name, node),
                            function=name,
                            hint=(
                                "mutations of non-local objects are not "
                                "captured by checkpoints nor undone by "
                                "recovery"
                            ),
                        ))
            # RPR032: a nested scope reading this function's locals keeps
            # cell references the frame capture cannot see through.
            if isinstance(node, (ast.FunctionDef, ast.Lambda)) \
                    and node is not tree:
                captured = sorted(_free_reads(node) & local)
                if captured:
                    kind = ("lambda" if isinstance(node, ast.Lambda)
                            else f"def {node.name}")
                    out.append(Diagnostic(
                        code="RPR032",
                        message=(
                            f"{kind} captures checkpointed local(s) "
                            f"{', '.join(captured)} by closure"
                        ),
                        span=unit.span(name, node),
                        function=name,
                        hint=(
                            "pass the value as a default argument "
                            "(lambda v=v: ...) so restore rebinds it"
                        ),
                    ))
    return out


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "dict", "set", "bytearray"}
    )


def _mutable_default(unit: CheckedUnit, fn_name: str, arg: ast.arg,
                     default: ast.expr) -> Diagnostic:
    return Diagnostic(
        code="RPR031",
        message=(
            f"parameter {arg.arg!r} has a mutable default, shared across "
            "calls and invisible to frame capture"
        ),
        span=unit.span(fn_name, default),
        function=fn_name,
        hint=f"use {arg.arg}=None and create the object inside the body",
    )


def _free_reads(inner: ast.AST) -> set[str]:
    """Names the nested scope reads but does not itself bind.

    Only the *body* is scanned: default expressions evaluate in the
    enclosing scope at definition time — ``lambda v, t=total: ...`` is the
    capture-free idiom, not a capture.
    """
    bound: set[str] = set()
    reads: set[str] = set()
    body: list[ast.AST]
    if isinstance(inner, (ast.FunctionDef, ast.Lambda)):
        a = inner.args
        for arg in (list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)):
            bound.add(arg.arg)
        if a.vararg:
            bound.add(a.vararg.arg)
        if a.kwarg:
            bound.add(a.kwarg.arg)
        body = [inner.body] if isinstance(inner, ast.Lambda) else list(inner.body)
    else:
        body = [inner]
    for part in body:
        for node in ast.walk(part):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    bound.add(node.id)
                else:
                    reads.add(node.id)
            elif isinstance(node, ast.comprehension):
                for t in ast.walk(node.target):
                    if isinstance(t, ast.Name):
                        bound.add(t.id)
    return reads - bound


# ---------------------------------------------------------------------- #
# aliased VDS-escape (RPR033, RPR034)
# ---------------------------------------------------------------------- #

def aliased_escape(unit: CheckedUnit) -> list[Diagnostic]:
    """Escape routes the name-rooted v1 analysis cannot see.

    ``RPR033``: a mutation whose receiver is a *local alias* of non-local
    state — the global was first bound to a local (directly, through a
    container element, or via a helper's return value) and then mutated
    through the local name.  The mutation reaches exactly the same
    uncheckpointed object ``RPR030`` guards against.

    ``RPR034``: a checkpointed local handed to a unit callee that stores
    its parameter into module state.  After recovery the module keeps a
    stale reference to the pre-failure object while the restored frame
    holds a fresh copy — the two silently diverge.
    """
    facts = unit.aliasfacts
    out: list[Diagnostic] = []
    for m in facts.alias_mutations():
        what = (
            "store through" if m.via == "store" else f"{m.local}.{m.via}()"
        )
        out.append(Diagnostic(
            code="RPR033",
            message=(
                f"{what} alias {m.local!r} mutates state outside the "
                "checkpointed VDS"
            ),
            span=unit.span(m.function, m.node),
            function=m.function,
            hint=(
                f"{m.local!r} points at module-level state; thread the "
                "object through parameters/locals or register the global "
                "with checkpointable_state(...)"
            ),
        ))
    for e in facts.escaping_args():
        out.append(Diagnostic(
            code="RPR034",
            message=(
                f"checkpointed local {e.local!r} escapes into module "
                f"state via {e.callee}() parameter {e.param!r}"
            ),
            span=unit.span(e.function, e.node),
            function=e.function,
            hint=(
                "after recovery the module would keep a stale reference "
                "while the restored frame holds a new copy; return the "
                "value instead of parking it in module state"
            ),
        ))
    return out


# ---------------------------------------------------------------------- #
# cross-module (RPR050, RPR051)
# ---------------------------------------------------------------------- #

def cross_module_imports(unit: CheckedUnit) -> list[Diagnostic]:
    """Render the driver's import-graph slicing findings.

    The slicer (``repro.check.driver``) resolves ``from sibling import
    helper`` / ``import sibling as H`` against files next to the checked
    module and joins the resolved helpers into the unit.  What it could
    *not* resolve surfaces here: ``RPR050`` for a missing/aliased/
    colliding helper (the call is then analysed as an opaque library call,
    losing its collective/taint/escape summary) and ``RPR051`` for star
    imports (which hide which helpers exist at all).
    """
    return list(unit.import_diagnostics)


# ---------------------------------------------------------------------- #
# checkpoint-placement (RPR040, RPR041)
# ---------------------------------------------------------------------- #

def checkpoint_placement(unit: CheckedUnit) -> list[Diagnostic]:
    """Recovery-cost advice: work that can never checkpoint re-executes in
    full after every failure.

    ``RPR040``: a loop that communicates but contains no checkpoint site
    and no call into the checkpoint-reaching set — its whole execution is
    one recovery interval.  Only the outermost such loop is reported.
    ``RPR041``: the unit has *no* checkpoint site anywhere, yet a function
    communicates — the program runs under the protocol but can never save
    progress at all.
    """
    out: list[Diagnostic] = []
    reaching = unit.analysis.reaching
    unit_has_site = any(
        info.has_checkpoint_site for info in unit.analysis.infos.values()
    )

    def communicates(node: ast.AST, fn_name: str) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in COMM_CALL_NAMES
                and attr_root(func) in unit.comm_names(fn_name)
            ):
                return True
            if isinstance(func, ast.Name) and func.id in unit.comm_callers:
                return True
        return False

    def visit(stmts: list[ast.stmt], fn_name: str) -> None:
        comm_names = unit.comm_names(fn_name)
        for s in stmts:
            if isinstance(s, (ast.For, ast.While)):
                if communicates(s, fn_name) and not \
                        stmt_contains_checkpointable(s, reaching, comm_names):
                    out.append(Diagnostic(
                        code="RPR040",
                        message=(
                            "loop communicates but contains no reachable "
                            "potential_checkpoint; a failure re-executes "
                            "the entire loop"
                        ),
                        span=unit.span(fn_name, s),
                        function=fn_name,
                        hint=(
                            "call ctx.potential_checkpoint() once per "
                            "iteration (the protocol makes it cheap when "
                            "declined)"
                        ),
                    ))
                    continue  # outermost report is enough
                visit(s.body, fn_name)
                visit(s.orelse, fn_name)
            elif isinstance(s, ast.If):
                visit(s.body, fn_name)
                visit(s.orelse, fn_name)
            elif isinstance(s, ast.Try):
                visit(s.body, fn_name)
                for h in s.handlers:
                    visit(h.body, fn_name)
                visit(s.orelse, fn_name)
                visit(s.finalbody, fn_name)
            elif isinstance(s, ast.With):
                visit(s.body, fn_name)

    for name, tree in unit.functions.items():
        visit(tree.body, name)
        if not unit_has_site and communicates(tree, name):
            direct = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in COMM_CALL_NAMES
                and attr_root(n.func) in unit.comm_names(name)
                for n in ast.walk(tree)
            )
            if direct:
                out.append(Diagnostic(
                    code="RPR041",
                    message=(
                        f"{name!r} communicates but the unit has no "
                        "checkpoint site at all; no progress survives a "
                        "failure"
                    ),
                    span=unit.span(name, tree),
                    function=name,
                    hint="insert ctx.potential_checkpoint() in the main loop",
                ))
    return out


#: The battery the driver runs, in rendering order.
ANALYSES: tuple[Callable[[CheckedUnit], list[Diagnostic]], ...] = (
    supported_subset,
    collective_matching,
    collective_sequencing,
    unlogged_nondeterminism,
    vds_escape,
    aliased_escape,
    cross_module_imports,
    checkpoint_placement,
)
