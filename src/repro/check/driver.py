"""Check drivers: build a checked unit from whatever the caller has.

Four front doors, all funnelling into :func:`run_unit_checks`:

* :func:`check_functions` — live callables (what ``Precompiler.compile``
  uses);
* :func:`check_module` — an imported module or dotted module name;
* :func:`check_path` — a source file on disk (no import executed);
* :func:`check_app` — a registered app name (checks its defining module).

For modules and files the *checked unit* is selected statically: every
top-level function with a ``ctx``/``comm``/``mpi`` parameter seeds the
unit, plus everything those functions call by plain name, transitively —
the same closure the precompiler would compile.  Helpers like ``build()``
factories and ``@repro.app`` registration shims stay out.

v3 adds the **import-graph slicer**: when the checked file imports from a
*sibling* module (a ``.py`` file in the same directory, the common
``app.py`` + ``halo.py`` project layout), the imported helpers — and
their transitive in-module callees — join the unit with their own
source/suppression/constant scoping, so a multi-file app verifies exactly
like its single-file merge.  What the slicer cannot resolve surfaces as
the ``RPR05x`` family instead of silently dropping out of the analysis.

:func:`preflight` is the embedded entry point ``Session.run(check=...)``
and chaos campaigns use: check a batch of app names and raise
:class:`~repro.errors.CheckError` on error findings.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import os
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.check.analyses import ANALYSES, CheckedUnit
from repro.check.diagnostics import CheckResult, Diagnostic, Span, render_text
from repro.check.suppress import SuppressionFilter, find_suppressions
from repro.errors import CheckError, PrecompilerError
from repro.precompiler.analysis import (
    COMM_PARAM_NAMES,
    UnitAnalysis,
    Violation,
    module_registered_globals,
    validate_supported,
)


def run_unit_checks(
    functions: dict[str, ast.FunctionDef],
    files: dict[str, str],
    target: str,
    extra_violations: Iterable[Violation] = (),
    sources: Optional[dict[str, str]] = None,
    extra_diagnostics: Iterable[Diagnostic] = (),
    extra_constants: Optional[dict[str, dict[str, object]]] = None,
) -> CheckResult:
    """Run the whole battery over already-parsed function ASTs.

    ``files`` maps function name → source path; line numbers in the trees
    must already be absolute file coordinates.  ``extra_violations`` lets
    the precompiler feed violations it found itself (so strict compiles
    and the CLI render identical diagnostics).  ``sources`` maps file
    path → full module source text — it feeds module-constant resolution
    (p2p tag names), ``checkpointable_state`` registration scanning, and
    ``# repro: ignore[...]`` suppressions; when not given, the driver
    reads the files from disk.  ``extra_diagnostics`` carries the
    slicer's RPR050/051 findings; ``extra_constants`` maps file →
    constants imported *into* that file from elsewhere (``from halo
    import TAG_UP``), layered over the file's own constants.
    """
    if sources is None:
        sources = _read_sources(files.values())
    violations: list[Violation] = list(extra_violations)
    analysis = UnitAnalysis(functions, collect=violations)
    reaching = analysis.reaching
    for name in sorted(reaching):
        validate_supported(
            functions[name],
            reaching,
            analysis.infos[name].comm_names,
            collect=violations,
        )
    constants: dict[str, object] = {}
    file_constants: dict[str, dict[str, object]] = {}
    registered: dict[str, set[str]] = {}
    for path, source in sources.items():
        tree = _parse_module(source)
        file_constants[path] = _tree_constants(tree)
        registered[path] = module_registered_globals(tree)
        constants.update(file_constants[path])
    for path, extra in (extra_constants or {}).items():
        file_constants.setdefault(path, {}).update(extra)
        constants.update(extra)
    unit = CheckedUnit(
        functions=functions,
        files=files,
        analysis=analysis,
        violations=violations,
        constants=constants,
        file_constants=file_constants,
        registered_globals=registered,
        import_diagnostics=list(extra_diagnostics),
    )
    diagnostics: list[Diagnostic] = []
    for run in ANALYSES:
        diagnostics.extend(run(unit))
    # One finding per (code, place): analyses overlap at the edges.
    seen: set[tuple] = set()
    unique: list[Diagnostic] = []
    for d in sorted(diagnostics, key=Diagnostic.sort_key):
        key = (d.code, d.span.file, d.span.line, d.span.col)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    kept, suppressed = _apply_suppressions(unique, sources, functions, files)
    return CheckResult(
        target=target,
        diagnostics=tuple(sorted(kept, key=Diagnostic.sort_key)),
        functions=tuple(sorted(functions)),
        suppressed=tuple(suppressed),
    )


def _read_sources(paths: Iterable[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    for path in dict.fromkeys(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                out[path] = fh.read()
        except OSError:
            continue  # synthetic file names ("<string>") have no disk copy
    return out


def _parse_module(source: str) -> ast.Module:
    try:
        return ast.parse(source)
    except SyntaxError:
        return ast.Module(body=[], type_ignores=[])


def _tree_constants(tree: ast.Module) -> dict[str, object]:
    """Top-level ``NAME = <int/str literal>`` bindings (p2p tag names)."""
    out: dict[str, object] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, (int, str))
        ):
            out[node.targets[0].id] = node.value.value
    return out


def _module_constants(source: str) -> dict[str, object]:
    return _tree_constants(_parse_module(source))


def _apply_suppressions(
    diagnostics: list[Diagnostic],
    sources: dict[str, str],
    functions: dict[str, ast.FunctionDef],
    files: dict[str, str],
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Honour ``# repro: ignore[...]`` comments; lint stale ones (RPR090)."""
    suppressions = []
    for file, source in sources.items():
        suppressions.extend(find_suppressions(source, file))
    if not suppressions:
        return diagnostics, []
    filt = SuppressionFilter(suppressions)
    kept, suppressed = filt.split(diagnostics)
    for s, code in filt.unused():
        kept.append(Diagnostic(
            code="RPR090",
            message=(
                f"suppression of {code} matches no finding "
                f"({s.describe()})"
            ),
            span=Span(file=s.file, line=s.line, col=s.col),
            function=_enclosing_function(functions, files, s.file, s.line),
            hint=(
                "remove the stale suppression so future regressions "
                "are not silently waved through"
            ),
        ))
    return kept, suppressed


def _enclosing_function(
    functions: dict[str, ast.FunctionDef],
    files: dict[str, str],
    file: str,
    line: int,
) -> str:
    for name, tree in functions.items():
        if files.get(name) != file:
            continue
        if tree.lineno <= line <= (tree.end_lineno or tree.lineno):
            return name
    return "<module>"


# --------------------------------------------------------------------- #
# loaders
# --------------------------------------------------------------------- #

def _parse_callable(fn: Callable) -> tuple[ast.FunctionDef, str]:
    # ``inspect.getsource`` follows ``__wrapped__`` to the original def,
    # but ``co_firstlineno`` on the wrapper belongs to the *wrapper's*
    # source — mixing them drifts every span.  Unwrap first so source and
    # line numbers describe the same function.
    fn = inspect.unwrap(fn)
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        file = inspect.getsourcefile(fn) or "<unknown>"
        first_line = fn.__code__.co_firstlineno
    except (OSError, TypeError) as exc:
        raise PrecompilerError(f"cannot read source of {fn!r}: {exc}") from exc
    module = ast.parse(source)
    defs = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if len(defs) != 1:
        raise PrecompilerError(
            f"expected exactly one function def in source of {fn!r}"
        )
    tree = defs[0]
    # Shift spans from source-snippet to absolute file coordinates so
    # diagnostics point into the real file.  ``co_firstlineno`` anchors at
    # the first decorator when the function has any.
    anchor = (
        tree.decorator_list[0].lineno if tree.decorator_list else tree.lineno
    )
    ast.increment_lineno(tree, first_line - anchor)
    return tree, file


def check_functions(
    functions: Iterable[Callable],
    target: str = "unit",
) -> CheckResult:
    """Check a compilation unit given as live callables."""
    trees: dict[str, ast.FunctionDef] = {}
    files: dict[str, str] = {}
    for fn in functions:
        tree, file = _parse_callable(fn)
        trees[tree.name] = tree
        files[tree.name] = file
    if not trees:
        raise PrecompilerError("empty compilation unit")
    return run_unit_checks(trees, files, target)


def _has_comm_param(tree: ast.FunctionDef) -> bool:
    params = [
        a.arg
        for a in (list(tree.args.posonlyargs) + list(tree.args.args))
    ]
    return any(p in COMM_PARAM_NAMES for p in params)


def _select_names(space: dict[str, ast.FunctionDef]) -> list[str]:
    """Unit selection over a function space: ctx-parameter functions seed
    the unit, plus their transitive plain-name callees."""
    selected = {name for name, tree in space.items() if _has_comm_param(tree)}
    changed = True
    while changed:
        changed = False
        for name in list(selected):
            for node in ast.walk(space[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in space
                    and node.func.id not in selected
                ):
                    selected.add(node.func.id)
                    changed = True
    return sorted(selected)


def _select_unit(module_tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """The checked unit of a module: ctx-parameter functions plus their
    transitive plain-name callees among the top-level functions."""
    top: dict[str, ast.FunctionDef] = {
        n.name: n
        for n in module_tree.body
        if isinstance(n, ast.FunctionDef)
    }
    return {name: top[name] for name in _select_names(top)}


# --------------------------------------------------------------------- #
# import-graph slicer (cross-module units)
# --------------------------------------------------------------------- #

@dataclass
class UnitSlice:
    """What the slicer hands :func:`run_unit_checks`: the selected unit
    (possibly spanning several files), per-function origin files, the
    sources of every contributing file, constants imported into the
    target's namespace, and the RPR050/051 findings."""

    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    files: dict[str, str] = field(default_factory=dict)
    sources: dict[str, str] = field(default_factory=dict)
    imported_constants: dict[str, object] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)


def _sibling_file(directory: str, module: Optional[str]) -> Optional[str]:
    """Resolve a module name to ``<directory>/<last-component>.py`` when
    that file exists — the pragmatic project-layout heuristic: sibling
    modules live next to the file importing them.  Dotted names resolve by
    their final component (``repro.apps.stencil3d_halo`` → sibling
    ``stencil3d_halo.py`` when checking a file in ``repro/apps``)."""
    if not directory or not module:
        return None
    last = module.rsplit(".", 1)[-1]
    path = os.path.join(directory, last + ".py")
    return path if os.path.isfile(path) else None


def _slice_directory(file: str) -> str:
    """The directory sibling imports resolve against ('' for synthetic
    sources like ``<string>`` or bare filenames — slicing is then
    disabled; only real on-disk paths have siblings)."""
    if not file or file.startswith("<"):
        return ""
    directory = os.path.dirname(file)
    return directory if directory and os.path.isdir(directory) else ""


def _top_level_names(tree: ast.Module) -> set[str]:
    """Every name a module binds at top level (defs, classes, assigns,
    imports) — used to distinguish "imported something that is not a
    function" (fine) from "imported something that does not exist"."""
    out: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            out.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    out.add(alias.asname or alias.name.split(".")[0])
    return out


def _xdiag(code: str, node: ast.AST, file: str, message: str, hint: str,
           function: str = "<module>") -> Diagnostic:
    return Diagnostic(
        code=code,
        message=message,
        span=Span.of(node, file),
        function=function,
        hint=hint,
    )


def slice_module(
    module_tree: ast.Module, file: str, source: str
) -> UnitSlice:
    """Select the checked unit of a module, joining helpers imported from
    sibling files (same directory) into the unit.

    Join rules: ``from sibling import helper`` joins ``helper`` directly;
    ``import sibling`` / ``import pkg.sibling as H`` joins helpers at
    ``H.helper(...)`` call sites, rewriting the call to a plain name so
    the interprocedural analyses see one call graph.  Joined helpers pull
    their own in-module plain-name callees transitively.  Non-sibling
    imports (stdlib, installed packages) are out of scope and stay opaque
    library calls, exactly as before.  Unresolvable sibling references
    (missing names, aliased helper imports, name collisions, star
    imports) surface as RPR050/051.
    """
    top: dict[str, ast.FunctionDef] = {
        n.name: n for n in module_tree.body
        if isinstance(n, ast.FunctionDef)
    }
    out = UnitSlice(sources={file: source})
    diags = out.diagnostics
    directory = _slice_directory(file)
    abs_file = os.path.abspath(file) if directory else file

    #: Names called by plain name anywhere in the target's functions —
    #: unresolvable imports only warn when something actually calls them.
    called: set[str] = set()
    for tree in top.values():
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                called.add(node.func.id)

    combined: dict[str, ast.FunctionDef] = dict(top)
    origin: dict[str, str] = {name: file for name in top}

    # path -> (tree, defs, source) for parsed siblings; None on failure.
    cache: dict[str, Optional[tuple]] = {}
    parse_warned: set[str] = set()

    def load(path: str, node: ast.AST) -> Optional[tuple]:
        if path not in cache:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    sib_source = fh.read()
                sib_tree = ast.parse(sib_source, filename=path)
            except (OSError, SyntaxError):
                cache[path] = None
            else:
                sib_defs = {
                    n.name: n for n in sib_tree.body
                    if isinstance(n, ast.FunctionDef)
                }
                cache[path] = (sib_tree, sib_defs, sib_source)
        if cache[path] is None and path not in parse_warned:
            parse_warned.add(path)
            diags.append(_xdiag(
                "RPR050", node, file,
                f"sibling module {os.path.basename(path)!r} failed to "
                "load; its helpers stay opaque to the unit",
                "fix the sibling module so its helpers can join the "
                "checked unit",
            ))
        return cache[path]

    def join(name: str, path: str) -> None:
        """Join a sibling def and its transitive in-module callees."""
        loaded = cache[path]
        assert loaded is not None
        sib_tree, sib_defs, sib_source = loaded
        queue = [name]
        while queue:
            n = queue.pop()
            if n in combined:
                continue
            combined[n] = sib_defs[n]
            origin[n] = path
            out.sources.setdefault(path, sib_source)
            for sub in ast.walk(sib_defs[n]):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in sib_defs
                    and sub.func.id not in combined
                ):
                    queue.append(sub.func.id)

    module_aliases: dict[str, str] = {}
    if directory:
        for node in module_tree.body:
            if isinstance(node, ast.ImportFrom):
                if node.module is None:
                    # ``from . import sibling`` binds module objects.
                    for alias in node.names:
                        path = _sibling_file(directory, alias.name)
                        if path and os.path.abspath(path) != abs_file:
                            module_aliases[alias.asname or alias.name] = path
                    continue
                path = _sibling_file(directory, node.module)
                if path is None or os.path.abspath(path) == abs_file:
                    continue
                loaded = load(path, node)
                if loaded is None:
                    continue
                sib_tree, sib_defs, sib_source = loaded
                sib_consts = _tree_constants(sib_tree)
                sib_names = _top_level_names(sib_tree)
                for alias in node.names:
                    if alias.name == "*":
                        diags.append(_xdiag(
                            "RPR051", node, file,
                            f"'from {node.module} import *' hides which "
                            "sibling helpers the unit uses; they stay "
                            "opaque to the analyses",
                            "import the helpers you call by name so they "
                            "join the checked unit",
                        ))
                        continue
                    bound = alias.asname or alias.name
                    if alias.name in sib_defs:
                        if alias.asname and alias.asname != alias.name:
                            if bound in called:
                                diags.append(_xdiag(
                                    "RPR050", alias, file,
                                    f"helper {alias.name!r} imported as "
                                    f"{alias.asname!r} cannot join the "
                                    "unit; its calls stay opaque",
                                    "import the helper under its own name "
                                    "so the slicer can join it",
                                ))
                        elif bound in top:
                            if bound in called:
                                diags.append(_xdiag(
                                    "RPR050", alias, file,
                                    f"imported helper {alias.name!r} "
                                    "collides with a local definition of "
                                    "the same name; calls bind "
                                    "ambiguously",
                                    "rename the local function or drop "
                                    "the import",
                                ))
                        else:
                            join(alias.name, path)
                    elif alias.name in sib_consts:
                        out.imported_constants[bound] = \
                            sib_consts[alias.name]
                    elif alias.name not in sib_names and bound in called:
                        diags.append(_xdiag(
                            "RPR050", alias, file,
                            f"sibling module {node.module!r} defines no "
                            f"{alias.name!r}; the call stays opaque",
                            "define the helper in the sibling module or "
                            "fix the import",
                        ))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    path = _sibling_file(directory, alias.name)
                    if path is None or os.path.abspath(path) == abs_file:
                        continue
                    if alias.asname:
                        module_aliases[alias.asname] = path
                    elif "." not in alias.name:
                        module_aliases[alias.name] = path

    # ``H.helper(...)`` call sites against module aliases: join the helper
    # and rewrite the call to a plain name so the call graph sees it.
    for fname, ftree in top.items():
        for node in ast.walk(ftree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
            ):
                continue
            path = module_aliases[func.value.id]
            loaded = load(path, node)
            if loaded is None:
                continue
            sib_tree, sib_defs, sib_source = loaded
            if func.attr in sib_defs:
                if func.attr in combined and origin.get(func.attr) != path:
                    diags.append(_xdiag(
                        "RPR050", node, file,
                        f"cannot join {func.value.id}.{func.attr}(): the "
                        f"unit already defines {func.attr!r}; the call "
                        "stays opaque",
                        "rename one of the functions so the helper can "
                        "join the unit",
                        function=fname,
                    ))
                else:
                    join(func.attr, path)
                    node.func = ast.copy_location(
                        ast.Name(id=func.attr, ctx=ast.Load()), func
                    )
            elif func.attr not in _top_level_names(sib_tree):
                diags.append(_xdiag(
                    "RPR050", node, file,
                    f"sibling module bound to {func.value.id!r} defines "
                    f"no {func.attr!r}; the call stays opaque",
                    "define the helper in the sibling module or fix the "
                    "call",
                    function=fname,
                ))

    selected = _select_names(combined)
    out.functions = {name: combined[name] for name in selected}
    out.files = {name: origin[name] for name in selected}
    # Only files that contribute functions keep their sources (a sibling's
    # suppressions are irrelevant when none of its code joined the unit).
    keep = {file} | set(out.files.values())
    out.sources = {p: s for p, s in out.sources.items() if p in keep}
    return out


def import_closure(path: str) -> list[str]:
    """The file plus every sibling file its top-level imports resolve to
    (the slicer's one-level reach) — the incremental cache hashes exactly
    this set, so editing a helper invalidates the apps importing it."""
    out = [path]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        return out
    directory = _slice_directory(path)
    if not directory:
        return out
    abs_path = os.path.abspath(path)
    for node in tree.body:
        candidates: list[Optional[str]] = []
        if isinstance(node, ast.ImportFrom):
            if node.module is not None:
                candidates.append(_sibling_file(directory, node.module))
            else:
                candidates.extend(
                    _sibling_file(directory, a.name) for a in node.names
                )
        elif isinstance(node, ast.Import):
            candidates.extend(
                _sibling_file(directory, a.name) for a in node.names
            )
        for cand in candidates:
            if (
                cand
                and os.path.abspath(cand) != abs_path
                and cand not in out
            ):
                out.append(cand)
    return out


def check_source(
    source: str, file: str = "<string>", target: Optional[str] = None
) -> CheckResult:
    """Check source text (module coordinates are already absolute)."""
    module_tree = ast.parse(source, filename=file)
    sliced = slice_module(module_tree, file, source)
    extra_constants = (
        {file: sliced.imported_constants}
        if sliced.imported_constants else None
    )
    return run_unit_checks(
        sliced.functions,
        sliced.files,
        target or file,
        sources=sliced.sources,
        extra_diagnostics=sliced.diagnostics,
        extra_constants=extra_constants,
    )


def check_path(path: str, target: Optional[str] = None) -> CheckResult:
    """Check one source file without importing it."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return check_source(source, file=path, target=target or path)


def check_module(
    module: Any, target: Optional[str] = None
) -> CheckResult:
    """Check an imported module (or dotted module name)."""
    if isinstance(module, str):
        module = importlib.import_module(module)
    file = getattr(module, "__file__", None)
    if not file:
        raise PrecompilerError(
            f"module {module.__name__!r} has no source file"
        )
    return check_path(file, target=target or module.__name__)


def check_app(name: str) -> CheckResult:
    """Check a registered application by name (its defining module)."""
    from repro.api.registry import get_app

    spec = get_app(name)
    if not spec.module:
        raise PrecompilerError(f"app {name!r} has no source module")
    return check_module(spec.module, target=f"app:{name}")


# --------------------------------------------------------------------- #
# embedded entry point
# --------------------------------------------------------------------- #

def preflight(
    apps: Iterable[str],
    level: str = "error",
) -> list[CheckResult]:
    """Check a batch of registered apps before running them.

    ``level="error"`` raises :class:`CheckError` when any app has
    error-severity findings; ``level="warn"`` never raises (callers print
    the results).  Returns every result either way (on raise, they ride on
    the exception's ``results`` attribute).
    """
    if level not in ("warn", "error"):
        raise ValueError(f"preflight level must be 'warn' or 'error', got {level!r}")
    results = [check_app(name) for name in dict.fromkeys(apps)]
    failing = [r for r in results if not r.ok]
    if failing and level == "error":
        bad = ", ".join(r.target for r in failing)
        body = "\n".join(
            render_text(r.errors) for r in failing
        )
        exc = CheckError(
            f"static check failed for {bad}:\n{body}",
            diagnostics=tuple(
                d for r in failing for d in r.errors
            ),
        )
        exc.results = results  # type: ignore[attr-defined]
        raise exc
    return results
