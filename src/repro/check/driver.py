"""Check drivers: build a checked unit from whatever the caller has.

Four front doors, all funnelling into :func:`run_unit_checks`:

* :func:`check_functions` — live callables (what ``Precompiler.compile``
  uses);
* :func:`check_module` — an imported module or dotted module name;
* :func:`check_path` — a source file on disk (no import executed);
* :func:`check_app` — a registered app name (checks its defining module).

For modules and files the *checked unit* is selected statically: every
top-level function with a ``ctx``/``comm``/``mpi`` parameter seeds the
unit, plus everything those functions call by plain name, transitively —
the same closure the precompiler would compile.  Helpers like ``build()``
factories and ``@repro.app`` registration shims stay out.

:func:`preflight` is the embedded entry point ``Session.run(check=...)``
and chaos campaigns use: check a batch of app names and raise
:class:`~repro.errors.CheckError` on error findings.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import textwrap
from typing import Any, Callable, Iterable, Optional

from repro.check.analyses import ANALYSES, CheckedUnit
from repro.check.diagnostics import CheckResult, Diagnostic, Span, render_text
from repro.check.suppress import SuppressionFilter, find_suppressions
from repro.errors import CheckError, PrecompilerError
from repro.precompiler.analysis import (
    COMM_PARAM_NAMES,
    UnitAnalysis,
    Violation,
    validate_supported,
)


def run_unit_checks(
    functions: dict[str, ast.FunctionDef],
    files: dict[str, str],
    target: str,
    extra_violations: Iterable[Violation] = (),
    sources: Optional[dict[str, str]] = None,
) -> CheckResult:
    """Run the whole battery over already-parsed function ASTs.

    ``files`` maps function name → source path; line numbers in the trees
    must already be absolute file coordinates.  ``extra_violations`` lets
    the precompiler feed violations it found itself (so strict compiles
    and the CLI render identical diagnostics).  ``sources`` maps file
    path → full module source text — it feeds module-constant resolution
    (p2p tag names) and ``# repro: ignore[...]`` suppressions; when not
    given, the driver reads the files from disk.
    """
    if sources is None:
        sources = _read_sources(files.values())
    violations: list[Violation] = list(extra_violations)
    analysis = UnitAnalysis(functions, collect=violations)
    reaching = analysis.reaching
    for name in sorted(reaching):
        validate_supported(
            functions[name],
            reaching,
            analysis.infos[name].comm_names,
            collect=violations,
        )
    constants: dict[str, object] = {}
    for source in sources.values():
        constants.update(_module_constants(source))
    unit = CheckedUnit(
        functions=functions,
        files=files,
        analysis=analysis,
        violations=violations,
        constants=constants,
    )
    diagnostics: list[Diagnostic] = []
    for run in ANALYSES:
        diagnostics.extend(run(unit))
    # One finding per (code, place): analyses overlap at the edges.
    seen: set[tuple] = set()
    unique: list[Diagnostic] = []
    for d in sorted(diagnostics, key=Diagnostic.sort_key):
        key = (d.code, d.span.file, d.span.line, d.span.col)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    kept, suppressed = _apply_suppressions(unique, sources, functions, files)
    return CheckResult(
        target=target,
        diagnostics=tuple(sorted(kept, key=Diagnostic.sort_key)),
        functions=tuple(sorted(functions)),
        suppressed=tuple(suppressed),
    )


def _read_sources(paths: Iterable[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    for path in dict.fromkeys(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                out[path] = fh.read()
        except OSError:
            continue  # synthetic file names ("<string>") have no disk copy
    return out


def _module_constants(source: str) -> dict[str, object]:
    """Top-level ``NAME = <int/str literal>`` bindings (p2p tag names)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    out: dict[str, object] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, (int, str))
        ):
            out[node.targets[0].id] = node.value.value
    return out


def _apply_suppressions(
    diagnostics: list[Diagnostic],
    sources: dict[str, str],
    functions: dict[str, ast.FunctionDef],
    files: dict[str, str],
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Honour ``# repro: ignore[...]`` comments; lint stale ones (RPR090)."""
    suppressions = []
    for file, source in sources.items():
        suppressions.extend(find_suppressions(source, file))
    if not suppressions:
        return diagnostics, []
    filt = SuppressionFilter(suppressions)
    kept, suppressed = filt.split(diagnostics)
    for s, code in filt.unused():
        kept.append(Diagnostic(
            code="RPR090",
            message=(
                f"suppression of {code} matches no finding "
                f"({s.describe()})"
            ),
            span=Span(file=s.file, line=s.line, col=s.col),
            function=_enclosing_function(functions, files, s.file, s.line),
            hint=(
                "remove the stale suppression so future regressions "
                "are not silently waved through"
            ),
        ))
    return kept, suppressed


def _enclosing_function(
    functions: dict[str, ast.FunctionDef],
    files: dict[str, str],
    file: str,
    line: int,
) -> str:
    for name, tree in functions.items():
        if files.get(name) != file:
            continue
        if tree.lineno <= line <= (tree.end_lineno or tree.lineno):
            return name
    return "<module>"


# --------------------------------------------------------------------- #
# loaders
# --------------------------------------------------------------------- #

def _parse_callable(fn: Callable) -> tuple[ast.FunctionDef, str]:
    # ``inspect.getsource`` follows ``__wrapped__`` to the original def,
    # but ``co_firstlineno`` on the wrapper belongs to the *wrapper's*
    # source — mixing them drifts every span.  Unwrap first so source and
    # line numbers describe the same function.
    fn = inspect.unwrap(fn)
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        file = inspect.getsourcefile(fn) or "<unknown>"
        first_line = fn.__code__.co_firstlineno
    except (OSError, TypeError) as exc:
        raise PrecompilerError(f"cannot read source of {fn!r}: {exc}") from exc
    module = ast.parse(source)
    defs = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if len(defs) != 1:
        raise PrecompilerError(
            f"expected exactly one function def in source of {fn!r}"
        )
    tree = defs[0]
    # Shift spans from source-snippet to absolute file coordinates so
    # diagnostics point into the real file.  ``co_firstlineno`` anchors at
    # the first decorator when the function has any.
    anchor = (
        tree.decorator_list[0].lineno if tree.decorator_list else tree.lineno
    )
    ast.increment_lineno(tree, first_line - anchor)
    return tree, file


def check_functions(
    functions: Iterable[Callable],
    target: str = "unit",
) -> CheckResult:
    """Check a compilation unit given as live callables."""
    trees: dict[str, ast.FunctionDef] = {}
    files: dict[str, str] = {}
    for fn in functions:
        tree, file = _parse_callable(fn)
        trees[tree.name] = tree
        files[tree.name] = file
    if not trees:
        raise PrecompilerError("empty compilation unit")
    return run_unit_checks(trees, files, target)


def _select_unit(module_tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """The checked unit of a module: ctx-parameter functions plus their
    transitive plain-name callees among the top-level functions."""
    top: dict[str, ast.FunctionDef] = {
        n.name: n
        for n in module_tree.body
        if isinstance(n, ast.FunctionDef)
    }

    def has_comm_param(tree: ast.FunctionDef) -> bool:
        params = [
            a.arg
            for a in (list(tree.args.posonlyargs) + list(tree.args.args))
        ]
        return any(p in COMM_PARAM_NAMES for p in params)

    selected = {name for name, tree in top.items() if has_comm_param(tree)}
    changed = True
    while changed:
        changed = False
        for name in list(selected):
            for node in ast.walk(top[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in top
                    and node.func.id not in selected
                ):
                    selected.add(node.func.id)
                    changed = True
    return {name: top[name] for name in sorted(selected)}


def check_source(
    source: str, file: str = "<string>", target: Optional[str] = None
) -> CheckResult:
    """Check source text (module coordinates are already absolute)."""
    module_tree = ast.parse(source, filename=file)
    trees = _select_unit(module_tree)
    files = {name: file for name in trees}
    return run_unit_checks(
        trees, files, target or file, sources={file: source}
    )


def check_path(path: str, target: Optional[str] = None) -> CheckResult:
    """Check one source file without importing it."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return check_source(source, file=path, target=target or path)


def check_module(
    module: Any, target: Optional[str] = None
) -> CheckResult:
    """Check an imported module (or dotted module name)."""
    if isinstance(module, str):
        module = importlib.import_module(module)
    file = getattr(module, "__file__", None)
    if not file:
        raise PrecompilerError(
            f"module {module.__name__!r} has no source file"
        )
    return check_path(file, target=target or module.__name__)


def check_app(name: str) -> CheckResult:
    """Check a registered application by name (its defining module)."""
    from repro.api.registry import get_app

    spec = get_app(name)
    if not spec.module:
        raise PrecompilerError(f"app {name!r} has no source module")
    return check_module(spec.module, target=f"app:{name}")


# --------------------------------------------------------------------- #
# embedded entry point
# --------------------------------------------------------------------- #

def preflight(
    apps: Iterable[str],
    level: str = "error",
) -> list[CheckResult]:
    """Check a batch of registered apps before running them.

    ``level="error"`` raises :class:`CheckError` when any app has
    error-severity findings; ``level="warn"`` never raises (callers print
    the results).  Returns every result either way (on raise, they ride on
    the exception's ``results`` attribute).
    """
    if level not in ("warn", "error"):
        raise ValueError(f"preflight level must be 'warn' or 'error', got {level!r}")
    results = [check_app(name) for name in dict.fromkeys(apps)]
    failing = [r for r in results if not r.ok]
    if failing and level == "error":
        bad = ", ".join(r.target for r in failing)
        body = "\n".join(
            render_text(r.errors) for r in failing
        )
        exc = CheckError(
            f"static check failed for {bad}:\n{body}",
            diagnostics=tuple(
                d for r in failing for d in r.errors
            ),
        )
        exc.results = results  # type: ignore[attr-defined]
        raise exc
    return results
