"""Whole-unit call-graph facts for the interprocedural analyses.

:class:`UnitCallGraph` packages three whole-unit computations on top of
the precompiler's :class:`~repro.precompiler.analysis.UnitAnalysis`:

* **collective summaries** — each function's collective-call sequence as a
  summary regular expression (see :mod:`repro.check.cfg`), plus
  :meth:`resolved` / :meth:`resolve_block` which substitute callee
  summaries across call boundaries (recursion resolves to ``?``);

* **rank-divergence taint** — a flow-insensitive, interprocedural
  fixpoint over "may this value differ across ranks?".  Seeds are
  ``ctx.rank`` reads, point-to-point receive results and unlogged entropy
  draws; collective results are *uniform* by the protocol's own guarantee
  and therefore clean.  Taint crosses call boundaries in both directions
  (tainted arguments taint callee parameters; tainted returns taint the
  call site);

* **p2p census** — a whole-unit tally of send/recv tags (module-level
  constants resolved) exposing one-sided protocols: a tag that is only
  ever sent, or only ever received, deadlocks its peer.

The class takes the relevant name alphabets as constructor arguments so
it stays import-cycle-free with :mod:`repro.check.analyses` (which owns
the canonical name sets).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.check.cfg import (
    Summary,
    block_summary,
    function_summary,
    resolve,
)
from repro.precompiler.analysis import UnitAnalysis, attr_root

#: Comm-rooted call names whose *results* may differ across ranks.
_DIVERGENT_COMM_RESULTS = frozenset({
    "recv", "irecv", "sendrecv", "wait", "test", "nondet", "random",
})

#: Comm-rooted attribute reads that differ across ranks (``ctx.rank``).
_DIVERGENT_COMM_ATTRS = frozenset({"rank"})

#: Tag sentinel for a dynamically computed tag expression.
DYNAMIC = "<dynamic>"
#: Tag sentinel for an absent recv tag (matches any send).
WILDCARD = "<any>"

#: Predicate verdicts, ordered by how much we know about the predicate's
#: cross-rank behaviour.  ``UNIFORM`` — every rank computes the same value
#: (collective results, parameters, loop indices); ``TAINTED`` — the value
#: *may* differ across ranks (flows from a divergence source); ``DIVERGENT``
#: — a divergence source (``ctx.rank``, a receive result, an entropy draw)
#: appears syntactically in the predicate itself, so divergence is provable
#: along a feasible path.  DIVERGENT implies TAINTED.
UNIFORM = "uniform"
TAINTED = "tainted"
DIVERGENT = "divergent"

#: AST node types a predicate may consist of and still be considered
#: *stable* (side-effect free, value determined by the names it reads) —
#: the precondition for keying a :class:`~repro.check.cfg.Cond` on it.
_STABLE_PREDICATE_NODES = (
    ast.BoolOp, ast.UnaryOp, ast.BinOp, ast.Compare, ast.Name,
    ast.Attribute, ast.Constant, ast.Tuple,
)


@dataclass(frozen=True)
class P2PSite:
    """One point-to-point call site in the census."""

    kind: str          # "send" or "recv"
    tag: object        # resolved int/str constant, DYNAMIC, or WILDCARD
    function: str
    node: ast.Call


@dataclass(frozen=True)
class UnmatchedP2P:
    """A tag with traffic in only one direction."""

    kind: str          # "send" (no matching recv) or "recv" (no send)
    tag: object
    site: P2PSite


class UnitCallGraph:
    """Interprocedural facts over one checked unit."""

    def __init__(
        self,
        functions: dict[str, ast.FunctionDef],
        analysis: UnitAnalysis,
        constants: dict[str, object],
        collective_names: frozenset[str],
        p2p_names: frozenset[str],
        nondet_prefixes: tuple[str, ...] = (),
        constants_by_function: Optional[dict[str, dict[str, object]]] = None,
    ) -> None:
        self.functions = functions
        self.analysis = analysis
        self.constants = dict(constants)
        #: Per-function constant environments (cross-module units resolve
        #: each function's names against its *own* module's constants).
        #: Falls back to the flat merged table when absent.
        self.constants_by_function = dict(constants_by_function or {})
        self.collective_names = collective_names
        self.p2p_names = p2p_names
        self.nondet_prefixes = tuple(nondet_prefixes)
        self._unit_names = frozenset(functions)
        self.tainted: dict[str, set[str]] = {}
        self.returns_tainted: dict[str, bool] = {}
        # Taint runs first: the summary builder's path-sensitivity hook
        # (pred_key) consults taint facts to decide which branch
        # predicates are rank-uniform.
        self._run_taint_fixpoint()
        #: Raw (unresolved) per-function collective summaries.
        self.summaries: dict[str, Summary] = {
            name: function_summary(
                tree,
                collective_names,
                analysis.infos[name].comm_names,
                self._unit_names,
                pred_key=self._pred_key_for(name),
            )
            for name, tree in functions.items()
        }
        self._resolved_cache: dict[str, Summary] = {}

    # -- summaries ----------------------------------------------------- #

    def resolved(self, name: str) -> Summary:
        """The function's summary with every unit call substituted."""
        if name not in self._resolved_cache:
            self._resolved_cache[name] = resolve(
                self.summaries[name], self.summaries
            )
        return self._resolved_cache[name]

    def resolve_summary(self, summary: Summary) -> Summary:
        return resolve(summary, self.summaries)

    def resolve_block(self, fn_name: str, stmts: list[ast.stmt]) -> Summary:
        """Resolved collective summary of a statement list in ``fn_name``."""
        raw = block_summary(
            stmts,
            self.collective_names,
            self.analysis.infos[fn_name].comm_names,
            self._unit_names,
            pred_key=self._pred_key_for(fn_name),
        )
        return resolve(raw, self.summaries)

    # -- path-sensitive predicate verdicts ----------------------------- #

    def _pred_key_for(self, fn_name: str):
        def pred_key(test: ast.expr) -> Optional[str]:
            return self._predicate_key(fn_name, test)
        return pred_key

    def _predicate_key(self, fn_name: str, test: ast.expr) -> Optional[str]:
        """Canonical key for a rank-uniform, side-effect-free predicate
        (or None when the branch must stay an opaque Alt)."""
        if not _is_stable_predicate(test):
            return None
        if self.expr_tainted(fn_name, test):
            return None
        return ast.dump(test, annotate_fields=False)

    def predicate_verdict(self, fn_name: str, expr: Optional[ast.AST]) -> str:
        """:data:`DIVERGENT` when a divergence source appears syntactically
        in the predicate, :data:`TAINTED` when divergence merely may flow
        into it, :data:`UNIFORM` otherwise."""
        if expr is None:
            return UNIFORM
        if self._has_divergence_source(fn_name, expr):
            return DIVERGENT
        if self.expr_tainted(fn_name, expr):
            return TAINTED
        return UNIFORM

    def _has_divergence_source(self, fn_name: str, expr: ast.AST) -> bool:
        """Does a direct divergence source (``ctx.rank``, a receive result,
        an entropy draw) appear syntactically inside ``expr``?"""
        comm = self._comm_names(fn_name)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Attribute):
                if (
                    attr_root(sub) in comm
                    and sub.attr in _DIVERGENT_COMM_ATTRS
                ):
                    return True
            elif isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Attribute):
                    root = attr_root(func)
                    if root in comm:
                        if func.attr in _DIVERGENT_COMM_RESULTS:
                            return True
                        chain = _attr_chain(func)
                        if "rng" in chain[:-1]:
                            return True
                if self._matches_nondet(_dotted_name(func)):
                    return True
        return False

    # -- rank-divergence taint ----------------------------------------- #

    def _comm_names(self, fn_name: str) -> frozenset[str]:
        return self.analysis.infos[fn_name].comm_names

    def _params_of(self, fn_name: str) -> list[str]:
        args = self.functions[fn_name].args
        return [a.arg for a in (list(args.posonlyargs) + list(args.args))]

    def _matches_nondet(self, dotted: Optional[str]) -> bool:
        if dotted is None:
            return False
        return any(
            dotted == p or dotted.startswith(p + ".")
            for p in self.nondet_prefixes
        )

    def expr_tainted(self, fn_name: str, node: Optional[ast.AST]) -> bool:
        """May this expression's value differ across ranks?"""
        if node is None:
            return False
        tainted = self.tainted.get(fn_name, set())
        comm = self._comm_names(fn_name)

        def visit(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in tainted
            if isinstance(expr, ast.Attribute):
                root = attr_root(expr)
                if root in comm:
                    # ctx.rank differs per rank; ctx.size / ctx.params /
                    # ctx.rng-the-object are rank-uniform handles.
                    return expr.attr in _DIVERGENT_COMM_ATTRS
                if root is not None:
                    return root in tainted
                return visit(expr.value)
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Attribute):
                    root = attr_root(func)
                    if root in comm:
                        if func.attr in self.collective_names:
                            return False  # collective results are uniform
                        if func.attr in _DIVERGENT_COMM_RESULTS:
                            return True
                        chain = _attr_chain(func)
                        if "rng" in chain[:-1]:
                            return True  # ctx.rng draws are per rank
                        return any(visit(a) for a in expr.args) or any(
                            visit(k.value) for k in expr.keywords
                        )
                if isinstance(func, ast.Name) and func.id in self.functions:
                    if self.returns_tainted.get(func.id, False):
                        return True
                    return False  # callee's return is rank-uniform
                dotted = _dotted_name(func)
                if self._matches_nondet(dotted):
                    return True
                # Unknown call: deterministic function of its inputs.
                parts = [func] if not isinstance(func, ast.Name) else []
                parts += list(expr.args)
                parts += [k.value for k in expr.keywords]
                return any(visit(p) for p in parts)
            if isinstance(expr, ast.Subscript):
                return visit(expr.value) or visit(expr.slice)
            if isinstance(expr, (ast.Lambda, ast.FunctionDef)):
                return False  # separate scope
            return any(
                visit(child)
                for child in ast.iter_child_nodes(expr)
                if not isinstance(child, (ast.expr_context, ast.operator,
                                          ast.boolop, ast.cmpop,
                                          ast.unaryop))
            )

        return visit(node)

    def _intra_pass(self, fn_name: str) -> bool:
        """One flow-insensitive propagation pass; True when taint grew."""
        tree = self.functions[fn_name]
        tainted = self.tainted[fn_name]
        changed = False

        def mark(name: Optional[str]) -> None:
            nonlocal changed
            if name and name not in tainted:
                tainted.add(name)
                changed = True

        def target_root(target: ast.expr) -> Optional[str]:
            if isinstance(target, ast.Name):
                return target.id
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                return attr_root(
                    target.value if isinstance(target, ast.Subscript)
                    else target
                )
            return None

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if self.expr_tainted(fn_name, node.value):
                    for t in node.targets:
                        if isinstance(t, (ast.Tuple, ast.List)):
                            for el in t.elts:
                                mark(target_root(el))
                        else:
                            mark(target_root(t))
            elif isinstance(node, ast.AugAssign):
                if self.expr_tainted(fn_name, node.value):
                    mark(target_root(node.target))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if self.expr_tainted(fn_name, node.value):
                    mark(target_root(node.target))
            elif isinstance(node, ast.For):
                if self.expr_tainted(fn_name, node.iter):
                    for t in ast.walk(node.target):
                        if isinstance(t, ast.Name):
                            mark(t.id)
            elif isinstance(node, ast.NamedExpr):
                if self.expr_tainted(fn_name, node.value):
                    mark(node.target.id)
        return changed

    def _propagate_calls(self) -> bool:
        """Tainted arguments taint callee parameters (context-insensitive).

        Walks the call edges the precompiler's :class:`UnitAnalysis`
        already recorded (``FunctionInfo.call_sites``)."""
        changed = False
        for caller in self.functions:
            for callee, sites in \
                    self.analysis.infos[caller].call_sites.items():
                params = self._params_of(callee)
                callee_tainted = self.tainted[callee]
                for node in sites:
                    for i, arg in enumerate(node.args):
                        if i < len(params) and self.expr_tainted(caller, arg):
                            if params[i] not in callee_tainted:
                                callee_tainted.add(params[i])
                                changed = True
                    for kw in node.keywords:
                        if (
                            kw.arg
                            and kw.arg in params
                            and self.expr_tainted(caller, kw.value)
                            and kw.arg not in callee_tainted
                        ):
                            callee_tainted.add(kw.arg)
                            changed = True
        return changed

    def _recompute_returns(self) -> bool:
        changed = False
        for name, tree in self.functions.items():
            flag = any(
                isinstance(n, ast.Return)
                and n.value is not None
                and self.expr_tainted(name, n.value)
                for n in ast.walk(tree)
            )
            if flag != self.returns_tainted.get(name, False):
                self.returns_tainted[name] = flag
                changed = True
        return changed

    def _run_taint_fixpoint(self) -> None:
        for name in self.functions:
            self.tainted[name] = set()
            self.returns_tainted[name] = False
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                if self._intra_pass(name):
                    changed = True
            if self._propagate_calls():
                changed = True
            if self._recompute_returns():
                changed = True

    # -- p2p census ----------------------------------------------------- #

    def _tag_of(
        self, fn_name: str, expr: Optional[ast.expr], default: object
    ) -> object:
        if expr is None:
            return default
        if isinstance(expr, ast.Constant) and isinstance(
            expr.value, (int, str)
        ):
            return expr.value
        if isinstance(expr, ast.Name):
            env = self.constants_by_function.get(fn_name, self.constants)
            if expr.id in env:
                value = env[expr.id]
                if isinstance(value, (int, str)):
                    return value
        return DYNAMIC

    def _p2p_sites(self) -> list[P2PSite]:
        sites: list[P2PSite] = []
        for name, tree in self.functions.items():
            comm = self._comm_names(name)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in self.p2p_names
                    and attr_root(func) in comm
                ):
                    continue
                kws = {k.arg: k.value for k in node.keywords if k.arg}

                def pos(i: int) -> Optional[ast.expr]:
                    return node.args[i] if len(node.args) > i else None

                if func.attr in ("send", "isend"):
                    # send(payload, dest, tag=0)
                    tag = self._tag_of(name, kws.get("tag") or pos(2), 0)
                    sites.append(P2PSite("send", tag, name, node))
                elif func.attr in ("recv", "irecv"):
                    # recv(source=ANY_SOURCE, tag=ANY_TAG)
                    tag = self._tag_of(
                        name, kws.get("tag") or pos(1), WILDCARD
                    )
                    sites.append(P2PSite("recv", tag, name, node))
                elif func.attr == "sendrecv":
                    # sendrecv(payload, dest, recv_source,
                    #          send_tag=0, recv_tag=None)
                    stag = self._tag_of(
                        name, kws.get("send_tag") or pos(3), 0
                    )
                    rtag = self._tag_of(
                        name, kws.get("recv_tag") or pos(4), WILDCARD
                    )
                    sites.append(P2PSite("send", stag, name, node))
                    sites.append(P2PSite("recv", rtag, name, node))
        return sites

    def unmatched_p2p(self) -> list[UnmatchedP2P]:
        """Tags with traffic in only one direction.

        A ``recv`` with no tag (or a dynamic tag) matches every send; a
        dynamic send tag matches every recv — both directions degrade
        soundly to "no report" rather than guessing.
        """
        sites = self._p2p_sites()
        sends = [s for s in sites if s.kind == "send"]
        recvs = [s for s in sites if s.kind == "recv"]
        recv_tags = {s.tag for s in recvs}
        send_tags = {s.tag for s in sends}
        recv_matches_all = bool(recv_tags & {WILDCARD, DYNAMIC})
        send_matches_all = DYNAMIC in send_tags

        out: list[UnmatchedP2P] = []
        reported: set[tuple[str, object]] = set()
        for site in sends:
            if site.tag is DYNAMIC or recv_matches_all:
                continue
            if site.tag in recv_tags:
                continue
            key = ("send", site.tag)
            if key not in reported:
                reported.add(key)
                out.append(UnmatchedP2P("send", site.tag, site))
        for site in recvs:
            if site.tag in (DYNAMIC, WILDCARD) or send_matches_all:
                continue
            if site.tag in send_tags:
                continue
            key = ("recv", site.tag)
            if key not in reported:
                reported.add(key)
                out.append(UnmatchedP2P("recv", site.tag, site))
        return out


def _is_stable_predicate(test: ast.expr) -> bool:
    """Side-effect free and value-determined-by-names-read: safe to use as
    a correlation key.  Calls and subscripts are excluded (a call may
    return different values on repeated evaluation)."""
    for sub in ast.walk(test):
        if isinstance(sub, (ast.expr_context, ast.operator, ast.boolop,
                            ast.cmpop, ast.unaryop)):
            continue
        if not isinstance(sub, _STABLE_PREDICATE_NODES):
            return False
    return True


def _attr_chain(node: ast.expr) -> list[str]:
    """``ctx.rng.random`` → ``["ctx", "rng", "random"]`` (empty when the
    chain is not rooted at a plain name)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return []
    parts.append(node.id)
    return list(reversed(parts))


def _dotted_name(func: ast.expr) -> Optional[str]:
    chain = _attr_chain(func)
    return ".".join(chain) if chain else None
