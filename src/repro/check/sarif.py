"""SARIF 2.1.0 export for check results.

CI uploads the SARIF payload from ``repro-check --format sarif`` so code
hosts can render findings as inline annotations.  The export is a minimal
but valid static-analysis log: one run, one rule per registered ``RPR0xx``
code, one result per (non-suppressed) diagnostic.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.check.diagnostics import CODES, CheckResult, Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Severity -> SARIF ``level``.  Advice maps to ``note`` (informational).
_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.ADVICE: "note",
}


def _rules() -> list[dict]:
    return [
        {
            "id": info.code,
            "shortDescription": {"text": info.title},
            "properties": {"analysis": info.analysis},
            "defaultConfiguration": {"level": _LEVEL[info.severity]},
        }
        for info in CODES.values()
    ]


def _result(diag: Diagnostic) -> dict:
    region: dict = {
        # SARIF lines/columns are 1-based; spans store 0-based columns.
        "startLine": max(diag.span.line, 1),
        "startColumn": diag.span.col + 1,
    }
    if diag.span.end_line is not None:
        region["endLine"] = max(diag.span.end_line, 1)
    if diag.span.end_col is not None:
        region["endColumn"] = diag.span.end_col + 1
    message = diag.message
    if diag.hint:
        message += f" (hint: {diag.hint})"
    return {
        "ruleId": diag.code,
        "level": _LEVEL[diag.severity],
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.span.file},
                    "region": region,
                }
            }
        ],
    }


def sarif_payload(results: Iterable[CheckResult]) -> dict:
    """One SARIF run covering every diagnostic in ``results``."""
    diagnostics: list[Diagnostic] = []
    for result in results:
        diagnostics.extend(result.diagnostics)
    diagnostics.sort(key=Diagnostic.sort_key)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri":
                            "https://github.com/repro/repro#repro-check",
                        "rules": _rules(),
                    }
                },
                "results": [_result(d) for d in diagnostics],
            }
        ],
    }


def render_sarif(results: Iterable[CheckResult], indent: int = 2) -> str:
    return json.dumps(sarif_payload(results), indent=indent)
