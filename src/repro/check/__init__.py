"""``repro.check`` — whole-program static verification for checkpointable apps.

The paper's precompiler (Section 5.1) already performs a static analysis —
checkpoint reachability, VDS membership, supported-subset validation — but
its only output channel used to be a hard ``UnsupportedConstructError``.
This package turns static verification into a first-class subsystem:
structured :class:`Diagnostic` records with stable ``RPR0xx`` codes,
``file:line:col`` spans, severities and fix hints, produced by a battery
of analyses over any program that enters the system (a registered app, a
precompiler unit, a module, a file).

Analyses (see :mod:`repro.check.analyses`):

* **supported-subset** (``RPR001``–``RPR008``) — the precompiler's
  transformable-subset rules, reported exhaustively with spans;
* **collective-matching** (``RPR010``/``RPR011``) — per-function
  collective-call-sequence check (the paper requires all processes to
  execute the same sequence of collectives), refined interprocedurally:
  branch arms whose *resolved* summaries match do not fire;
* **collective-sequencing** (``RPR012``/``RPR013``) — interprocedural
  sequencing hazards: rank-divergent loops executing collectives, and
  point-to-point tags with traffic in only one direction (this replaced
  the v1 p2p carve-out);
* **unlogged-nondeterminism** (``RPR020``/``RPR021``) — nondeterministic
  stdlib calls the protocol's result log cannot replay;
* **VDS-escape** (``RPR030``–``RPR034``) — state that escapes the
  checkpointed variable-descriptor set: module-global mutation, mutable
  default arguments, closure captures, plus the alias-aware routes
  (mutation through a local alias, locals parked in module state by a
  callee);
* **checkpoint-placement** (``RPR040``/``RPR041``) — communication loops
  with no reachable ``potential_checkpoint`` (unbounded re-execution on
  recovery);
* **suppressions** (``RPR090``) — ``# repro: ignore[RPR0xx]`` comments
  that silence nothing.

Entry points (:mod:`repro.check.driver`): :func:`check_functions`,
:func:`check_module`, :func:`check_path`, :func:`check_app`, and
:func:`preflight` (what ``Session.run(check=...)`` and chaos campaigns
call).  The ``repro-check`` console script / ``python -m repro.check``
lints from the command line; ``--fix`` proposes (and ``--fix --write``
applies) span-anchored rewrites for the mechanical findings (see
:mod:`repro.check.fixes`).
"""

from repro.check.diagnostics import (
    CODES,
    SCHEMA,
    CheckResult,
    CodeInfo,
    Diagnostic,
    Severity,
    Span,
    render_json,
    render_text,
)
from repro.check.driver import (
    check_app,
    check_functions,
    check_module,
    check_path,
    check_source,
    preflight,
    run_unit_checks,
)
from repro.check.fixes import FixProposal, apply_fixes, propose_fixes
from repro.check.suppress import Suppression, find_suppressions

__all__ = [
    "CODES",
    "SCHEMA",
    "CheckResult",
    "CodeInfo",
    "Diagnostic",
    "FixProposal",
    "Severity",
    "Span",
    "Suppression",
    "apply_fixes",
    "check_app",
    "check_functions",
    "check_module",
    "check_path",
    "check_source",
    "find_suppressions",
    "preflight",
    "propose_fixes",
    "render_json",
    "render_text",
    "run_unit_checks",
]
