"""``repro.check`` — whole-program static verification for checkpointable apps.

The paper's precompiler (Section 5.1) already performs a static analysis —
checkpoint reachability, VDS membership, supported-subset validation — but
its only output channel used to be a hard ``UnsupportedConstructError``.
This package turns static verification into a first-class subsystem:
structured :class:`Diagnostic` records with stable ``RPR0xx`` codes,
``file:line:col`` spans, severities and fix hints, produced by a battery
of analyses over any program that enters the system (a registered app, a
precompiler unit, a module, a file).

Analyses (see :mod:`repro.check.analyses`):

* **supported-subset** (``RPR001``–``RPR008``) — the precompiler's
  transformable-subset rules, reported exhaustively with spans;
* **collective-matching** (``RPR010``/``RPR011``) — per-function
  collective-call-sequence check (the paper requires all processes to
  execute the same sequence of collectives), refined interprocedurally
  and *path-sensitively*: branch arms whose resolved summaries match do
  not fire, rank-uniform predicates are exempt, and repeated branches on
  the same uniform predicate correlate (their summaries merge per path);
* **collective-sequencing** (``RPR012``–``RPR014``) — interprocedural
  sequencing hazards: rank-divergent loops executing collectives, and
  point-to-point tags with traffic in only one direction (this replaced
  the v1 p2p carve-out); ``RPR014`` upgrades the finding when the
  guarding predicate is *provably* rank-divergent (it reads ``ctx.rank``
  or received data directly);
* **unlogged-nondeterminism** (``RPR020``/``RPR021``) — nondeterministic
  stdlib calls the protocol's result log cannot replay;
* **VDS-escape** (``RPR030``–``RPR034``) — state that escapes the
  checkpointed variable-descriptor set: module-global mutation, mutable
  default arguments, closure captures, plus the alias-aware routes
  (mutation through a local alias, locals parked in module state by a
  callee);
* **checkpoint-placement** (``RPR040``/``RPR041``) — communication loops
  with no reachable ``potential_checkpoint`` (unbounded re-execution on
  recovery);
* **cross-module** (``RPR050``/``RPR051``) — sibling-module helper
  references the driver's import-graph slicer could not join into the
  unit (the resolvable ones *do* join: ``app.py`` + ``halo.py`` verifies
  exactly like its single-file merge);
* **suppressions** (``RPR090``) — ``# repro: ignore[RPR0xx]`` comments
  that silence nothing.

Entry points (:mod:`repro.check.driver`): :func:`check_functions`,
:func:`check_module`, :func:`check_path`, :func:`check_app`, and
:func:`preflight` (what ``Session.run(check=...)`` and chaos campaigns
call).  The ``repro-check`` console script / ``python -m repro.check``
lints from the command line; ``--fix`` proposes (and ``--fix --write``
applies) span-anchored rewrites for the mechanical findings — including
the escape family, which rewrites into ``checkpointable_state(...)``
registrations — and prunes suppressions the fixes made stale (see
:mod:`repro.check.fixes`).  ``--format sarif`` emits SARIF 2.1.0
(:mod:`repro.check.sarif`); ``--cache-dir`` enables the content-hash
incremental cache (:mod:`repro.check.cache`).
"""

from repro.check.cache import ANALYSIS_VERSION, CheckCache
from repro.check.diagnostics import (
    CODES,
    SCHEMA,
    CheckResult,
    CodeInfo,
    Diagnostic,
    Severity,
    Span,
    render_json,
    render_text,
)
from repro.check.driver import (
    check_app,
    check_functions,
    check_module,
    check_path,
    check_source,
    import_closure,
    preflight,
    run_unit_checks,
)
from repro.check.fixes import (
    FixProposal,
    apply_fixes,
    propose_fixes,
    prune_stale_suppressions,
)
from repro.check.sarif import render_sarif, sarif_payload
from repro.check.suppress import Suppression, find_suppressions

__all__ = [
    "ANALYSIS_VERSION",
    "CODES",
    "SCHEMA",
    "CheckCache",
    "CheckResult",
    "CodeInfo",
    "Diagnostic",
    "FixProposal",
    "Severity",
    "Span",
    "Suppression",
    "apply_fixes",
    "check_app",
    "check_functions",
    "check_module",
    "check_path",
    "check_source",
    "find_suppressions",
    "import_closure",
    "preflight",
    "propose_fixes",
    "prune_stale_suppressions",
    "render_json",
    "render_sarif",
    "render_text",
    "run_unit_checks",
    "sarif_payload",
]
