"""``repro.check`` — whole-program static verification for checkpointable apps.

The paper's precompiler (Section 5.1) already performs a static analysis —
checkpoint reachability, VDS membership, supported-subset validation — but
its only output channel used to be a hard ``UnsupportedConstructError``.
This package turns static verification into a first-class subsystem:
structured :class:`Diagnostic` records with stable ``RPR0xx`` codes,
``file:line:col`` spans, severities and fix hints, produced by a battery
of analyses over any program that enters the system (a registered app, a
precompiler unit, a module, a file).

Analyses (see :mod:`repro.check.analyses`):

* **supported-subset** (``RPR001``–``RPR008``) — the precompiler's
  transformable-subset rules, reported exhaustively with spans;
* **collective-matching** (``RPR010``/``RPR011``) — conservative
  per-function collective-call-sequence check (the paper requires all
  processes to execute the same sequence of collectives);
* **unlogged-nondeterminism** (``RPR020``/``RPR021``) — nondeterministic
  stdlib calls the protocol's result log cannot replay;
* **VDS-escape** (``RPR030``–``RPR032``) — state that escapes the
  checkpointed variable-descriptor set (module-global mutation, mutable
  default arguments, closure captures);
* **checkpoint-placement** (``RPR040``/``RPR041``) — communication loops
  with no reachable ``potential_checkpoint`` (unbounded re-execution on
  recovery).

Entry points (:mod:`repro.check.driver`): :func:`check_functions`,
:func:`check_module`, :func:`check_path`, :func:`check_app`, and
:func:`preflight` (what ``Session.run(check=...)`` and chaos campaigns
call).  The ``repro-check`` console script / ``python -m repro.check``
lints from the command line.
"""

from repro.check.diagnostics import (
    CODES,
    CheckResult,
    CodeInfo,
    Diagnostic,
    Severity,
    Span,
    render_json,
    render_text,
)
from repro.check.driver import (
    check_app,
    check_functions,
    check_module,
    check_path,
    check_source,
    preflight,
    run_unit_checks,
)

__all__ = [
    "CODES",
    "CheckResult",
    "CodeInfo",
    "Diagnostic",
    "Severity",
    "Span",
    "check_app",
    "check_functions",
    "check_module",
    "check_path",
    "check_source",
    "preflight",
    "render_json",
    "render_text",
    "run_unit_checks",
]
