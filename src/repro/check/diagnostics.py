"""The diagnostic model: codes, severities, spans, renderers.

Every finding is a :class:`Diagnostic` with a stable ``RPR0xx`` code drawn
from the :data:`CODES` registry.  Codes are append-only: once published, a
code keeps its meaning forever (tools and CI fixtures key off them), and
retired codes are never reused.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional


#: Version tag for every machine-readable payload this package emits.
#: ``repro.check/2`` added suppression records, fix proposals, and the
#: interprocedural/alias code families (RPR012/013/033/034/090);
#: ``repro.check/3`` adds the path-sensitive divergence code (RPR014) and
#: the cross-module family (RPR050/051).
SCHEMA = "repro.check/3"


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe programs the protocol cannot recover
    correctly (or the precompiler cannot transform); ``WARNING`` findings
    are probable-but-not-certain hazards; ``ADVICE`` findings are
    recovery-cost observations.
    """

    ERROR = "error"
    WARNING = "warning"
    ADVICE = "advice"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "advice": 2}[self.value]


@dataclass(frozen=True)
class Span:
    """Where a diagnostic points: ``file:line:col`` (1-based column in
    rendered output; stored 0-based as ast gives it)."""

    file: str = "<unknown>"
    line: int = 0
    col: int = 0
    end_line: Optional[int] = None
    end_col: Optional[int] = None

    @classmethod
    def of(cls, node, file: str = "<unknown>") -> "Span":
        """Span of an AST node (line numbers as carried by the node, which
        the loaders shift to absolute file coordinates)."""
        return cls(
            file=file,
            line=getattr(node, "lineno", 0) or 0,
            col=getattr(node, "col_offset", 0) or 0,
            end_line=getattr(node, "end_lineno", None),
            end_col=getattr(node, "end_col_offset", None),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            file=data.get("file", "<unknown>"),
            line=data.get("line", 0),
            col=data.get("col", 0),
            end_line=data.get("end_line"),
            end_col=data.get("end_col"),
        )

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col + 1}"


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    severity: Severity
    analysis: str
    title: str


def _codes(entries: Iterable[CodeInfo]) -> dict[str, CodeInfo]:
    out: dict[str, CodeInfo] = {}
    for entry in entries:
        if entry.code in out:
            raise ValueError(f"duplicate diagnostic code {entry.code}")
        out[entry.code] = entry
    return out


#: The stable code registry.  ``RPR00x`` = supported subset, ``RPR01x`` =
#: collective matching, ``RPR02x`` = unlogged nondeterminism, ``RPR03x`` =
#: VDS escape, ``RPR04x`` = checkpoint placement.
CODES: dict[str, CodeInfo] = _codes([
    CodeInfo("RPR001", Severity.ERROR, "supported-subset",
             "checkpointable call inside try"),
    CodeInfo("RPR002", Severity.ERROR, "supported-subset",
             "checkpointable call inside with"),
    CodeInfo("RPR003", Severity.ERROR, "supported-subset",
             "checkpointable call inside nested scope"),
    CodeInfo("RPR004", Severity.ERROR, "supported-subset",
             "checkpointable call in short-circuit position"),
    CodeInfo("RPR005", Severity.ERROR, "supported-subset",
             "async construct in checkpoint-reaching function"),
    CodeInfo("RPR006", Severity.ERROR, "supported-subset",
             "generator in checkpoint-reaching function"),
    CodeInfo("RPR007", Severity.ERROR, "supported-subset",
             "global/nonlocal binding in unit function"),
    CodeInfo("RPR008", Severity.ERROR, "supported-subset",
             "loop-else containing checkpointable call"),
    CodeInfo("RPR010", Severity.ERROR, "collective-matching",
             "conditional collective sequence"),
    CodeInfo("RPR011", Severity.WARNING, "collective-matching",
             "early exit may skip later collectives"),
    CodeInfo("RPR012", Severity.ERROR, "collective-sequencing",
             "rank-divergent loop executes collectives"),
    CodeInfo("RPR013", Severity.WARNING, "collective-sequencing",
             "unmatched point-to-point protocol"),
    CodeInfo("RPR014", Severity.ERROR, "collective-sequencing",
             "rank-divergent predicate guards collectives"),
    CodeInfo("RPR020", Severity.ERROR, "unlogged-nondeterminism",
             "unlogged nondeterministic call"),
    CodeInfo("RPR021", Severity.WARNING, "unlogged-nondeterminism",
             "host wall-clock read"),
    CodeInfo("RPR030", Severity.ERROR, "vds-escape",
             "module-global state mutation"),
    CodeInfo("RPR031", Severity.ERROR, "vds-escape",
             "mutable default argument"),
    CodeInfo("RPR032", Severity.WARNING, "vds-escape",
             "closure captures checkpointed locals"),
    CodeInfo("RPR033", Severity.ERROR, "vds-escape",
             "aliased mutation of non-local state"),
    CodeInfo("RPR034", Severity.WARNING, "vds-escape",
             "checkpointed value escapes through a callee"),
    CodeInfo("RPR040", Severity.ADVICE, "checkpoint-placement",
             "communication loop without reachable checkpoint"),
    CodeInfo("RPR041", Severity.ADVICE, "checkpoint-placement",
             "communicating function in unit with no checkpoint site"),
    CodeInfo("RPR050", Severity.WARNING, "cross-module",
             "unresolvable cross-module helper"),
    CodeInfo("RPR051", Severity.WARNING, "cross-module",
             "star import hides cross-module helpers"),
    CodeInfo("RPR090", Severity.WARNING, "suppressions",
             "unused suppression"),
])


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, span, message, fix hint."""

    code: str
    message: str
    span: Span = field(default_factory=Span)
    function: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return CODES[self.code].severity

    @property
    def analysis(self) -> str:
        return CODES[self.code].analysis

    def sort_key(self) -> tuple:
        return (self.span.file, self.span.line, self.span.col,
                self.severity.rank, self.code)

    def render(self) -> str:
        where = self.span.render()
        fn = f" [{self.function}]" if self.function else ""
        lines = [
            f"{where}: {self.severity.value}[{self.code}]{fn}: {self.message}"
        ]
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out = asdict(self)
        out["severity"] = self.severity.value
        out["analysis"] = self.analysis
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            code=data["code"],
            message=data.get("message", ""),
            span=Span.from_dict(data.get("span", {})),
            function=data.get("function", ""),
            hint=data.get("hint", ""),
        )


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """The CLI's text rendering: one (or two, with hint) lines per finding,
    sorted by file/line/severity."""
    return "\n".join(
        d.render() for d in sorted(diagnostics, key=Diagnostic.sort_key)
    )


def render_json(diagnostics: Iterable[Diagnostic], indent: int = 2) -> str:
    return json.dumps(
        [d.to_dict() for d in sorted(diagnostics, key=Diagnostic.sort_key)],
        indent=indent,
    )


@dataclass
class CheckResult:
    """What a check run produced over one target."""

    target: str
    diagnostics: tuple[Diagnostic, ...] = ()
    #: Functions that were actually analysed (the checked unit).
    functions: tuple[str, ...] = ()
    #: Findings silenced by ``# repro: ignore[...]`` comments.  They do not
    #: count toward ``ok`` but stay on the record (and in the JSON payload)
    #: so downstream consumers can audit what was waved through.
    suppressed: tuple[Diagnostic, ...] = ()

    def _by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self._by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self._by_severity(Severity.WARNING)

    @property
    def advice(self) -> tuple[Diagnostic, ...]:
        return self._by_severity(Severity.ADVICE)

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/advice do not fail a check)."""
        return not self.errors

    def render(self) -> str:
        if not self.diagnostics:
            note = ""
            if self.suppressed:
                note = f", {len(self.suppressed)} finding(s) suppressed"
            return (
                f"{self.target}: ok "
                f"({len(self.functions)} function(s) checked{note})"
            )
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.advice)} advice"
        )
        if self.suppressed:
            counts += f", {len(self.suppressed)} suppressed"
        return f"{self.target}: {counts}\n{render_text(self.diagnostics)}"

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "target": self.target,
            "ok": self.ok,
            "functions": list(self.functions),
            "diagnostics": [
                d.to_dict()
                for d in sorted(self.diagnostics, key=Diagnostic.sort_key)
            ],
            "suppressed": [
                d.to_dict()
                for d in sorted(self.suppressed, key=Diagnostic.sort_key)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        """Rehydrate a result from its :meth:`to_dict` payload (the
        incremental cache stores results in exactly this shape)."""
        return cls(
            target=data.get("target", "<unknown>"),
            diagnostics=tuple(
                Diagnostic.from_dict(d) for d in data.get("diagnostics", ())
            ),
            functions=tuple(data.get("functions", ())),
            suppressed=tuple(
                Diagnostic.from_dict(d) for d in data.get("suppressed", ())
            ),
        )
