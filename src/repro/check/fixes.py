"""Span-anchored auto-fixes for mechanical findings (``repro-check --fix``).

Three diagnostic families have purely mechanical repairs:

* ``RPR020`` — stdlib entropy draws.  ``random.<method>(...)`` rewrites to
  ``ctx.rng.<method>(...)`` (the per-rank checkpointed generator) when the
  method exists on :class:`random.Random`; everything else
  (``os.urandom``, ``uuid.uuid4``, ``np.random.*``) wraps in
  ``ctx.nondet(lambda: ...)`` so the protocol logs and replays the value.
* ``RPR021`` — wall-clock reads.  Zero-argument ``time.*`` clocks become
  ``ctx.now()`` (virtual time); clocks with arguments and ``datetime``
  reads wrap in ``ctx.nondet(...)``.
* ``RPR031`` — mutable default arguments.  The default becomes ``None``
  and an ``if <arg> is None: <arg> = <orig>`` guard is inserted at the
  top of the body (after the docstring).
* ``RPR030``/``RPR033``/``RPR034`` — module-state escapes.  The offending
  global is registered with the globals registry: a
  ``checkpointable_state("NAME")`` declaration is inserted right after the
  global's top-level assignment (plus the ``repro.statesave`` import,
  once), which both manages the state at runtime and statically exempts
  the name from the escape analyses.

Every fix is a :class:`FixProposal` carrying absolute character offsets
into the original source, so applying is a pure text splice:
:func:`apply_fixes` sorts descending, drops overlaps, and never reflows
unrelated code.  Fixing is idempotent: the rewritten forms are exactly
the shapes the analyses treat as logged/managed, so a second pass
proposes nothing.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass
from typing import Optional

from repro.check.suppress import Suppression, find_suppressions, prune_stale
from repro.precompiler.analysis import (
    attr_root,
    comm_roots,
    module_registered_globals,
)

#: ``random.<method>`` calls that can move onto the per-rank generator.
RNG_METHODS = frozenset({
    "random", "randint", "uniform", "gauss", "normalvariate", "choice",
    "choices", "shuffle", "sample", "randrange", "betavariate",
    "expovariate", "lognormvariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "triangular", "getrandbits", "randbytes",
})

#: Zero-argument ``time`` clocks with a virtual-time equivalent.
NOW_CLOCKS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.time_ns", "time.monotonic_ns", "time.perf_counter_ns",
})


@dataclass(frozen=True)
class FixProposal:
    """One span-anchored rewrite of the original source text."""

    code: str          # the diagnostic code this repairs
    file: str
    line: int
    col: int
    title: str
    start: int         # absolute character offsets into the source
    end: int
    replacement: str

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "title": self.title,
            "start": self.start,
            "end": self.end,
            "replacement": self.replacement,
        }


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span_offsets(
    offsets: list[int], node: ast.AST
) -> Optional[tuple[int, int]]:
    line = getattr(node, "lineno", None)
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if line is None or end_line is None or end_col is None:
        return None
    if end_line > len(offsets) - 1:
        return None
    return (
        offsets[line - 1] + node.col_offset,
        offsets[end_line - 1] + end_col,
    )


def _dotted(func: ast.expr) -> Optional[str]:
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _FixPlanner:
    def __init__(self, source: str, file: str) -> None:
        self.source = source
        self.file = file
        self.offsets = _line_offsets(source)
        self.tree = ast.parse(source, filename=file)
        self.functions = [
            n for n in ast.walk(self.tree) if isinstance(n, ast.FunctionDef)
        ]
        # Escape-fix bookkeeping: already-registered globals, the globals'
        # defining top-level statements, and what this planning pass has
        # already decided to insert (dedupe across findings).
        self.registered = module_registered_globals(self.tree)
        self.top_assigns: dict[str, ast.stmt] = {}
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.top_assigns[t.id] = node
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.value is not None
            ):
                self.top_assigns[node.target.id] = node
        self.planned_registrations: set[str] = set()
        self.import_planned = False
        self.has_state_import = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "repro.statesave"
            and any(a.name == "checkpointable_state" for a in node.names)
            for node in self.tree.body
        )

    def text_of(self, node: ast.AST) -> Optional[str]:
        span = _span_offsets(self.offsets, node)
        if span is None:
            return None
        return self.source[span[0]:span[1]]

    def enclosing_function(
        self, line: int
    ) -> Optional[ast.FunctionDef]:
        best: Optional[ast.FunctionDef] = None
        for fn in self.functions:
            end = fn.end_lineno or fn.lineno
            if fn.lineno <= line <= end:
                if best is None or fn.lineno > best.lineno:
                    best = fn  # innermost wins
        return best

    def comm_root(self, line: int) -> Optional[str]:
        fn = self.enclosing_function(line)
        if fn is None:
            return None
        roots = comm_roots(fn)
        if not roots:
            return None
        if "ctx" in roots:
            return "ctx"
        return sorted(roots)[0]

    def find_call(self, line: int, col: int) -> Optional[ast.Call]:
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Call)
                and node.lineno == line
                and node.col_offset == col
            ):
                return node
        return None

    # -- individual fixers --------------------------------------------- #

    def fix_entropy(self, line: int, col: int) -> Optional[FixProposal]:
        call = self.find_call(line, col)
        root = self.comm_root(line)
        if call is None or root is None:
            return None
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in RNG_METHODS
            and isinstance(call.func, ast.Attribute)
        ):
            # random.<m>(...) -> ctx.rng.<m>(...): splice just the module
            # name so the arguments keep their exact text.
            name_node = call.func.value
            span = _span_offsets(self.offsets, name_node)
            if span is None:
                return None
            return FixProposal(
                code="RPR020", file=self.file, line=line, col=col,
                title=f"{dotted}() -> {root}.rng.{parts[1]}()",
                start=span[0], end=span[1], replacement=f"{root}.rng",
            )
        return self._wrap_nondet(call, "RPR020", root, dotted)

    def fix_clock(self, line: int, col: int) -> Optional[FixProposal]:
        call = self.find_call(line, col)
        root = self.comm_root(line)
        if call is None or root is None:
            return None
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        if dotted in NOW_CLOCKS and not call.args and not call.keywords:
            span = _span_offsets(self.offsets, call)
            if span is None:
                return None
            return FixProposal(
                code="RPR021", file=self.file, line=line, col=col,
                title=f"{dotted}() -> {root}.now()",
                start=span[0], end=span[1], replacement=f"{root}.now()",
            )
        return self._wrap_nondet(call, "RPR021", root, dotted)

    def _wrap_nondet(
        self, call: ast.Call, code: str, root: str, dotted: str
    ) -> Optional[FixProposal]:
        span = _span_offsets(self.offsets, call)
        original = self.text_of(call)
        if span is None or original is None or "\n" in original:
            return None  # multi-line calls: leave to the human
        return FixProposal(
            code=code, file=self.file, line=call.lineno,
            col=call.col_offset,
            title=f"log {dotted}() via {root}.nondet(...)",
            start=span[0], end=span[1],
            replacement=f"{root}.nondet(lambda: {original})",
        )

    def fix_mutable_default(
        self, line: int, col: int
    ) -> list[FixProposal]:
        """Two splices: default -> None, plus a rebuild guard in the body."""
        for fn in self.functions:
            args = fn.args
            pos = list(args.posonlyargs) + list(args.args)
            pairs = list(zip(pos[len(pos) - len(args.defaults):],
                             args.defaults))
            pairs += [
                (a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                if d is not None
            ]
            for arg, default in pairs:
                if default.lineno == line and default.col_offset == col:
                    return self._default_guard(fn, arg, default)
        return []

    def _default_guard(
        self, fn: ast.FunctionDef, arg: ast.arg, default: ast.expr
    ) -> list[FixProposal]:
        span = _span_offsets(self.offsets, default)
        original = self.text_of(default)
        if span is None or original is None or "\n" in original:
            return []
        body = list(fn.body)
        insert_after = 0
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            insert_after = 1  # keep the docstring first
        if insert_after >= len(body):
            return []
        anchor = body[insert_after]
        indent = " " * anchor.col_offset
        at = self.offsets[anchor.lineno - 1]
        guard = (
            f"{indent}if {arg.arg} is None:\n"
            f"{indent}    {arg.arg} = {original}\n"
        )
        return [
            FixProposal(
                code="RPR031", file=self.file,
                line=default.lineno, col=default.col_offset,
                title=f"default {arg.arg}={original} -> None",
                start=span[0], end=span[1], replacement="None",
            ),
            FixProposal(
                code="RPR031", file=self.file,
                line=anchor.lineno, col=anchor.col_offset,
                title=f"rebuild {arg.arg} inside the body",
                start=at, end=at, replacement=guard,
            ),
        ]

    # -- escape fixers (RPR030/033/034) -------------------------------- #

    def _node_at(self, line: int, col: int, types) -> Optional[ast.AST]:
        for node in ast.walk(self.tree):
            if (
                isinstance(node, types)
                and getattr(node, "lineno", None) == line
                and getattr(node, "col_offset", None) == col
            ):
                return node
        return None

    def _import_anchor(self) -> tuple[int, int]:
        """(offset, lineno) right after the last top-level import, the
        module docstring failing that, or the top of the file."""
        anchor: Optional[ast.stmt] = None
        body = self.tree.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            anchor = body[0]
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                anchor = node
        if anchor is None:
            return 0, 1
        end_line = anchor.end_lineno or anchor.lineno
        return self.offsets[end_line], end_line + 1

    def _register_global(
        self, code: str, line: int, col: int, root: str
    ) -> list[FixProposal]:
        """Insert ``checkpointable_state("<root>")`` after the global's
        top-level assignment (plus the import, once per file)."""
        if root in self.registered or root in self.planned_registrations:
            return []
        stmt = self.top_assigns.get(root)
        if stmt is None:
            return []  # not defined here: nothing to anchor the fix on
        self.planned_registrations.add(root)
        out: list[FixProposal] = []
        if not self.has_state_import and not self.import_planned:
            self.import_planned = True
            at, imp_line = self._import_anchor()
            out.append(FixProposal(
                code=code, file=self.file, line=imp_line, col=0,
                title="import checkpointable_state",
                start=at, end=at,
                replacement=(
                    "from repro.statesave import checkpointable_state\n"
                ),
            ))
        end_line = stmt.end_lineno or stmt.lineno
        at = (
            self.offsets[end_line]
            if end_line < len(self.offsets) else len(self.source)
        )
        replacement = f'checkpointable_state("{root}")\n'
        if at > 0 and self.source[at - 1] != "\n":
            replacement = "\n" + replacement
        out.append(FixProposal(
            code=code, file=self.file, line=line, col=col,
            title=f'register {root} with checkpointable_state("{root}")',
            start=at, end=at, replacement=replacement,
        ))
        return out

    def fix_escape_store(self, line: int, col: int) -> list[FixProposal]:
        """RPR030: the escaping global is named at the finding itself."""
        node = self._node_at(
            line, col, (ast.Attribute, ast.Subscript, ast.Call)
        )
        root: Optional[str] = None
        if isinstance(node, ast.Call):
            root = attr_root(node.func)
        elif isinstance(node, ast.Attribute):
            root = attr_root(node)
        elif isinstance(node, ast.Subscript):
            root = attr_root(node.value)
        if root is None:
            return []
        return self._register_global("RPR030", line, col, root)

    def _alias_sources(self, fn: ast.FunctionDef, alias: str) -> set[str]:
        """Module-level names an in-function alias assignment binds to."""
        roots: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == alias
                for t in node.targets
            ):
                continue
            value = node.value
            if isinstance(value, ast.Subscript):
                value = value.value
            root = attr_root(value) if not isinstance(value, ast.Call) \
                else None
            if root is not None and root in self.top_assigns:
                roots.add(root)
        return roots

    def fix_escape_alias(self, line: int, col: int) -> list[FixProposal]:
        """RPR033: resolve the mutated local alias back to the module
        global it was bound from; helper-returned aliases stay manual."""
        node = self._node_at(
            line, col,
            (ast.Call, ast.Attribute, ast.Subscript, ast.Assign,
             ast.AugAssign),
        )
        alias: Optional[str] = None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                alias = attr_root(func)
        elif isinstance(node, (ast.Attribute, ast.Subscript)):
            alias = attr_root(
                node.value if isinstance(node, ast.Subscript) else node
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            target = (
                node.targets[0] if isinstance(node, ast.Assign)
                else node.target
            )
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                alias = attr_root(
                    target.value if isinstance(target, ast.Subscript)
                    else target
                )
        fn = self.enclosing_function(line)
        if alias is None or fn is None:
            return []
        out: list[FixProposal] = []
        for root in sorted(self._alias_sources(fn, alias)):
            out.extend(self._register_global("RPR033", line, col, root))
        return out

    def fix_escape_arg(self, line: int, col: int) -> list[FixProposal]:
        """RPR034: register the callee's module-state sink."""
        node = self._node_at(line, col, ast.Call)
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Name):
            return []
        callee = next(
            (f for f in self.functions if f.name == node.func.id), None
        )
        if callee is None:
            return []
        args = callee.args
        local = {
            a.arg for a in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            )
        }
        for sub in ast.walk(callee):
            if isinstance(sub, ast.Name) \
                    and isinstance(sub.ctx, (ast.Store, ast.Del)):
                local.add(sub.id)
        out: list[FixProposal] = []
        for sub in ast.walk(callee):
            if not isinstance(sub, (ast.Assign, ast.AugAssign,
                                    ast.AnnAssign)):
                continue
            targets = (
                sub.targets if isinstance(sub, ast.Assign)
                else [sub.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = attr_root(
                    target.value if isinstance(target, ast.Subscript)
                    else target
                )
                if root is not None and root not in local \
                        and root in self.top_assigns:
                    out.extend(
                        self._register_global("RPR034", line, col, root)
                    )
        return out


def propose_fixes(source: str, file: str = "<string>") -> list[FixProposal]:
    """Every mechanical rewrite for the file's *active* findings.

    Runs the full check over the source; suppressed findings are left
    alone (the suppression is an explicit human decision).
    """
    from repro.check.driver import check_source

    result = check_source(source, file=file)
    planner = _FixPlanner(source, file)
    proposals: list[FixProposal] = []
    for d in result.diagnostics:
        if d.span.file != file:
            continue  # slicer-joined sibling findings: fix their own file
        if d.code == "RPR020":
            fix = planner.fix_entropy(d.span.line, d.span.col)
            if fix is not None:
                proposals.append(fix)
        elif d.code == "RPR021":
            fix = planner.fix_clock(d.span.line, d.span.col)
            if fix is not None:
                proposals.append(fix)
        elif d.code == "RPR031":
            proposals.extend(
                planner.fix_mutable_default(d.span.line, d.span.col)
            )
        elif d.code == "RPR030":
            proposals.extend(
                planner.fix_escape_store(d.span.line, d.span.col)
            )
        elif d.code == "RPR033":
            proposals.extend(
                planner.fix_escape_alias(d.span.line, d.span.col)
            )
        elif d.code == "RPR034":
            proposals.extend(
                planner.fix_escape_arg(d.span.line, d.span.col)
            )
    return proposals


#: RPR090 message shape (see ``repro.check.driver._apply_suppressions``).
_STALE_RE = re.compile(r"suppression of (RPR\d{3}) matches no finding")


def prune_stale_suppressions(
    source: str, file: str = "<string>"
) -> tuple[str, int]:
    """Re-lint the (possibly just-fixed) source and drop suppressions
    that no longer silence anything.

    ``--fix --write`` runs this after applying rewrites: a fix that
    repairs a suppressed-adjacent finding can leave its ``# repro:
    ignore[...]`` comment stale, and a stale suppression would hide the
    next real regression (that is exactly what RPR090 warns about).
    Returns ``(new_source, pruned)``.
    """
    from repro.check.driver import check_source

    result = check_source(source, file=file)
    stale_locs: list[tuple[Suppression, str]] = []
    by_loc = {
        (s.line, s.col): s
        for s in find_suppressions(source, file)
    }
    for d in result.diagnostics:
        if d.code != "RPR090" or d.span.file != file:
            continue
        match = _STALE_RE.search(d.message)
        s = by_loc.get((d.span.line, d.span.col))
        if match and s is not None:
            stale_locs.append((s, match.group(1)))
    return prune_stale(source, stale_locs)


def apply_fixes(source: str, proposals: list[FixProposal]) -> str:
    """Splice the proposals into the source (descending offset order;
    overlapping proposals after the first are dropped)."""
    applied: list[FixProposal] = []
    for p in sorted(proposals, key=lambda p: (p.start, p.end)):
        if applied and p.start < applied[-1].end and not (
            p.start == p.end or applied[-1].start == applied[-1].end
        ):
            continue  # overlap: keep the earlier proposal
        applied.append(p)
    out = source
    for p in sorted(applied, key=lambda p: p.start, reverse=True):
        out = out[:p.start] + p.replacement + out[p.end:]
    return out


def render_diff(old: str, new: str, file: str) -> str:
    """Unified diff of one file's fix application."""
    return "".join(difflib.unified_diff(
        old.splitlines(keepends=True),
        new.splitlines(keepends=True),
        fromfile=file,
        tofile=file,
    ))
