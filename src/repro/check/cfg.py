"""Per-function control-flow graphs and collective-sequence summaries.

Two layers live here:

* :func:`build_cfg` — an explicit basic-block CFG for one unit function
  (statement-grained blocks, edges labelled ``seq``/``then``/``else``/
  ``loop``/``back``/``exit``).  The subset the precompiler accepts is
  fully structured (no ``try`` on reaching paths, no exceptions), so the
  graph is reducible by construction; the sequencing analyses use it to
  enumerate loops with their guard expressions and reachable bodies.

* the **summary language** — each function's collective-call behaviour is
  summarised as a small regular expression over the collective alphabet:
  :class:`Tok` (a direct ``ctx.<collective>()``), :class:`CallRef` (a call
  into another unit function, resolved later against that function's
  summary), :class:`Seq`, :class:`Alt` (branch merge), :class:`Star`
  (loop merge) and :data:`UNKNOWN` (recursion cutoff).  Summaries are
  joined at branch/loop merge points exactly where the CFG merges edges,
  and :func:`resolve` substitutes callee summaries across call boundaries
  — the interprocedural half of the paper's "same sequence of
  collectives on every process" obligation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

#: Path-sensitivity hook: maps a branch predicate expression to a canonical
#: key when the predicate is rank-uniform (same value on every rank), or
#: None when the branch must stay an opaque :class:`Alt`.
PredKey = Callable[[ast.expr], Optional[str]]


# --------------------------------------------------------------------- #
# The summary regular language.
# --------------------------------------------------------------------- #

class Summary:
    """Base class for collective-sequence summaries (a tiny regex AST)."""

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.render()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Summary) and self.render() == other.render()

    def __hash__(self) -> int:
        return hash(self.render())


class _Eps(Summary):
    def render(self) -> str:
        return "ε"


class _Unknown(Summary):
    """Unresolvable content (recursion, external call with effects)."""

    def render(self) -> str:
        return "?"


#: The empty sequence and the unresolvable sentinel (singletons).
EPS = _Eps()
UNKNOWN = _Unknown()


@dataclass(frozen=True, eq=False)
class Tok(Summary):
    """One direct collective call (``barrier``, ``allreduce``, …)."""

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class CallRef(Summary):
    """A call into another unit function, by name (resolved later)."""

    callee: str

    def render(self) -> str:
        return f"call:{self.callee}"


@dataclass(frozen=True, eq=False)
class Seq(Summary):
    parts: tuple[Summary, ...]

    def render(self) -> str:
        inner = " ".join(p.render() for p in self.parts)
        return inner or "ε"


@dataclass(frozen=True, eq=False)
class Alt(Summary):
    """Branch merge: one of the options executes."""

    options: tuple[Summary, ...]

    def render(self) -> str:
        return "(" + " | ".join(o.render() for o in self.options) + ")"


@dataclass(frozen=True, eq=False)
class Star(Summary):
    """Loop merge: the body executes zero or more times."""

    inner: Summary

    def render(self) -> str:
        return f"({self.inner.render()})*"


@dataclass(frozen=True, eq=False)
class Cond(Summary):
    """Branch on a *rank-uniform* predicate, keyed by its canonical text.

    Unlike :class:`Alt` (either option may execute, per rank), a ``Cond``
    records that every rank takes the same arm — so two adjacent ``Cond``
    nodes with the same key are correlated and merge *per path*::

        [k ? A : B] · [k ? C : D]  ≡  [k ? A·C : B·D]

    which is what proves ``if k: a(); if k: b()`` equivalent to
    ``if k: a(); b()`` and kills the v2 RPR010 false-positive family.
    """

    key: str
    then: Summary
    orelse: Summary

    def render(self) -> str:
        return f"[{self.key} ? {self.then.render()} : {self.orelse.render()}]"


def seq(parts: Iterable[Summary]) -> Summary:
    return normalize(Seq(tuple(parts)))


def normalize(s: Summary) -> Summary:
    """Canonical form: flatten sequences, drop ε, dedupe alternatives,
    collapse trivial stars.  Two summaries are treated as equivalent when
    their normal forms render identically (a sound, conservative check —
    it never equates genuinely different languages)."""
    if isinstance(s, Seq):
        flat: list[Summary] = []
        for part in (normalize(p) for p in s.parts):
            if part is EPS:
                continue
            if isinstance(part, Seq):
                flat.extend(part.parts)
            else:
                flat.append(part)
        # Correlated-branch merge: adjacent Conds on the same uniform
        # predicate fuse per path (see Cond's docstring).
        merged: list[Summary] = []
        for part in flat:
            prev = merged[-1] if merged else None
            if (isinstance(part, Cond) and isinstance(prev, Cond)
                    and prev.key == part.key):
                fused = normalize(Cond(
                    part.key,
                    Seq((prev.then, part.then)),
                    Seq((prev.orelse, part.orelse)),
                ))
                if fused is EPS:
                    merged.pop()
                else:
                    merged[-1] = fused
            else:
                merged.append(part)
        flat = merged
        if not flat:
            return EPS
        if len(flat) == 1:
            return flat[0]
        return Seq(tuple(flat))
    if isinstance(s, Alt):
        seen: dict[str, Summary] = {}
        for option in (normalize(o) for o in s.options):
            if isinstance(option, Alt):
                for sub in option.options:
                    seen.setdefault(sub.render(), sub)
            else:
                seen.setdefault(option.render(), option)
        options = tuple(seen.values())
        if len(options) == 1:
            return options[0]
        return Alt(options)
    if isinstance(s, Star):
        inner = normalize(s.inner)
        if inner is EPS:
            return EPS
        if isinstance(inner, Star):
            return inner
        return Star(inner)
    if isinstance(s, Cond):
        then = normalize(s.then)
        orelse = normalize(s.orelse)
        if then.render() == orelse.render():
            return then  # both arms agree: the branch is irrelevant
        return Cond(s.key, then, orelse)
    return s


def equivalent(a: Summary, b: Summary) -> bool:
    return normalize(a).render() == normalize(b).render()


def collectives_in(s: Summary) -> tuple[str, ...]:
    """Every collective token that can occur in the summary's language
    (document order, deduplicated)."""
    out: list[str] = []

    def walk(node: Summary) -> None:
        if isinstance(node, Tok) and node.name not in out:
            out.append(node.name)
        elif isinstance(node, (Seq, Alt)):
            parts = node.parts if isinstance(node, Seq) else node.options
            for part in parts:
                walk(part)
        elif isinstance(node, Star):
            walk(node.inner)
        elif isinstance(node, Cond):
            walk(node.then)
            walk(node.orelse)

    walk(normalize(s))
    return tuple(out)


def unresolved_calls(s: Summary) -> tuple[str, ...]:
    out: list[str] = []

    def walk(node: Summary) -> None:
        if isinstance(node, CallRef) and node.callee not in out:
            out.append(node.callee)
        elif isinstance(node, (Seq, Alt)):
            parts = node.parts if isinstance(node, Seq) else node.options
            for part in parts:
                walk(part)
        elif isinstance(node, Star):
            walk(node.inner)
        elif isinstance(node, Cond):
            walk(node.then)
            walk(node.orelse)

    walk(s)
    return tuple(out)


def has_unknown(s: Summary) -> bool:
    if s is UNKNOWN:
        return True
    if isinstance(s, (Seq, Alt)):
        parts = s.parts if isinstance(s, Seq) else s.options
        return any(has_unknown(p) for p in parts)
    if isinstance(s, Star):
        return has_unknown(s.inner)
    if isinstance(s, Cond):
        return has_unknown(s.then) or has_unknown(s.orelse)
    return False


def resolve(
    s: Summary,
    env: dict[str, Summary],
    _stack: frozenset[str] = frozenset(),
) -> Summary:
    """Substitute callee summaries across call boundaries.

    ``env`` maps unit-function name → raw summary.  Recursive cycles
    resolve to :data:`UNKNOWN` (the analyses treat unknown content as
    "anything", so no diagnostic is built on top of it); calls to names
    outside the env (library calls) contribute nothing.
    """
    if isinstance(s, CallRef):
        if s.callee in _stack:
            return UNKNOWN
        target = env.get(s.callee)
        if target is None:
            return EPS
        return resolve(target, env, _stack | {s.callee})
    if isinstance(s, Seq):
        return normalize(Seq(tuple(resolve(p, env, _stack) for p in s.parts)))
    if isinstance(s, Alt):
        return normalize(Alt(tuple(resolve(o, env, _stack) for o in s.options)))
    if isinstance(s, Star):
        return normalize(Star(resolve(s.inner, env, _stack)))
    if isinstance(s, Cond):
        return normalize(Cond(
            s.key,
            resolve(s.then, env, _stack),
            resolve(s.orelse, env, _stack),
        ))
    return s


# --------------------------------------------------------------------- #
# Basic-block CFG.
# --------------------------------------------------------------------- #

@dataclass
class BasicBlock:
    """A run of statements with single-entry control flow."""

    index: int
    label: str = ""
    statements: list[ast.stmt] = field(default_factory=list)
    #: Outgoing edges as ``(kind, block_index)``; kinds are ``seq``,
    #: ``then``/``else`` (branch), ``loop`` (enter body), ``back`` (loop
    #: backedge), ``exit`` (return/break/continue escaping the region).
    edges: list[tuple[str, int]] = field(default_factory=list)

    def lines(self) -> tuple[int, ...]:
        return tuple(
            getattr(s, "lineno", 0) for s in self.statements
        )


@dataclass
class FunctionCFG:
    """The CFG of one function: blocks, entry, single synthetic exit."""

    name: str
    blocks: list[BasicBlock]
    entry: int
    exit: int

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def successors(self, index: int) -> list[int]:
        return [dst for _, dst in self.blocks[index].edges]

    def edge_kinds(self, src: int, dst: int) -> list[str]:
        return [k for k, d in self.blocks[src].edges if d == dst]

    def reachable(self) -> set[int]:
        seen: set[int] = set()
        work = [self.entry]
        while work:
            cur = work.pop()
            if cur in seen:
                continue
            seen.add(cur)
            work.extend(self.successors(cur))
        return seen


class _CFGBuilder:
    def __init__(self, name: str) -> None:
        self.cfg = FunctionCFG(name=name, blocks=[], entry=0, exit=-1)

    def new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(index=len(self.cfg.blocks), label=label)
        self.cfg.blocks.append(block)
        return block

    def edge(self, src: BasicBlock, kind: str, dst: BasicBlock) -> None:
        src.edges.append((kind, dst.index))

    def build(self, tree: ast.FunctionDef) -> FunctionCFG:
        entry = self.new_block("entry")
        self.cfg.entry = entry.index
        exit_block = self.new_block("exit")
        self.cfg.exit = exit_block.index
        end = self._emit(tree.body, entry, exit_block, None, None)
        if end is not None:
            self.edge(end, "seq", exit_block)
        return self.cfg

    def _emit(
        self,
        stmts: list[ast.stmt],
        current: BasicBlock,
        fn_exit: BasicBlock,
        loop_break: Optional[BasicBlock],
        loop_continue: Optional[BasicBlock],
    ) -> Optional[BasicBlock]:
        """Emit statements into ``current``; return the open fall-through
        block, or None when every path left the region."""
        for stmt in stmts:
            if current is None:
                return None
            if isinstance(stmt, ast.If):
                current.statements.append(stmt)
                then_block = self.new_block("then")
                else_block = self.new_block("else")
                join = self.new_block("join")
                self.edge(current, "then", then_block)
                self.edge(current, "else", else_block)
                for arm, block in ((stmt.body, then_block),
                                   (stmt.orelse, else_block)):
                    end = self._emit(
                        arm, block, fn_exit, loop_break, loop_continue
                    )
                    if end is not None:
                        self.edge(end, "seq", join)
                current = join
            elif isinstance(stmt, (ast.For, ast.While)):
                head = self.new_block("loop-head")
                head.statements.append(stmt)
                body = self.new_block("loop-body")
                after = self.new_block("loop-exit")
                if current is not None:
                    self.edge(current, "seq", head)
                self.edge(head, "loop", body)
                self.edge(head, "else", after)
                end = self._emit(stmt.body, body, fn_exit, after, head)
                if end is not None:
                    self.edge(end, "back", head)
                if stmt.orelse:
                    # the else-arm runs on normal loop exit; model it on
                    # the head→after edge by chaining through a block.
                    else_block = self.new_block("loop-else")
                    head.edges = [
                        (k, d) if not (k == "else" and d == after.index)
                        else (k, else_block.index)
                        for k, d in head.edges
                    ]
                    end = self._emit(
                        stmt.orelse, else_block, fn_exit,
                        loop_break, loop_continue,
                    )
                    if end is not None:
                        self.edge(end, "seq", after)
                current = after
            elif isinstance(stmt, ast.Return):
                current.statements.append(stmt)
                self.edge(current, "exit", fn_exit)
                current = None
            elif isinstance(stmt, ast.Break):
                current.statements.append(stmt)
                if loop_break is not None:
                    self.edge(current, "exit", loop_break)
                current = None
            elif isinstance(stmt, ast.Continue):
                current.statements.append(stmt)
                if loop_continue is not None:
                    self.edge(current, "back", loop_continue)
                current = None
            else:
                current.statements.append(stmt)
        return current


def build_cfg(tree: ast.FunctionDef) -> FunctionCFG:
    """Build the basic-block CFG of one function."""
    return _CFGBuilder(tree.name).build(tree)


# --------------------------------------------------------------------- #
# Summary extraction.
# --------------------------------------------------------------------- #

def expression_summary(
    node: ast.AST,
    collective_names: frozenset[str],
    comm_names: frozenset[str],
    unit_names: frozenset[str],
) -> list[Summary]:
    """Collective tokens / unit-call refs inside one expression or atomic
    statement, in :func:`ast.walk` order (the same canonical order the v1
    analysis used, so both arms of a branch canonicalise identically)."""
    from repro.precompiler.analysis import attr_root

    out: list[Summary] = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in collective_names
            and attr_root(func) in comm_names
        ):
            out.append(Tok(func.attr))
        elif isinstance(func, ast.Name) and func.id in unit_names:
            out.append(CallRef(func.id))
    return out


def block_summary(
    stmts: list[ast.stmt],
    collective_names: frozenset[str],
    comm_names: frozenset[str],
    unit_names: frozenset[str],
    pred_key: Optional[PredKey] = None,
) -> Summary:
    """The collective-sequence summary of a statement list, joined at
    branch/loop merge points (If → :class:`Alt`, loops → :class:`Star`).

    ``pred_key`` is the path-sensitivity hook: when it maps a branch
    predicate to a canonical key (meaning the predicate is rank-uniform
    and side-effect free), the If becomes a keyed :class:`Cond` instead of
    an :class:`Alt`, enabling correlated-branch merging.
    """

    def expr(node: ast.AST) -> list[Summary]:
        return expression_summary(
            node, collective_names, comm_names, unit_names
        )

    def of_block(stmts: list[ast.stmt]) -> Summary:
        parts: list[Summary] = []
        for s in stmts:
            if isinstance(s, ast.If):
                parts.extend(expr(s.test))
                key = pred_key(s.test) if pred_key is not None else None
                if key is not None:
                    parts.append(
                        Cond(key, of_block(s.body), of_block(s.orelse))
                    )
                else:
                    parts.append(
                        Alt((of_block(s.body), of_block(s.orelse)))
                    )
            elif isinstance(s, ast.While):
                parts.extend(expr(s.test))
                parts.append(Star(seq([of_block(s.body)] + expr(s.test))))
                parts.append(of_block(s.orelse))
            elif isinstance(s, ast.For):
                parts.extend(expr(s.iter))
                parts.append(Star(of_block(s.body)))
                parts.append(of_block(s.orelse))
            elif isinstance(s, ast.Try):
                parts.append(of_block(s.body))
                parts.append(of_block(s.orelse))
                parts.append(of_block(s.finalbody))
            elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                continue  # separate scope/unit
            else:
                parts.extend(expr(s))
        return seq(parts)

    return of_block(stmts)


def function_summary(
    tree: ast.FunctionDef,
    collective_names: frozenset[str],
    comm_names: frozenset[str],
    unit_names: frozenset[str],
    pred_key: Optional[PredKey] = None,
) -> Summary:
    """The function's collective-sequence summary."""
    return block_summary(
        tree.body, collective_names, comm_names, unit_names, pred_key
    )
