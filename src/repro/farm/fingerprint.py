"""Cache-key fingerprints for farm jobs.

A farm cell is *content-addressed*: its cache key is a SHA-256 over

* the job function's qualified name (``module:qualname``),
* the canonical pickle of the job payload — for a sweep cell that is the
  (RunConfig, app reference + params, failure schedule, seed, storage
  spec) tuple; for a chaos cell the (scenario, config, params, baseline
  probe) tuple, and
* a **code-version salt** — a digest over every ``*.py`` file of the
  :mod:`repro` package, so editing any simulator/protocol/storage code
  silently invalidates every cached outcome it could have influenced.

Pickle is a sound canonical form here because every payload the farm sees
is built from plain deterministic data (dataclasses, tuples, numbers,
strings, numpy arrays) constructed along the same code path each run;
dict iteration order is insertion order, and the memo table sees the same
object graph.  Payloads that cannot be pickled cannot be fingerprinted —
:func:`fingerprint` returns ``None`` and the farm executes them uncached.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Callable, Optional

_CODE_SALT: Optional[str] = None

#: Bumped when the farm's own record formats change shape.
SCHEMA_VERSION = 1


def code_salt() -> str:
    """Digest of the :mod:`repro` package's source tree (cached per process).

    Walks the package directory next to ``repro.__file__`` and hashes every
    ``.py`` file's path and contents, so any code change — not just farm
    code — produces a different salt and therefore different cache keys.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256(f"schema={SCHEMA_VERSION}".encode())
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                digest.update(rel.encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _CODE_SALT = digest.hexdigest()
    return _CODE_SALT


def fn_identity(fn: Callable) -> str:
    """Portable identity of a module-level job function."""
    return f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', repr(fn))}"


def fingerprint(fn: Callable, payload: Any, salt: Optional[str] = None) -> Optional[str]:
    """The cell's cache key, or ``None`` when the payload defies pickling
    (closures, ad-hoc objects — such cells run uncached, exactly the set
    that also falls back to serial execution in ``Session.map``)."""
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    digest = hashlib.sha256()
    digest.update((salt if salt is not None else code_salt()).encode())
    digest.update(fn_identity(fn).encode())
    digest.update(blob)
    return digest.hexdigest()
