"""The farm engine: cached, resumable fan-out over deterministic cells.

:meth:`Farm.map` is a drop-in for :meth:`repro.Session.map` with two extra
properties:

* **cache** — each ``(fn, payload)`` cell is fingerprinted (payload pickle
  + function identity + code-version salt) and looked up in the
  content-addressed result cache; a hit is returned without executing the
  cell.  Because cells are seeded deterministic simulations, a cached
  outcome is bit-identical to a fresh execution.
* **resume** — every miss becomes a durable job record before execution
  and is marked done/failed after.  Results are written *per cell as the
  batch completes*, so killing a 200-cell campaign part-way strands
  nothing: the next run hits the cache for every finished cell and
  executes only the remainder (``running`` records from the interrupted
  run are reclaimed, attempt counts intact).

Execution itself rides :meth:`Session.map` — the worker-pool policy with
the picklability probe and the in-process serial fallback — so a farm run
parallelises exactly like a plain sweep and still produces bit-identical
results serially.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable, Optional

from repro.ckpt.backends import DirectoryBackend, MemoryBackend
from repro.errors import FarmJobError
from repro.farm.cache import ResultCache
from repro.farm.fingerprint import code_salt, fingerprint, fn_identity
from repro.farm.jobs import JobQueue

#: Give a persistently dying cell this many executions before reporting it
#: instead of retrying (attempt counts live in the durable job records).
DEFAULT_MAX_ATTEMPTS = 3

#: Misses are executed (and their results persisted) in batches of this
#: size, so interrupting a long campaign strands at most one batch of
#: work — everything in completed batches is a cache hit on resume.
DEFAULT_BATCH_SIZE = 32


@dataclass
class FarmStats:
    """Cache/queue accounting for one :meth:`Farm.map` call."""

    cells: int = 0
    hits: int = 0
    misses: int = 0
    executed: int = 0
    failed: int = 0
    #: Cells whose payload defied fingerprinting (ran uncached).
    uncached: int = 0
    wall_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.cells if self.cells else 0.0

    def to_dict(self) -> dict:
        out = asdict(self)
        out["hit_rate"] = self.hit_rate
        return out

    def merged(self, other: "FarmStats") -> "FarmStats":
        return FarmStats(
            cells=self.cells + other.cells,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            executed=self.executed + other.executed,
            failed=self.failed + other.failed,
            uncached=self.uncached + other.uncached,
            wall_seconds=self.wall_seconds + other.wall_seconds,
        )


def _guarded_call(item: tuple) -> tuple:
    """Run one cell in a worker; never let its exception kill the pool."""
    fn, payload = item
    try:
        return ("ok", fn(payload))
    except Exception as exc:  # noqa: BLE001 - becomes a failed job record
        return ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())


@dataclass
class _Cell:
    index: int
    payload: Any
    key: Optional[str]


class Farm:
    """Persistent campaign-execution engine.

    Parameters
    ----------
    path:
        Directory for the result cache + job queue (the ``repro.ckpt``
        directory backend).  ``None`` keeps everything in memory — same
        semantics, process-lifetime durability (useful for tests and for
        deduplicating repeated cells within one campaign).
    codec:
        Chunk codec for cached result blobs (``none``/``zlib``/``lzma`` or
        anything registered with :func:`repro.ckpt.register_chunk_codec`).
        An existing farm directory keeps the codec it was created with.
    session:
        The :class:`repro.Session` whose ``map`` fan-out policy executes
        cache misses.  A default one is built when omitted.
    salt:
        Override the code-version salt (tests; normally derived from the
        ``repro`` source tree).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        codec: str = "none",
        session: Any = None,
        salt: Optional[str] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        from repro.api.session import Session  # cycle: session imports nothing of ours

        self.path = path
        backend = MemoryBackend() if path is None else DirectoryBackend(path)
        self.backend = backend
        self.cache = ResultCache(backend, codec=codec)
        self.jobs = JobQueue(backend)
        self.session = session if session is not None else Session()
        self.salt = salt if salt is not None else code_salt()
        self.max_attempts = max_attempts
        #: Stats of the most recent :meth:`map` call.
        self.last_stats = FarmStats()
        #: Aggregate stats over this Farm instance's lifetime.
        self.total_stats = FarmStats()
        #: Optional :class:`repro.trace.TraceRecorder` for job-lifecycle
        #: events (hit/miss/execute/fail).  Farm events carry no virtual
        #: clock — they happen outside any simulation — so they land at the
        #: recorder's current offset; they are observability only and never
        #: feed determinism fingerprints.
        self.tracer: Optional[Any] = None

    def _emit(self, name: str, **payload: Any) -> None:
        tr = self.tracer
        if tr is not None:
            tr.emit("farm", name, **payload)

    # ------------------------------------------------------------------ #

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Iterable[Any],
        *,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        cacheable: Optional[Callable[[Any], bool]] = None,
        labels: Optional[Callable[[Any], str]] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> list:
        """Apply ``fn`` to every payload, through the cache and job queue.

        Results preserve payload order and are bit-identical to
        ``Session.map(fn, payloads)`` — hits deserialise the stored
        outcome, misses execute.  ``cacheable`` (payload -> bool) lets a
        caller exempt cells whose execution has side effects the cache
        would skip (e.g. sweep cells persisting checkpoints to their own
        directory).  ``labels`` renders a human-readable job label.

        Raises :class:`FarmJobError` when any cell fails (or has already
        exhausted ``max_attempts``) — but only after every runnable cell
        in the call has executed and been cached, so one poisoned cell
        never blocks the rest of a campaign.  Earlier failures are
        retried on the next call (that is what the attempt counter is
        for); :meth:`gc` clears failed records to re-arm exhausted cells.
        """
        t0 = time.perf_counter()
        stats = FarmStats()
        cells = []
        for index, payload in enumerate(payloads):
            key = None
            if cacheable is None or cacheable(payload):
                key = fingerprint(fn, payload, self.salt)
            cells.append(_Cell(index=index, payload=payload, key=key))
        stats.cells = len(cells)

        results: list = [None] * len(cells)
        to_run: list[_Cell] = []
        # Attempts-exhausted cells are reported, not retried — but they
        # must not block the rest of the batch: every runnable cell still
        # executes (and lands in the cache) before the error is raised.
        failures: list[tuple[str, str]] = []
        fn_name = fn_identity(fn)
        for cell in cells:
            if cell.key is None:
                stats.uncached += 1
                to_run.append(cell)
                continue
            if self.cache.has(cell.key):
                results[cell.index] = self.cache.get(cell.key)
                stats.hits += 1
                self._emit("cache_hit", cell=cell.index, key=cell.key[:16])
                continue
            stats.misses += 1
            self._emit("cache_miss", cell=cell.index, key=cell.key[:16])
            record = self.jobs.load(cell.key)
            if (
                record is not None
                and record.status in ("failed", "running")
                and record.attempts >= self.max_attempts
            ):
                # A 'running' record here means the cell's execution died
                # with the orchestrator (OOM, segfault) — it counts against
                # max_attempts exactly like a recorded failure, or a cell
                # that crashes the process would be retried forever.
                error = record.error or "interrupted mid-execution (possible crash)"
                failures.append(
                    (cell.key, f"attempts exhausted ({record.attempts}): {error}")
                )
                continue
            to_run.append(cell)

        for start in range(0, len(to_run), max(1, batch_size)):
            batch = to_run[start : start + max(1, batch_size)]
            # Claim just before executing: cells in batches never reached
            # by an interrupted run keep their previous (or no) record.
            claimed = {}
            for cell in batch:
                if cell.key is not None:
                    claimed[cell.key] = self.jobs.claim(
                        cell.key,
                        fn_name,
                        labels(cell.payload) if labels is not None else "",
                        self.salt,
                    )
            outcomes = self.session.map(
                _guarded_call,
                [(fn, cell.payload) for cell in batch],
                parallel=parallel,
                max_workers=max_workers,
            )
            for cell, outcome in zip(batch, outcomes):
                record = claimed.get(cell.key)
                if outcome[0] == "ok":
                    results[cell.index] = outcome[1]
                    stats.executed += 1
                    self._emit("job_done", cell=cell.index)
                    if cell.key is not None:
                        self.cache.put(cell.key, outcome[1])
                        self.jobs.finish(record)
                else:
                    stats.failed += 1
                    error = outcome[1]
                    self._emit("job_failed", cell=cell.index, error=error)
                    if record is not None:
                        # Keep the short message in `error`; the worker's
                        # formatted traceback rides along for post-mortems.
                        self.jobs.finish(record, error=error, trace=outcome[2])
                    failures.append((cell.key or f"<uncached #{cell.index}>", error))

        stats.wall_seconds = time.perf_counter() - t0
        self._account(stats)
        if failures:
            raise FarmJobError(failures)
        return results

    def _account(self, stats: FarmStats) -> None:
        self.last_stats = stats
        self.total_stats = self.total_stats.merged(stats)

    # ------------------------------------------------------------------ #
    # Maintenance.
    # ------------------------------------------------------------------ #

    def gc(self) -> dict:
        """Drop entries stranded by code changes, failures, and orphans.

        * job records (and their results) whose recorded salt is not the
          current code salt — their keys can never be requested again;
        * ``failed`` job records — failures cache nothing, and clearing
          them resets attempt accounting so a cell whose attempts were
          exhausted can be retried (the operator's unwedge knob);
        * stale ``running`` records (one orchestrator per directory, so
          any found offline are leftovers of an interruption): one whose
          result *did* land is reconciled to ``done``, one without a
          result is deleted — re-arming crash-looping cells;
        * result blobs with no job record (an interrupted write, or a
          record deleted by an earlier gc).

        Returns ``{"stale_jobs": …, "failed_jobs": …, "orphan_results": …}``.
        """
        stale_jobs = 0
        failed_jobs = 0
        live_keys = set()
        for record in list(self.jobs.records()):
            if record.salt != self.salt:
                self.jobs.delete(record.key)
                self.cache.delete(record.key)
                stale_jobs += 1
            elif record.status == "failed":
                self.jobs.delete(record.key)
                failed_jobs += 1
            elif record.status == "running":
                if self.cache.has(record.key):
                    self.jobs.finish(record)  # result landed; claim did not
                    live_keys.add(record.key)
                else:
                    self.jobs.delete(record.key)
                    failed_jobs += 1
            else:
                live_keys.add(record.key)
        orphan_results = 0
        for key in list(self.cache.keys()):
            if key not in live_keys:
                self.cache.delete(key)
                orphan_results += 1
        return {
            "stale_jobs": stale_jobs,
            "failed_jobs": failed_jobs,
            "orphan_results": orphan_results,
        }

    def status(self) -> dict:
        """Aggregate queue/cache view (the ``repro-farm status`` payload)."""
        counts = self.jobs.counts()
        return {
            "path": self.path or "<memory>",
            "jobs": {
                "total": counts.total,
                "pending": counts.pending,
                "running": counts.running,
                "done": counts.done,
                "failed": counts.failed,
                "by_fn": dict(sorted(counts.by_fn.items())),
            },
            "cache": {
                "entries": self.cache.entry_count(),
                "bytes_at_rest": self.cache.bytes_at_rest(),
            },
            "salt": self.salt[:16],
        }
