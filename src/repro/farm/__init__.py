"""``repro.farm`` — cached, resumable campaign execution.

The execution layer under :meth:`repro.Session.sweep`, chaos campaigns
and the benchmark harness:

* :class:`Farm` — content-addressed result cache + durable job queue over
  a :mod:`repro.ckpt` backend; ``Farm.map`` is ``Session.map`` with
  caching and resume.
* :class:`FarmStats` — per-call cache/queue accounting.
* :class:`BenchRecorder` — stamps campaign wall/virtual-time and
  cache-hit stats into the ``BENCH_5.json`` perf trajectory.
* CLI — ``repro-farm run | status | gc`` (also ``python -m repro.farm``).
"""

from repro.farm.bench import DEFAULT_BENCH_PATH, BenchRecorder
from repro.farm.cache import ResultCache
from repro.farm.engine import Farm, FarmStats
from repro.farm.fingerprint import code_salt, fingerprint
from repro.farm.jobs import JobQueue, JobRecord

__all__ = [
    "Farm",
    "FarmStats",
    "ResultCache",
    "JobQueue",
    "JobRecord",
    "BenchRecorder",
    "DEFAULT_BENCH_PATH",
    "code_salt",
    "fingerprint",
]
