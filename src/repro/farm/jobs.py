"""Durable job records: the resumable half of the farm.

Every cache miss becomes a :class:`JobRecord` persisted *next to* its
future result (``jobs/<k0k1>/<key>``), moving through::

    pending -> running -> done
                       -> failed     (attempt counts accumulate)

Records are small JSON documents — human-readable with ``cat``, which is
deliberate: ``repro-farm status`` is just a fold over them.  An
interrupted campaign leaves its in-flight cells ``running``; since the
farm has a single orchestrating process per directory, any ``running``
record found at claim time is stale by construction and is reclaimed
(its attempt count survives, so a cell that keeps dying mid-flight is
eventually reported instead of retried forever).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterator, Optional

from repro.ckpt.backends import Backend

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

STATUSES = (PENDING, RUNNING, DONE, FAILED)


@dataclass
class JobRecord:
    """One durable cell: identity, lifecycle state, attempt accounting."""

    key: str
    fn: str
    label: str = ""
    status: str = PENDING
    attempts: int = 0
    #: Code-version salt the key was minted under (lets gc drop records
    #: stranded by code changes without re-deriving any fingerprint).
    salt: str = ""
    error: Optional[str] = None
    #: Worker-side formatted traceback of the last failure (post-mortems).
    trace: Optional[str] = None

    def to_json(self) -> bytes:
        return json.dumps(asdict(self), sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, blob: bytes) -> "JobRecord":
        data = json.loads(blob.decode("utf-8"))
        return cls(**{k: data.get(k) for k in cls.__dataclass_fields__})


@dataclass
class JobCounts:
    """Aggregate view for ``repro-farm status``."""

    pending: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    other: int = 0
    by_fn: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.pending + self.running + self.done + self.failed + self.other


class JobQueue:
    """Job records over the farm's backend."""

    def __init__(self, backend: Backend) -> None:
        self.backend = backend

    @staticmethod
    def _job_key(key: str) -> str:
        return f"jobs/{key[:2]}/{key}"

    # ------------------------------------------------------------------ #

    def load(self, key: str) -> Optional[JobRecord]:
        stored = self._job_key(key)
        if not self.backend.exists(stored):
            return None
        return JobRecord.from_json(self.backend.get(stored))

    def save(self, record: JobRecord) -> None:
        self.backend.put(self._job_key(record.key), record.to_json())

    def delete(self, key: str) -> None:
        self.backend.delete(self._job_key(key))

    def records(self) -> Iterator[JobRecord]:
        for stored in self.backend.keys("jobs/"):
            yield JobRecord.from_json(self.backend.get(stored))

    # ------------------------------------------------------------------ #

    def claim(self, key: str, fn: str, label: str, salt: str) -> JobRecord:
        """Mark the cell ``running`` and bump its attempt count.

        A record already ``running`` belongs to an interrupted earlier
        execution (one orchestrator per farm directory) and is reclaimed.
        """
        record = self.load(key)
        if record is None:
            record = JobRecord(key=key, fn=fn, label=label, salt=salt)
        record.status = RUNNING
        record.attempts += 1
        record.error = None
        self.save(record)
        return record

    def finish(
        self,
        record: JobRecord,
        error: Optional[str] = None,
        trace: Optional[str] = None,
    ) -> None:
        record.status = DONE if error is None else FAILED
        record.error = error
        record.trace = trace if error is not None else None
        self.save(record)

    def counts(self) -> JobCounts:
        out = JobCounts()
        for record in self.records():
            if record.status in STATUSES:
                setattr(out, record.status, getattr(out, record.status) + 1)
            else:
                out.other += 1
            out.by_fn[record.fn] = out.by_fn.get(record.fn, 0) + 1
        return out
