"""The content-addressed result cache.

Stores one framed, checksummed, optionally compressed blob per cache key
in a :mod:`repro.ckpt` backend — the same pluggable backend + chunk-codec
idiom the checkpoint engine uses, so a farm directory sits next to (or
inside) a checkpoint directory and speaks the same on-disk dialect::

    results/<k0k1>/<key>     -- framed pickle of the cell's outcome
    jobs/<k0k1>/<key>        -- JSON job record (see repro.farm.jobs)
    meta/FARM                -- farm metadata (schema, codec)

Because cell outcomes are deterministic functions of their fingerprint
(seeded simulation + code salt), a hit can simply be deserialised and
returned: it is bit-identical to what re-executing the cell would produce.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Optional

from repro.ckpt.backends import Backend
from repro.ckpt.codecs import get_chunk_codec
from repro.errors import StorageError
from repro.farm.fingerprint import SCHEMA_VERSION
from repro.util.serialization import dumps_framed, loads_framed

META_KEY = "meta/FARM"


class ResultCache:
    """Keyed outcome store over a checkpoint backend."""

    def __init__(self, backend: Backend, codec: str = "none") -> None:
        self.backend = backend
        meta = self._load_meta()
        if meta is not None:
            # An existing farm directory keeps its codec: entries written
            # under one codec must stay readable regardless of what a later
            # session asks for.
            codec = meta.get("codec", codec)
        self.codec = get_chunk_codec(codec)
        if meta is None:
            self._write_meta()

    # ------------------------------------------------------------------ #

    def _load_meta(self) -> Optional[dict]:
        if not self.backend.exists(META_KEY):
            return None
        try:
            meta = json.loads(self.backend.get(META_KEY).decode("utf-8"))
        except Exception as exc:
            raise StorageError(f"unreadable farm metadata at {META_KEY!r}: {exc}") from exc
        if meta.get("schema") != SCHEMA_VERSION:
            raise StorageError(
                f"farm directory speaks schema {meta.get('schema')!r}, "
                f"this build speaks {SCHEMA_VERSION}; use a fresh --dir"
            )
        return meta

    def _write_meta(self) -> None:
        blob = json.dumps(
            {"schema": SCHEMA_VERSION, "codec": self.codec.name}, sort_keys=True
        ).encode("utf-8")
        self.backend.put(META_KEY, blob)

    @staticmethod
    def _result_key(key: str) -> str:
        return f"results/{key[:2]}/{key}"

    # ------------------------------------------------------------------ #

    def has(self, key: str) -> bool:
        return self.backend.exists(self._result_key(key))

    def get(self, key: str) -> Any:
        """Deserialise one cached outcome (hit/miss accounting lives in
        :class:`repro.farm.engine.FarmStats`, not here)."""
        blob = self.backend.get(self._result_key(key))
        try:
            return loads_framed(self.codec.decode(blob))
        except Exception as exc:
            raise StorageError(
                f"cached result {key[:12]}… failed to decode: {exc}"
            ) from exc

    def put(self, key: str, value: Any) -> None:
        self.backend.put(self._result_key(key), self.codec.encode(dumps_framed(value)))

    def delete(self, key: str) -> None:
        self.backend.delete(self._result_key(key))

    def keys(self) -> Iterator[str]:
        for full in self.backend.keys("results/"):
            yield full.rsplit("/", 1)[-1]

    def entry_count(self) -> int:
        return sum(1 for _ in self.keys())

    def bytes_at_rest(self) -> int:
        return sum(self.backend.size(k) for k in self.backend.keys("results/"))
