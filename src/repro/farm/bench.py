"""The bench-trajectory recorder.

Every farm campaign stamps one record — wall seconds, total virtual time,
cache-hit accounting — into a JSON trajectory file (``BENCH_5.json`` by
convention: the perf baseline this PR series measures itself against).
The file accumulates: cold runs and warm runs land as successive records,
so a trajectory with a cold/warm pair directly exhibits the cache's
speedup and CI can diff hit counts across pushes.

Wall-clock readings live *only* here, never inside cached bytes — the
trajectory is observability, excluded from every determinism comparison.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Optional

from repro.farm.engine import FarmStats
from repro.util.serialization import atomic_write_bytes

#: Conventional trajectory path for this PR series.
DEFAULT_BENCH_PATH = "BENCH_5.json"


class BenchRecorder:
    """Appends per-campaign records to a JSON trajectory file."""

    def __init__(self, path: str = DEFAULT_BENCH_PATH) -> None:
        self.path = path

    def load(self) -> dict:
        if not os.path.exists(self.path):
            return {"bench": "repro.farm", "records": []}
        with open(self.path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        doc.setdefault("records", [])
        return doc

    def record(
        self,
        label: str,
        stats: FarmStats,
        *,
        virtual_time: Optional[float] = None,
        extra: Optional[dict[str, Any]] = None,
    ) -> dict:
        """Append one campaign record and rewrite the trajectory atomically."""
        doc = self.load()
        entry: dict[str, Any] = {
            "label": label,
            "timestamp": time.time(),
            "wall_seconds": stats.wall_seconds,
            "cells": stats.cells,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "executed": stats.executed,
            "uncached": stats.uncached,
            "hit_rate": stats.hit_rate,
        }
        if virtual_time is not None:
            entry["virtual_time"] = virtual_time
        if extra:
            entry.update(extra)
        # The unified-registry rendering of the same numbers (flat keys
        # above stay for existing consumers; repro.bench.trajectory reads
        # either).
        from repro.trace.metrics import farm_metrics

        entry["metrics"] = farm_metrics(stats).snapshot()
        doc["records"].append(entry)
        atomic_write_bytes(
            self.path, json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")
        )
        return entry
