"""``python -m repro.farm`` — see :mod:`repro.farm.cli`."""

import sys

from repro.farm.cli import main

if __name__ == "__main__":
    sys.exit(main())
