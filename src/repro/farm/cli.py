"""``repro-farm`` — drive campaigns through the cached execution engine.

Examples::

    # A chaos campaign through the farm; the second invocation is ~all
    # cache hits and executes zero simulator cells.
    repro-farm run --dir .farm --mode chaos --seed 7 --count 50 \\
        --out chaos-report.json --bench-out BENCH_5.json

    # The CI farm-smoke recipe: sweep twice, require a warm cache.
    repro-farm run --dir .farm --mode sweep --apps laplace --seeds 3
    repro-farm run --dir .farm --mode sweep --apps laplace --seeds 3 \\
        --expect-hit-rate 0.9

    # What is in the farm directory?
    repro-farm status --dir .farm

    # Reclaim entries stranded by code changes.
    repro-farm gc --dir .farm

Exit status: 0 on success, 1 when scenarios failed or ``--expect-hit-rate``
was missed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.farm.bench import DEFAULT_BENCH_PATH, BenchRecorder
from repro.farm.engine import Farm


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-farm",
        description="Cached, resumable campaign execution over the C3 simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign through the farm")
    run.add_argument("--dir", default=".farm", help="farm directory (cache + jobs)")
    run.add_argument(
        "--mode", choices=("chaos", "sweep"), default="chaos",
        help="campaign family: a chaos campaign or a variant sweep",
    )
    run.add_argument("--seed", type=int, default=7, help="campaign master seed")
    run.add_argument("--count", type=int, default=50, help="chaos scenario count")
    run.add_argument(
        "--apps", default="laplace,dense_cg",
        help="comma-separated registered app names",
    )
    run.add_argument(
        "--kinds", default=None,
        help="chaos: comma-separated scenario families to restrict to",
    )
    run.add_argument(
        "--seeds", type=int, default=2,
        help="sweep: number of seeds per app (seed, seed+1, …)",
    )
    run.add_argument("--nprocs", type=int, default=4, help="sweep: world size")
    run.add_argument("--codec", default="none", help="cache blob codec (none/zlib/lzma)")
    run.add_argument("--out", default=None, help="write the JSON campaign report here")
    run.add_argument(
        "--bench-out", default=None,
        help=f"append a bench-trajectory record here (e.g. {DEFAULT_BENCH_PATH})",
    )
    run.add_argument(
        "--label", default=None, help="bench-trajectory record label"
    )
    run.add_argument(
        "--expect-hit-rate", type=float, default=None,
        help="fail unless the run's cache-hit rate reaches this fraction",
    )
    run.add_argument("--serial", action="store_true", help="run in-process")
    run.add_argument("--max-workers", type=int, default=None, help="pool width")

    status = sub.add_parser("status", help="job and cache accounting")
    status.add_argument("--dir", default=".farm")

    gc = sub.add_parser("gc", help="drop stale-salt entries and orphan results")
    gc.add_argument("--dir", default=".farm")

    return parser


# --------------------------------------------------------------------- #


def _run_chaos(args, farm: Farm) -> tuple[int, float, dict]:
    from repro.chaos.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        master_seed=args.seed,
        count=args.count,
        apps=tuple(a for a in args.apps.split(",") if a),
        kinds=(
            tuple(k for k in args.kinds.split(",") if k)
            if args.kinds is not None
            else None
        ),
    )
    report = run_campaign(
        config,
        parallel=not args.serial,
        max_workers=args.max_workers,
        farm=farm,
    )
    print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.out}")
    virtual = sum(v.virtual_time for v in report.verdicts)
    extra = {
        "mode": "chaos",
        "passed": report.passed,
        "failed": len(report.failures),
    }
    return (1 if report.failures else 0), virtual, extra


def _run_sweep(args, farm: Farm) -> tuple[int, float, dict]:
    from repro.api.session import Session
    from repro.runtime.config import RunConfig

    session = Session(max_workers=args.max_workers)
    apps = [a for a in args.apps.split(",") if a]
    total_virtual = 0.0
    rows = 0
    for app in apps:
        result = session.sweep(
            app,
            RunConfig(nprocs=args.nprocs),
            seeds=range(args.seed, args.seed + args.seeds),
            parallel=not args.serial,
            max_workers=args.max_workers,
            farm=farm,
        )
        rows += len(result)
        total_virtual += sum(r.outcome.total_virtual_time for r in result)
    print(f"sweep: {rows} cells over {len(apps)} app(s)")
    return 0, total_virtual, {"mode": "sweep", "cells": rows}


def _print_stats(farm: Farm) -> None:
    stats = farm.total_stats
    print(
        f"farm: {stats.cells} cells — {stats.hits} hits, "
        f"{stats.executed} executed, {stats.uncached} uncached "
        f"(hit rate {stats.hit_rate:.1%}, {stats.wall_seconds:.1f}s)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command in ("status", "gc") and not os.path.isdir(args.dir):
        # Read-only subcommands must not conjure an empty farm out of a
        # typo'd path and report it as "no jobs".
        print(f"no farm directory at {args.dir!r}", file=sys.stderr)
        return 2
    if args.command == "status":
        print(json.dumps(Farm(args.dir).status(), indent=2))
        return 0
    if args.command == "gc":
        swept = Farm(args.dir).gc()
        print(
            f"gc: removed {swept['stale_jobs']} stale job(s), "
            f"{swept['failed_jobs']} failed job(s), "
            f"{swept['orphan_results']} orphan result(s)"
        )
        return 0

    farm = Farm(args.dir, codec=args.codec)
    runner = _run_chaos if args.mode == "chaos" else _run_sweep
    code, virtual_time, extra = runner(args, farm)
    _print_stats(farm)

    if args.bench_out:
        label = args.label or f"{args.mode}-seed{args.seed}"
        entry = BenchRecorder(args.bench_out).record(
            label, farm.total_stats, virtual_time=virtual_time, extra=extra
        )
        print(f"bench record appended to {args.bench_out}: {json.dumps(entry)}")

    if args.expect_hit_rate is not None:
        rate = farm.total_stats.hit_rate
        if rate < args.expect_hit_rate:
            print(
                f"cache hit rate {rate:.1%} below required "
                f"{args.expect_hit_rate:.1%}", file=sys.stderr,
            )
            return 1
        print(f"cache hit rate {rate:.1%} >= required {args.expect_hit_rate:.1%}")
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
