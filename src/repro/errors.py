"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without masking programming errors.  The stopping
fault model of the paper is represented by :class:`ProcessKilled`, which is
raised *inside* a simulated rank when fault injection stops it, and by
:class:`FailureDetected`, which surfaces at the simulator level when the
failure detector notices a dead peer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value or combination."""


class SimMPIError(ReproError):
    """Base class for errors raised by the MPI simulator substrate."""


class ProcessKilled(SimMPIError):
    """Injected stopping fault: the raising rank must cease all activity.

    This exception is raised at the faulty rank's next scheduling point and
    must never be caught by application code; the simulator uses it to tear
    the rank down silently (the rank neither sends nor receives afterwards),
    matching the paper's stopping failure model.
    """

    def __init__(self, rank: int, at_time: float) -> None:
        super().__init__(f"rank {rank} killed at t={at_time:.6f}")
        self.rank = rank
        self.at_time = at_time


class FailureDetected(SimMPIError):
    """The distributed failure detector reported one or more dead ranks."""

    def __init__(self, dead_ranks: tuple[int, ...], at_time: float) -> None:
        ranks = ",".join(map(str, dead_ranks))
        super().__init__(f"failure of rank(s) {ranks} detected at t={at_time:.6f}")
        self.dead_ranks = tuple(dead_ranks)
        self.at_time = at_time


class DeadlockError(SimMPIError):
    """All live ranks are blocked and no message can unblock any of them."""


class MatchError(SimMPIError):
    """A receive or wait was posted with arguments that can never match."""


class ProtocolError(ReproError):
    """The C3 coordination protocol reached an inconsistent state."""


class PiggybackError(ProtocolError):
    """Piggyback encoding/decoding failure (e.g. messageID overflow)."""


class RecoveryError(ReproError):
    """Restart from a checkpoint could not be completed."""


class CheckpointError(ReproError):
    """A local checkpoint could not be written or read."""


class StorageError(CheckpointError):
    """Stable storage failure (corrupt frame, missing commit record...)."""


class ManifestCorruptError(StorageError):
    """A generation manifest failed its checksum — the generation is torn
    or bit-rotted and must not be used for recovery."""


class PrecompilerError(ReproError):
    """The source-to-source precompiler rejected or mis-handled input."""


class UnsupportedConstructError(PrecompilerError):
    """Source uses a construct outside the checkpointable subset.

    Carries the offending node's span (``lineno``/``col_offset``) and the
    containing function's name when the caller knows them, and — when the
    precompiler validated a whole unit — the complete ``violations`` list,
    so one failure reports every offending construct, not just the first.
    """

    def __init__(
        self,
        construct: str,
        lineno: int | None = None,
        hint: str = "",
        *,
        col_offset: int | None = None,
        function: str | None = None,
        violations: tuple | None = None,
    ) -> None:
        where = ""
        if lineno is not None:
            where = f" at line {lineno}"
            if col_offset is not None:
                where += f":{col_offset + 1}"
        if function:
            where += f" in {function!r}"
        extra = f" ({hint})" if hint else ""
        message = f"unsupported construct {construct!r}{where}{extra}"
        if violations and len(violations) > 1:
            lines = [f"{len(violations)} unsupported constructs:"]
            lines += [f"  {v.describe()}" for v in violations]
            message = "\n".join(lines)
        super().__init__(message)
        self.construct = construct
        self.lineno = lineno
        self.col_offset = col_offset
        self.function = function
        #: Every subset violation found in the unit (``Violation`` records
        #: from :mod:`repro.precompiler.analysis`); at least one entry.
        self.violations = tuple(violations) if violations else ()


class CheckError(ReproError):
    """Static verification (:mod:`repro.check`) found error diagnostics.

    ``diagnostics`` holds the :class:`repro.check.Diagnostic` records —
    the same ones the ``repro-check`` CLI renders."""

    def __init__(self, rendered: str, diagnostics: tuple = ()) -> None:
        super().__init__(rendered)
        self.diagnostics = tuple(diagnostics)


class HeapError(ReproError):
    """Managed heap misuse (double free, foreign pointer...)."""


class FarmError(ReproError):
    """Campaign-execution engine failure (cache, job queue, or cell)."""


class FarmJobError(FarmError):
    """One or more farm cells failed permanently (attempts exhausted)."""

    def __init__(self, failures: list[tuple[str, str]]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} farm cell(s) failed:"]
        for key, error in self.failures[:5]:
            lines.append(f"  {key[:12]}…: {error}")
        if len(self.failures) > 5:
            lines.append(f"  … and {len(self.failures) - 5} more")
        super().__init__("\n".join(lines))
