"""``repro.api``: the canonical public surface of the reproduction.

Applications are written against :class:`CommLike` (implemented by the C3
protocol layer for variants V1–V3 and by :class:`RawCommAdapter` for V0),
registered via :class:`AppSpec`/:func:`app`, and executed through a
:class:`Session` — one object owning storage, cost models and sweep
parallelism.  ``repro/__init__.py`` re-exports the stable names.
"""

from repro.api.comms import CommLike, RawCommAdapter, RawHandle
from repro.api.registry import AppSpec, app, get_app, list_apps, register
from repro.api.session import (
    ALL_VARIANTS,
    RunRow,
    Session,
    SweepCell,
    SweepResult,
    default_storage_factory,
)

__all__ = [
    "ALL_VARIANTS",
    "AppSpec",
    "CommLike",
    "RawCommAdapter",
    "RawHandle",
    "RunRow",
    "Session",
    "SweepCell",
    "SweepResult",
    "app",
    "default_storage_factory",
    "get_app",
    "list_apps",
    "register",
]
