"""Application registration: one way to name a driver-runnable program.

The driver accepts any callable ``app_main(ctx)``; the paper's benchmark
applications are :class:`~repro.precompiler.api.PrecompiledApp` units built
by per-module ``build(params)`` factories.  :class:`AppSpec` unifies the
two shapes behind a name, which buys three things:

* ``session.run("dense_cg", cfg, params=...)`` — no import plumbing in
  harness or example code;
* sweeps can rehydrate an application *inside a worker process* from
  ``(module, name, params)`` — precompiled units hold exec'd code objects
  and cannot be pickled, but their specs can be re-imported anywhere;
* the catalogue in :mod:`repro.apps.workloads` is enumerable.

Register a factory (``params -> app_main``) explicitly::

    SPEC = register(AppSpec("dense_cg", factory=build, default_params=CGParams()))

or decorate a plain ``main(ctx)`` function::

    @repro.app
    def my_solver(ctx): ...
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ConfigError

#: Anything the recovery driver can execute for one rank.
AppMain = Callable[[Any], Any]

_REGISTRY: dict[str, "AppSpec"] = {}

#: Modules searched (in order) when an unknown name is looked up; importing
#: them runs their ``register`` calls.  The paper's catalogue registers all
#: three benchmark applications.
AUTOLOAD_MODULES = ("repro.apps.workloads",)


@dataclass(frozen=True)
class AppSpec:
    """A named, rebuildable application."""

    name: str
    #: ``factory(params)`` returns a driver-ready ``app_main`` callable.
    factory: Callable[[Any], AppMain]
    default_params: Any = None
    description: str = ""
    #: Module whose import (re)registers this spec — how worker processes
    #: rehydrate it.  Defaults to the factory's defining module.
    module: str = field(default="")

    def __post_init__(self) -> None:
        if not self.module:
            object.__setattr__(
                self, "module", getattr(self.factory, "__module__", "") or ""
            )

    def build(self, params: Any = None) -> AppMain:
        """Instantiate the application for ``params`` (default size if None)."""
        return self.factory(params if params is not None else self.default_params)


class _FunctionApp:
    """Driver adapter for a plain ``main(ctx)`` function: exposes run
    parameters as ``ctx.params``, like :class:`PrecompiledApp` does."""

    def __init__(self, fn: AppMain, params: Any) -> None:
        self.fn = fn
        self.params = params

    def __call__(self, ctx: Any) -> Any:
        ctx.params = self.params
        return self.fn(ctx)


def register(spec: AppSpec) -> AppSpec:
    """Add ``spec`` to the registry (idempotent per name+module)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.module != spec.module:
        raise ConfigError(
            f"app {spec.name!r} already registered by {existing.module!r}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def app(fn: Optional[AppMain] = None, *, name: str = "", default_params: Any = None):
    """Decorator registering a plain ``main(ctx)`` function as an app.

    Usable bare (``@repro.app``) or configured
    (``@repro.app(name="ring", default_params=...)``).  The decorated
    function is returned unchanged; its spec wraps it so ``ctx.params``
    carries the sweep/run parameters.
    """

    def decorate(target: AppMain) -> AppMain:
        doc = (target.__doc__ or "").strip()
        spec = AppSpec(
            name=name or target.__name__,
            factory=lambda params, _fn=target: _FunctionApp(_fn, params),
            default_params=default_params,
            description=doc.splitlines()[0] if doc else "",
            module=target.__module__,
        )
        register(spec)
        target.__app_spec__ = spec  # type: ignore[attr-defined]
        return target

    if fn is not None:
        return decorate(fn)
    return decorate


def get_app(name: str) -> AppSpec:
    """Look up a registered spec, importing the catalogue on first miss."""
    if name not in _REGISTRY:
        for module in AUTOLOAD_MODULES:
            importlib.import_module(module)
            if name in _REGISTRY:
                break
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigError(f"unknown app {name!r}; registered: {known}") from None


def rehydrate(module: str, name: str) -> AppSpec:
    """Worker-process lookup: import the registering module, then resolve."""
    if module:
        importlib.import_module(module)
    return get_app(name)


def list_apps() -> dict[str, AppSpec]:
    """Snapshot of the registry (autoloading the catalogue first)."""
    for module in AUTOLOAD_MODULES:
        importlib.import_module(module)
    return dict(_REGISTRY)
