"""``Session``: one object that owns an experiment's resources.

The free-function driver (:func:`repro.runtime.driver.run_with_recovery`)
asks every caller to hand-wire storage, failure schedules and variant
loops.  A :class:`Session` centralises those defaults and adds the sweep
machinery the Figure-8 protocol implies:

* ``session.run(app, config)`` — one application, one configuration;
  ``app`` may be a registered name, an :class:`~repro.api.registry.AppSpec`
  or any driver-ready callable.
* ``session.sweep(app, base_config, variants=…, seeds=…, nprocs=…,
  grid=…)`` — the cross product of the requested axes, one fresh storage
  per cell, executed concurrently via ``ProcessPoolExecutor`` when the
  cells can be shipped to workers (registered apps can always be; closures
  fall back to in-process serial execution).  Every cell is an independent
  deterministic simulation, so parallel results are bit-identical to
  serial ones — ``parallel=False`` exists only for debugging.

The result is a :class:`SweepResult`: tidy per-cell rows, each carrying
its :class:`~repro.runtime.driver.RunOutcome`.
"""

from __future__ import annotations

import itertools
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.api.registry import AppMain, AppSpec, _FunctionApp, get_app, rehydrate
from repro.errors import ConfigError
from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import RunOutcome, run_with_recovery
from repro.simmpi.clock import CostModel
from repro.simmpi.failures import FailureSchedule
from repro.statesave.storage import Storage

if TYPE_CHECKING:  # pragma: no cover
    from repro.farm.engine import Farm

#: The four build variants of Section 6.2, in Figure-8 order.
ALL_VARIANTS = (
    Variant.UNMODIFIED,
    Variant.PIGGYBACK,
    Variant.NO_APP_STATE,
    Variant.FULL,
)

AppLike = Union[str, AppSpec, AppMain]
FailuresLike = Union[None, FailureSchedule, Callable[["SweepCell"], Optional[FailureSchedule]]]

_CONFIG_FIELDS = frozenset(f.name for f in fields(RunConfig))

_T = TypeVar("_T")

#: Shared enum-or-string coercion (also used by ``repro.chaos`` scenarios).
_coerce_variant = Variant.coerce


def default_storage_factory() -> Storage:
    """Fresh in-memory stable storage (one per run/sweep cell)."""
    return Storage(None)


# ===================================================================== #
# Sweep cells and results.
# ===================================================================== #


@dataclass(frozen=True)
class SweepCell:
    """Coordinates of one run within a sweep (one tidy-table key)."""

    app: str
    variant: Variant
    seed: int
    nprocs: int
    params: Any = None
    #: Extra ``RunConfig`` field overrides from the ``grid`` axis.
    overrides: tuple[tuple[str, Any], ...] = ()


@dataclass
class RunRow:
    """One tidy row of a sweep table: cell coordinates plus the outcome."""

    cell: SweepCell
    outcome: RunOutcome

    def as_dict(self) -> dict[str, Any]:
        """One flat table row, derived from the unified metrics snapshot.

        Column names and types are stable (they predate the registry);
        only the source changed — every numeric column now reads from
        ``outcome.metrics_snapshot()`` so tables, chaos reports and bench
        records cannot drift apart.  ``wall_seconds`` is read directly:
        the snapshot deliberately excludes run-level wall clock.
        """
        from repro.trace.metrics import snapshot_get

        row: dict[str, Any] = {
            "app": self.cell.app,
            "variant": self.cell.variant.value,
            "seed": self.cell.seed,
            "nprocs": self.cell.nprocs,
            "params": self.cell.params,
        }
        row.update(self.cell.overrides)
        snap = self.outcome.metrics_snapshot()

        def counter(name: str) -> float:
            return snapshot_get(snap, "counters", name, 0.0)

        stage_calls: dict[str, int] = {}
        for name, value in snap["counters"].items():
            if name.startswith("proto.stage_calls."):
                stage_calls[name[len("proto.stage_calls."):]] = int(value)
        stage_seconds: dict[str, float] = {}
        for name, hist in snap["histograms"].items():
            if name.startswith("proto.stage_seconds."):
                stage_seconds[name[len("proto.stage_seconds."):]] = hist["sum"]
        row.update(
            results=self.outcome.results,
            attempts=int(snapshot_get(snap, "gauges", "run.attempts", 0.0)),
            restarts=int(snapshot_get(snap, "gauges", "run.restarts", 0.0)),
            virtual_time=snapshot_get(snap, "gauges", "run.virtual_time", 0.0),
            wall_seconds=self.outcome.total_wall_seconds,
            checkpoints_committed=int(counter("ckpt.commits")),
            storage_bytes=int(counter("store.bytes_written")),
            network_messages=int(counter("net.messages")),
            network_bytes=int(counter("net.bytes")),
            stage_calls=stage_calls,
            stage_seconds=stage_seconds,
        )
        return row


class SweepResult:
    """Ordered collection of sweep rows (cell order is the axis product)."""

    def __init__(self, rows: list[RunRow]) -> None:
        self.rows = rows
        #: Cache/queue accounting when the sweep ran through a farm
        #: (:class:`repro.farm.FarmStats`); None for direct execution.
        self.farm_stats = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def table(self) -> list[dict[str, Any]]:
        """The tidy table: one flat dict per cell."""
        return [row.as_dict() for row in self.rows]

    def select(self, **coords: Any) -> list[RunRow]:
        """Rows whose cell matches every given coordinate.

        ``variant`` accepts the enum or its string spelling —
        ``select(variant=Variant.FULL)`` and ``select(variant="full")``
        are the same query."""
        if "variant" in coords:
            coords = dict(coords, variant=_coerce_variant(coords["variant"]))
        out = []
        for row in self.rows:
            cell_view = dict(row.cell.overrides)
            cell_view.update(
                app=row.cell.app,
                variant=row.cell.variant,
                seed=row.cell.seed,
                nprocs=row.cell.nprocs,
                params=row.cell.params,
            )
            if all(cell_view.get(k) == v for k, v in coords.items()):
                out.append(row)
        return out

    def outcome(self, **coords: Any) -> RunOutcome:
        """The unique outcome at the given coordinates (``variant`` may be
        an enum or its string spelling, as in :meth:`select`)."""
        rows = self.select(**coords)
        if len(rows) != 1:
            raise ConfigError(
                f"coordinates {coords!r} match {len(rows)} cells, expected 1"
            )
        return rows[0].outcome

    def by_variant(self) -> dict[Variant, RunOutcome]:
        """``{variant: outcome}`` — the ``run_variant_suite`` shape.

        Requires the variant axis to be the only one with multiple values.
        """
        out: dict[Variant, RunOutcome] = {}
        for row in self.rows:
            if row.cell.variant in out:
                raise ConfigError(
                    "by_variant() needs a sweep whose only multi-valued axis "
                    "is the variant"
                )
            out[row.cell.variant] = row.outcome
        return out


# ===================================================================== #
# Cell execution (module-level so payloads can cross process boundaries).
# ===================================================================== #


def _build_app(app_ref: tuple, params: Any) -> AppMain:
    kind = app_ref[0]
    if kind == "spec":
        _, module, name = app_ref
        return rehydrate(module, name).build(params)
    fn = app_ref[1]
    if params is None:
        return fn
    return _FunctionApp(fn, params)


def _cell_cacheable(payload: tuple) -> bool:
    """Farm-cache eligibility of one sweep cell.

    Only cells with per-run in-memory storage (the ``("config", None)``
    spec) are cached: cells persisting checkpoints to their own directory
    — or building storage through a user factory — have side effects a
    cache hit would silently skip."""
    return payload[4][0] == "config"


def _cell_label(payload: tuple) -> str:
    cell = payload[1]
    return (
        f"{cell.app}/{cell.variant.value} seed={cell.seed} np={cell.nprocs}"
        + (f" params={cell.params!r}" if cell.params is not None else "")
    )


def _execute_cell(payload: tuple) -> RunOutcome:
    """Run one sweep cell; works identically in-process and in a worker."""
    app_ref, cell, config, failure_spec, storage_spec = payload
    app_main = _build_app(app_ref, cell.params)
    kill_events, ckpt_crashes = failure_spec
    failures = (
        FailureSchedule(kill_events, checkpoint_crashes=ckpt_crashes)
        if kill_events or ckpt_crashes
        else None
    )
    kind, value = storage_spec
    if kind == "path":
        # The cell's own ckpt_* knobs apply at the per-cell directory.
        storage = Storage.from_config(replace(config, storage_path=value))
        # Every sweep cell starts from a fresh storage (the documented
        # contract).  The per-cell slug normally guarantees an empty
        # directory, but a retried cell — e.g. the serial fallback after a
        # worker-pool failure part-way through — must not resume from its
        # own first pass's checkpoints and skew the row's accounting.
        if storage.committed_epoch() is not None or storage.store.streams():
            storage.wipe()
    elif kind == "config":
        storage = Storage.from_config(config)  # in-memory, knobs honoured
    else:
        storage = value()
    return run_with_recovery(app_main, config, failures=failures, storage=storage)


# ===================================================================== #
# The Session facade.
# ===================================================================== #


class Session:
    """Owns storage, cost-model and parallelism defaults for experiments.

    Parameters
    ----------
    storage_factory:
        Zero-argument callable producing a fresh :class:`Storage` per run.
        Defaults to in-memory storage.  For sweeps to run in parallel the
        factory must be picklable (a module-level function).
    cost_model:
        When given, applied to every config that still carries the default
        :class:`CostModel`.
    max_workers:
        Process-pool width for sweeps; defaults to ``os.cpu_count()``
        capped by the number of cells.
    """

    def __init__(
        self,
        storage_factory: Optional[Callable[[], Storage]] = None,
        cost_model: Optional[CostModel] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.storage_factory = storage_factory or default_storage_factory
        #: Whether the caller supplied a factory.  Without one, storages are
        #: built from each config's ckpt_* knobs (Storage.from_config), so
        #: codec/retention settings are honoured even in-memory.
        self._explicit_factory = storage_factory is not None
        self.cost_model = cost_model
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #

    def _apply_defaults(self, config: RunConfig) -> RunConfig:
        if self.cost_model is not None and config.cost_model == CostModel():
            config = replace(config, cost_model=self.cost_model)
        return config

    def _app_ref(self, app: AppLike) -> tuple:
        """Normalise an app argument to a portable reference tuple."""
        if isinstance(app, str):
            spec = get_app(app)
            return ("spec", spec.module, spec.name)
        if isinstance(app, AppSpec):
            return ("spec", app.module, app.name)
        spec = getattr(app, "__app_spec__", None)
        if isinstance(spec, AppSpec):
            return ("spec", spec.module, spec.name)
        if callable(app):
            return ("callable", app)
        raise ConfigError(f"not a runnable application: {app!r}")

    @staticmethod
    def _app_name(app: AppLike) -> str:
        if isinstance(app, str):
            return app
        if isinstance(app, AppSpec):
            return app.name
        return getattr(app, "__name__", type(app).__name__)

    def _run_check(self, app: AppLike, level: str) -> None:
        """Static verification before a run (``check="warn"``/``"error"``).

        Registered apps are checked through their defining module; plain
        functions through their own source.  Callables whose source cannot
        be read (precompiled units were already checked at compile time)
        are skipped.
        """
        import inspect
        import sys

        from repro.check.driver import check_app, check_functions

        if level not in ("warn", "error"):
            raise ConfigError(
                f"check must be 'off', 'warn' or 'error', got {level!r}"
            )
        spec = app if isinstance(app, AppSpec) else getattr(app, "__app_spec__", None)
        if isinstance(app, str):
            result = check_app(app)
        elif isinstance(spec, AppSpec):
            result = check_app(spec.name)
        elif inspect.isfunction(app):
            try:
                inspect.getsource(app)
            except (OSError, TypeError):
                return  # REPL / exec-defined function: nothing to analyse
            result = check_functions([app], target=self._app_name(app))
        else:
            return
        if not result.ok and level == "error":
            from repro.errors import CheckError

            raise CheckError(result.render(), diagnostics=result.errors)
        if result.diagnostics and level == "warn":
            print(result.render(), file=sys.stderr)

    # ------------------------------------------------------------------ #

    def run(
        self,
        app: AppLike,
        config: RunConfig,
        *,
        params: Any = None,
        failures: Optional[FailureSchedule] = None,
        storage: Optional[Storage] = None,
        check: Optional[str] = None,
    ) -> RunOutcome:
        """Execute one application under one configuration.

        ``params`` reaches the application as ``ctx.params`` (for a spec,
        ``None`` means the spec's default parameters; for a bare callable,
        ``None`` leaves the callable untouched).  ``check`` overrides the
        config's ``check`` level: ``"warn"`` prints static-verifier
        findings before running, ``"error"`` refuses to run an app with
        error findings (:class:`~repro.errors.CheckError`).
        """
        config = self._apply_defaults(config)
        level = check if check is not None else config.check
        if level != "off":
            self._run_check(app, level)
        app_main = _build_app(self._app_ref(app), params)
        if storage is None:
            if config.storage_path is not None or not self._explicit_factory:
                storage = Storage.from_config(config)
            else:
                storage = self.storage_factory()
        return run_with_recovery(app_main, config, failures=failures, storage=storage)

    # ------------------------------------------------------------------ #

    def sweep(
        self,
        app: AppLike,
        base_config: Optional[RunConfig] = None,
        *,
        variants: Sequence[Variant] = ALL_VARIANTS,
        seeds: Optional[Iterable[int]] = None,
        nprocs: Optional[Iterable[int]] = None,
        params: Optional[Iterable[Any]] = None,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        failures: FailuresLike = None,
        storage_factory: Optional[Callable[[], Storage]] = None,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        farm: Optional["Farm"] = None,
        check: Optional[str] = None,
    ) -> SweepResult:
        """Run the cross product of the requested axes.

        Cell order is the axis product in the order
        ``variants × seeds × nprocs × params × grid``; results always come
        back in that order regardless of execution backend, and each cell
        gets a fresh storage so checkpoints cannot leak between cells.
        When a cell's config names a ``storage_path`` (and no explicit
        ``storage_factory`` overrides it), the cell persists to a unique
        subdirectory of that path.

        ``farm`` routes execution through a :class:`repro.farm.Farm`:
        cells whose fingerprint is already cached are returned without
        running a simulator (bit-identical outcomes), the rest become
        durable, resumable jobs.  Cells that persist checkpoints
        externally (``storage_path`` or a factory) run uncached.  The
        returned :class:`SweepResult` carries ``farm_stats``.
        """
        base_config = base_config if base_config is not None else RunConfig(nprocs=4)
        base_config = self._apply_defaults(base_config)
        level = check if check is not None else base_config.check
        if level != "off":
            # Once up front — every cell runs the same application.
            self._run_check(app, level)
        app_ref = self._app_ref(app)
        app_name = self._app_name(app)
        variants = tuple(_coerce_variant(v) for v in variants)

        seed_axis = tuple(seeds) if seeds is not None else (base_config.seed,)
        nprocs_axis = tuple(nprocs) if nprocs is not None else (base_config.nprocs,)
        params_axis = tuple(params) if params is not None else (None,)
        grid = dict(grid or {})
        reserved = {"variant", "seed", "nprocs"} & set(grid)
        if reserved:
            raise ConfigError(
                f"grid names fields with dedicated axes: {sorted(reserved)}; "
                "use the variants=/seeds=/nprocs= arguments instead"
            )
        unknown = set(grid) - _CONFIG_FIELDS
        if unknown:
            raise ConfigError(f"grid names unknown RunConfig fields: {sorted(unknown)}")
        grid_axes = [tuple((name, v) for v in values) for name, values in grid.items()]

        payloads = []
        cells = []
        for index, (variant, seed, np_, p, *grid_choice) in enumerate(
            itertools.product(
                tuple(variants), seed_axis, nprocs_axis, params_axis, *grid_axes
            )
        ):
            overrides = tuple(grid_choice)
            cell = SweepCell(
                app=app_name, variant=variant, seed=seed, nprocs=np_,
                params=p, overrides=overrides,
            )
            cfg = replace(
                base_config, variant=variant, seed=seed, nprocs=np_,
                **dict(overrides),
            )
            # Precedence matches Session.run: a config naming a
            # storage_path persists (only a sweep-argument factory
            # overrides that); otherwise an explicit factory wins; the
            # default is a fresh per-cell in-memory store built from the
            # cell's ckpt_* knobs.
            if storage_factory is None and cfg.storage_path is not None:
                # Persist where the config asks to, but never share a
                # directory between cells (one COMMIT record per store).
                slug = f"cell{index:04d}-{variant.value}-seed{seed}-np{np_}"
                storage_spec = ("path", os.path.join(cfg.storage_path, slug))
            elif storage_factory is not None:
                storage_spec = ("factory", storage_factory)
            elif self._explicit_factory:
                storage_spec = ("factory", self.storage_factory)
            else:
                storage_spec = ("config", None)
            sched = failures(cell) if callable(failures) else failures
            if sched is not None:
                failure_spec = (
                    tuple(sched.remaining()),
                    sched.remaining_checkpoint_crashes(),
                )
            else:
                failure_spec = ((), ())
            payloads.append((app_ref, cell, cfg, failure_spec, storage_spec))
            cells.append(cell)

        if farm is not None:
            outcomes = farm.map(
                _execute_cell,
                payloads,
                parallel=parallel,
                # The farm executes through its own Session; honour this
                # session's fan-out width when the call does not name one.
                max_workers=max_workers or self.max_workers,
                cacheable=_cell_cacheable,
                labels=_cell_label,
            )
        else:
            outcomes = self._execute(payloads, parallel, max_workers)
        result = SweepResult(
            [RunRow(cell=c, outcome=o) for c, o in zip(cells, outcomes)]
        )
        if farm is not None:
            result.farm_stats = farm.last_stats
        return result

    # ------------------------------------------------------------------ #

    def map(
        self,
        fn: Callable[[Any], _T],
        payloads: Iterable[Any],
        *,
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> list[_T]:
        """Apply ``fn`` to every payload under the session's fan-out policy.

        This is the primitive behind :meth:`sweep` (and the chaos
        campaign runner): a :class:`ProcessPoolExecutor` when ``fn`` and
        every payload can reach workers, an in-process loop otherwise.
        Results preserve payload order and — because every payload is an
        independent deterministic simulation — are bit-identical across
        the two backends.  ``fn`` must be a module-level callable for the
        parallel path to be eligible.
        """
        payloads = list(payloads)
        if parallel and len(payloads) > 1:
            try:
                # Probe everything the pool would serialise — the callable
                # and the *complete* payloads, including per-cell params and
                # grid values (a single unpicklable param used to reach the
                # pool and kill it instead of falling back).
                pickle.dumps((fn, payloads))
            except Exception:
                # Closures / ad-hoc objects cannot reach workers; the serial
                # path computes the identical result in-process.
                parallel = False
        if not parallel or len(payloads) <= 1:
            return [fn(p) for p in payloads]
        workers = min(
            len(payloads),
            max_workers or self.max_workers or os.cpu_count() or 1,
        )
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, payloads))
        except (pickle.PicklingError, BrokenProcessPool, AttributeError, TypeError):
            # Something escaped the probe (an object whose __reduce__ only
            # fails inside the pool, a worker that died mid-serialisation);
            # same payloads, same order, in-process.
            return [fn(p) for p in payloads]

    def _execute(
        self,
        payloads: list[tuple],
        parallel: bool,
        max_workers: Optional[int],
    ) -> list[RunOutcome]:
        return self.map(
            _execute_cell, payloads, parallel=parallel, max_workers=max_workers
        )
