"""The messaging surface shared by every variant: ``CommLike``.

The paper's architecture (Figure 2) interposes a *thin, uniform* MPI
surface between the application and the library.  This module pins that
surface down as a structural protocol so an application written against
``ctx.mpi`` runs unmodified under all four build variants of Section 6.2:

* :class:`CommLike` — a ``typing.Protocol`` (``@runtime_checkable``, so
  ``isinstance(x, CommLike)`` works) naming the point-to-point calls, the
  eight collectives plus barrier, the persistent-object constructors, and
  the two protocol hooks (``potential_checkpoint`` / ``nondet``).
* :class:`RawCommAdapter` — the V0 "Unmodified Program" implementation: a
  pass-through over a raw :class:`~repro.simmpi.comm.Comm` with no
  piggybacking, no logging and no checkpoints.  The protocol hooks are
  no-ops, so instrumented applications still run (and uninstrumented ones
  pay nothing).

The V1–V3 implementation is :class:`~repro.protocol.layer.C3Layer`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.errors import ProtocolError
from repro.protocol.layer import LayerStats
from repro.simmpi.comm import Comm
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.op import Op
from repro.simmpi.request import Request


@runtime_checkable
class CommLike(Protocol):
    """Structural type of the application-facing messaging surface.

    ``C3Layer`` and ``RawCommAdapter`` both satisfy it; ``C3AppContext.mpi``
    is typed against it.  Handles returned by ``isend``/``irecv`` and by the
    constructors are opaque — only this interface may consume them.
    """

    # -- point-to-point ------------------------------------------------- #

    def send(self, payload: Any, dest: int, tag: int = 0) -> None: ...

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Any: ...

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any: ...

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any: ...

    def wait(self, req: Any) -> Any: ...

    def test(self, req: Any) -> bool: ...

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any: ...

    # -- the eight collectives, plus barrier ---------------------------- #

    def bcast(self, obj: Any, root: int = 0, comm: Any = None) -> Any: ...

    def reduce(self, obj: Any, op: Op, root: int = 0, comm: Any = None) -> Any: ...

    def allreduce(self, obj: Any, op: Op, comm: Any = None) -> Any: ...

    def gather(self, obj: Any, root: int = 0, comm: Any = None) -> Any: ...

    def allgather(self, obj: Any, comm: Any = None) -> list[Any]: ...

    def scatter(self, objs: list[Any] | None, root: int = 0, comm: Any = None) -> Any: ...

    def alltoall(self, objs: list[Any], comm: Any = None) -> list[Any]: ...

    def scan(self, obj: Any, op: Op, comm: Any = None) -> Any: ...

    def barrier(self, comm: Any = None) -> None: ...

    # -- persistent opaque objects (Section 5.2) ------------------------ #

    def comm_dup(self, parent: Any = None) -> Any: ...

    def comm_split(self, color: int, key: int | None = None, parent: Any = None) -> Any: ...

    def op_create(self, name: str, fn: Callable[[Any, Any], Any]) -> Any: ...

    def comm_rank(self, handle: Any = None) -> int: ...

    def comm_size(self, handle: Any = None) -> int: ...

    # -- protocol hooks ------------------------------------------------- #

    def potential_checkpoint(self) -> bool: ...

    def nondet(self, compute: Callable[[], Any]) -> Any: ...


class RawHandle:
    """Opaque handle over a raw communicator or op (the V0 analogue of a
    pseudo-handle: same ``handle_id`` surface, no record/replay)."""

    __slots__ = ("kind", "handle_id", "_live")

    def __init__(self, kind: str, handle_id: int, live: Any) -> None:
        self.kind = kind
        self.handle_id = handle_id
        self._live = live

    def __repr__(self) -> str:  # pragma: no cover
        return f"RawHandle(kind={self.kind!r}, id={self.handle_id})"


class RawCommAdapter:
    """``CommLike`` over a bare simulator communicator (variant V0).

    No piggyback word is attached to any message and no protocol state is
    kept; the cost of every call is exactly the underlying library call.
    ``potential_checkpoint`` always answers False and ``nondet`` simply
    computes — so a fault-tolerance-instrumented application runs
    unmodified, it just is not protected.
    """

    def __init__(self, comm: Comm) -> None:
        self.comm = comm
        self.rank = comm.rank
        self.nprocs = comm.size
        self.stats = LayerStats()
        #: Accepted for surface parity with C3Layer; never invoked (there
        #: are no checkpoints to capture state for).
        self.state_provider: Optional[Callable[[], Any]] = None
        self._handles: dict[int, RawHandle] = {}
        self._next_handle_id = 0

    # ------------------------------------------------------------------ #

    def _new_handle(self, kind: str, live: Any) -> RawHandle:
        handle = RawHandle(kind, self._next_handle_id, live)
        self._next_handle_id += 1
        self._handles[handle.handle_id] = handle
        return handle

    def _resolve(self, handle: Any) -> Comm:
        if handle is None:
            return self.comm
        live = getattr(handle, "_live", None)
        if not isinstance(live, Comm):
            raise ProtocolError(f"not a communicator handle: {handle!r}")
        return live

    # -- point-to-point ------------------------------------------------- #

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        self.stats.sends += 1
        self.comm.send(payload, dest, tag)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        self.stats.sends += 1
        return self.comm.isend(payload, dest, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        self.stats.receives += 1
        return self.comm.recv(source, tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return self.comm.irecv(source, tag)

    def wait(self, req: Request) -> Any:
        if isinstance(req, Request) and not req.completed and hasattr(req, "_desc"):
            self.stats.receives += 1
        return req.wait()

    def test(self, req: Request) -> bool:
        return req.test()

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        self.stats.sends += 1
        self.stats.receives += 1
        return self.comm.sendrecv(payload, dest, recv_source, send_tag, recv_tag)

    # -- collectives ---------------------------------------------------- #

    def bcast(self, obj: Any, root: int = 0, comm: Any = None) -> Any:
        self.stats.collectives += 1
        return self._resolve(comm).bcast(obj, root)

    def reduce(self, obj: Any, op: Op, root: int = 0, comm: Any = None) -> Any:
        self.stats.collectives += 1
        return self._resolve(comm).reduce(obj, op, root)

    def allreduce(self, obj: Any, op: Op, comm: Any = None) -> Any:
        self.stats.collectives += 1
        return self._resolve(comm).allreduce(obj, op)

    def gather(self, obj: Any, root: int = 0, comm: Any = None) -> Any:
        self.stats.collectives += 1
        return self._resolve(comm).gather(obj, root)

    def allgather(self, obj: Any, comm: Any = None) -> list[Any]:
        self.stats.collectives += 1
        return self._resolve(comm).allgather(obj)

    def scatter(self, objs: list[Any] | None, root: int = 0, comm: Any = None) -> Any:
        self.stats.collectives += 1
        return self._resolve(comm).scatter(objs, root)

    def alltoall(self, objs: list[Any], comm: Any = None) -> list[Any]:
        self.stats.collectives += 1
        return self._resolve(comm).alltoall(objs)

    def scan(self, obj: Any, op: Op, comm: Any = None) -> Any:
        self.stats.collectives += 1
        return self._resolve(comm).scan(obj, op)

    def barrier(self, comm: Any = None) -> None:
        self.stats.collectives += 1
        self._resolve(comm).barrier()

    # -- persistent opaque objects -------------------------------------- #

    def comm_dup(self, parent: Any = None) -> RawHandle:
        return self._new_handle("comm", self._resolve(parent).dup())

    def comm_split(
        self, color: int, key: int | None = None, parent: Any = None
    ) -> Optional[RawHandle]:
        child = self._resolve(parent).split(color, key)
        if child is None:
            return None
        return self._new_handle("comm", child)

    def op_create(self, name: str, fn: Callable[[Any, Any], Any]) -> RawHandle:
        return self._new_handle("op", Op.create(name, fn))

    def attach_buffer(self, nbytes: int) -> None:
        """Library state change; nothing to record without a protocol."""

    def comm_rank(self, handle: Any = None) -> int:
        return self._resolve(handle).rank

    def comm_size(self, handle: Any = None) -> int:
        return self._resolve(handle).size

    # -- protocol hooks (no-ops) ---------------------------------------- #

    def potential_checkpoint(self) -> bool:
        return False

    def nondet(self, compute: Callable[[], Any]) -> Any:
        return compute()

    def request_checkpoint_now(self) -> None:
        raise ProtocolError("RawCommAdapter has no initiator (variant V0)")

    def skip_creation_replay(self) -> None:
        """Surface parity with C3Layer; V0 never restores."""
