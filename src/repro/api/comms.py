"""The messaging surface shared by every variant: ``CommLike``.

The paper's architecture (Figure 2) interposes a *thin, uniform* MPI
surface between the application and the library.  This module pins that
surface down as a structural protocol so an application written against
``ctx.mpi`` runs unmodified under all four build variants of Section 6.2:

* :class:`CommLike` — a ``typing.Protocol`` (``@runtime_checkable``, so
  ``isinstance(x, CommLike)`` works) naming the point-to-point calls, the
  eight collectives plus barrier, the persistent-object constructors, and
  the two protocol hooks (``potential_checkpoint`` / ``nondet``).
* :class:`RawCommAdapter` — the V0 "Unmodified Program" implementation:
  the :class:`~repro.protocol.stages.pipeline.ProtocolPipeline` with the
  *empty* stage stack.  Every call is a pass-through over a raw
  :class:`~repro.simmpi.comm.Comm` with no piggybacking, no logging and
  no checkpoints; the protocol hooks are no-ops, so instrumented
  applications still run (and uninstrumented ones pay nothing).  V0 and
  V1–V3 share one code path — the pipeline — differing only in which
  stages are stacked.

The V1–V3 implementation is :class:`~repro.protocol.layer.C3Layer`, the
facade over the same pipeline with the protocol stages present.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.protocol.layer import LayerStats  # noqa: F401  (historical re-export)
from repro.protocol.stages.pipeline import ProtocolPipeline, RawHandle  # noqa: F401
from repro.simmpi.comm import Comm
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.op import Op


@runtime_checkable
class CommLike(Protocol):
    """Structural type of the application-facing messaging surface.

    ``C3Layer`` and ``RawCommAdapter`` both satisfy it; ``C3AppContext.mpi``
    is typed against it.  Handles returned by ``isend``/``irecv`` and by the
    constructors are opaque — only this interface may consume them.
    """

    # -- point-to-point ------------------------------------------------- #

    def send(self, payload: Any, dest: int, tag: int = 0) -> None: ...

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Any: ...

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any: ...

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any: ...

    def wait(self, req: Any) -> Any: ...

    def test(self, req: Any) -> bool: ...

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any: ...

    # -- the eight collectives, plus barrier ---------------------------- #

    def bcast(self, obj: Any, root: int = 0, comm: Any = None) -> Any: ...

    def reduce(self, obj: Any, op: Op, root: int = 0, comm: Any = None) -> Any: ...

    def allreduce(self, obj: Any, op: Op, comm: Any = None) -> Any: ...

    def gather(self, obj: Any, root: int = 0, comm: Any = None) -> Any: ...

    def allgather(self, obj: Any, comm: Any = None) -> list[Any]: ...

    def scatter(self, objs: list[Any] | None, root: int = 0, comm: Any = None) -> Any: ...

    def alltoall(self, objs: list[Any], comm: Any = None) -> list[Any]: ...

    def scan(self, obj: Any, op: Op, comm: Any = None) -> Any: ...

    def barrier(self, comm: Any = None) -> None: ...

    # -- persistent opaque objects (Section 5.2) ------------------------ #

    def comm_dup(self, parent: Any = None) -> Any: ...

    def comm_split(self, color: int, key: int | None = None, parent: Any = None) -> Any: ...

    def op_create(self, name: str, fn: Callable[[Any, Any], Any]) -> Any: ...

    def comm_rank(self, handle: Any = None) -> int: ...

    def comm_size(self, handle: Any = None) -> int: ...

    # -- protocol hooks ------------------------------------------------- #

    def potential_checkpoint(self) -> bool: ...

    def nondet(self, compute: Callable[[], Any]) -> Any: ...


class RawCommAdapter(ProtocolPipeline):
    """``CommLike`` over a bare simulator communicator (variant V0).

    The empty stage stack: no piggyback word is attached to any message
    and no protocol state is kept; the cost of every call is exactly the
    underlying library call.  ``potential_checkpoint`` always answers
    False and ``nondet`` simply computes — so a fault-tolerance-
    instrumented application runs unmodified, it just is not protected.
    """

    def __init__(self, comm: Comm) -> None:
        super().__init__(comm, stages=())
