"""The protocol initiator (paper Section 4.1).

"A distinguished process called the initiator is responsible for initiating
and monitoring the protocol."  In this implementation the initiator logic is
a component embedded in rank 0's protocol layer; it runs whenever that layer
processes control traffic.

Wave lifecycle::

    IDLE --initiate()--> COLLECTING_READY --all readyToStopLogging-->
         (send stopLogging to all) COLLECTING_STOPPED
         --all stoppedLogging--> commit + gc --> IDLE

Two safety rules:

* at most one wave in flight (the paper's standing assumption that a global
  checkpoint completes before the next begins);
* after a restart, no wave may begin until every rank has reported
  ``ReplayDone`` — a checkpoint taken mid-replay would have to carry
  partially consumed logs, a complication the paper does not require.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simmpi import coop


class WavePhase(enum.Enum):
    IDLE = "idle"
    COLLECTING_READY = "collecting-ready"
    COLLECTING_STOPPED = "collecting-stopped"


@dataclass
class WaveStats:
    """Timing/counting record for one completed checkpoint wave."""

    epoch: int
    initiated_at: float
    committed_at: float = 0.0
    ready_times: dict[int, float] = field(default_factory=dict)
    stopped_times: dict[int, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.committed_at - self.initiated_at


class Initiator:
    """Coordinator state machine, embedded in rank 0's layer."""

    def __init__(
        self,
        nprocs: int,
        interval: Optional[float],
        send_control: Callable[[object, int], None],
        commit: Callable[[int, float], None],
        now: Callable[[], float],
        co_send_control: Optional[Callable[[object, int], Any]] = None,
    ) -> None:
        self.nprocs = nprocs
        self.interval = interval
        self._send_control = send_control
        #: Generator-function variant of ``send_control`` (the pipeline's
        #: ``_co_send_control``).  When set, the co_* methods route control
        #: traffic through it so a send is a resumable scheduling point;
        #: when absent (unit harnesses), the synchronous callback is used.
        self._co_send_control = co_send_control
        self._commit = commit
        self._now = now
        self.phase = WavePhase.IDLE
        self.target_epoch = 0
        self.ready: set[int] = set()
        self.stopped: set[int] = set()
        self.last_commit_time = 0.0
        self.awaiting_replay: set[int] = set()
        self.completed_waves: list[WaveStats] = []
        self._current: Optional[WaveStats] = None
        #: One-shot trigger for tests / explicit checkpoint requests.
        self.force_initiate = False

    # ------------------------------------------------------------------ #

    def begin_recovery(self, ranks: set[int]) -> None:
        """Block wave initiation until these ranks report ReplayDone."""
        self.awaiting_replay = set(ranks)
        self.phase = WavePhase.IDLE
        self.ready.clear()
        self.stopped.clear()

    def on_replay_done(self, rank: int) -> None:
        self.awaiting_replay.discard(rank)

    # ------------------------------------------------------------------ #
    # Wave lifecycle.  Each step is written once, as a generator (the
    # cooperative form); the synchronous entry points run the generator to
    # completion.  Outside a simulator (unit harnesses with recording
    # callbacks) the generators never suspend, so the sync wrappers are
    # exact equivalents of the historical methods.
    # ------------------------------------------------------------------ #

    def _co_send(self, msg: object, dest: int):
        if self._co_send_control is not None:
            yield from self._co_send_control(msg, dest)
        else:
            self._send_control(msg, dest)

    def poll(self, current_epoch: int) -> None:
        """Called from the layer's progress engine; may start a wave."""
        coop.run_inline(self.co_poll(current_epoch))

    def co_poll(self, current_epoch: int):
        if self.phase is not WavePhase.IDLE or self.awaiting_replay:
            return
        due = (
            self.interval is not None
            and self._now() - self.last_commit_time >= self.interval
        )
        if due or self.force_initiate:
            self.force_initiate = False
            yield from self.co_initiate(current_epoch)

    def initiate(self, current_epoch: int) -> None:
        """Phase 1: ask every process to checkpoint into ``current_epoch+1``."""
        coop.run_inline(self.co_initiate(current_epoch))

    def co_initiate(self, current_epoch: int):
        from repro.protocol.control import PleaseCheckpoint

        self.target_epoch = current_epoch + 1
        self.phase = WavePhase.COLLECTING_READY
        self.ready.clear()
        self.stopped.clear()
        self._current = WaveStats(epoch=self.target_epoch, initiated_at=self._now())
        msg = PleaseCheckpoint(epoch=self.target_epoch)
        for rank in range(self.nprocs):
            yield from self._co_send(msg, rank)

    def on_ready(self, rank: int, epoch: int) -> None:
        """Phase 2→3: collect readyToStopLogging; broadcast stopLogging."""
        coop.run_inline(self.co_on_ready(rank, epoch))

    def co_on_ready(self, rank: int, epoch: int):
        if epoch != self.target_epoch:
            return  # stale token from an aborted attempt
        self.ready.add(rank)
        if self._current is not None:
            self._current.ready_times[rank] = self._now()
        if self.phase is WavePhase.COLLECTING_READY and len(self.ready) == self.nprocs:
            from repro.protocol.control import StopLogging

            self.phase = WavePhase.COLLECTING_STOPPED
            msg = StopLogging(epoch=self.target_epoch)
            for r in range(self.nprocs):
                yield from self._co_send(msg, r)
            self._check_commit()

    def on_stopped(self, rank: int, epoch: int) -> None:
        """Phase 4: collect stoppedLogging; commit when complete.

        Note that stoppedLogging can legitimately arrive *before* the
        initiator broadcasts stopLogging: a process may terminate its log
        early upon receiving a message from a process that already stopped
        (paper Section 4.1, phase 4 condition (ii)).
        """
        if epoch != self.target_epoch:
            return
        self.stopped.add(rank)
        if self._current is not None:
            self._current.stopped_times[rank] = self._now()
        self._check_commit()

    def _check_commit(self) -> None:
        if (
            self.phase is WavePhase.COLLECTING_STOPPED
            and len(self.stopped) == self.nprocs
        ):
            now = self._now()
            self._commit(self.target_epoch, now)
            self.last_commit_time = now
            self.phase = WavePhase.IDLE
            if self._current is not None:
                self._current.committed_at = now
                self.completed_waves.append(self._current)
                self._current = None
