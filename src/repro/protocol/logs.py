"""Checkpoint-epoch logs (paper Sections 4.1 phase 2 and 4.5).

While a process is *logging* (from its local checkpoint until logging
terminates) it records everything its saved epoch boundary causally depends
on:

* :class:`LateMessageLog` — payloads of late messages, so they can be
  replayed to the application after restart (their senders will never
  resend them);
* :class:`NondetLog` — results of non-deterministic decisions, so
  re-execution reproduces the exact run that peers' checkpoints may have
  observed through early messages;
* :class:`CollectiveResultLog` — results of collective calls executed while
  logging (paper Section 4.5), replayed without communication because some
  participants will not re-execute the call;
* :class:`MatchLog` — which concrete message ``(source, messageID)``
  completed each application receive.  The paper folds receive-matching
  order into "non-deterministic decisions"; recording it per receive makes
  replay exact even for wildcard receives under non-FIFO delivery.

All four are plain record lists with cursor-based replay consumption, saved
to stable storage together at ``finalizeLog`` time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import RecoveryError


@dataclass
class LateRecord:
    """One logged late message."""

    source: int
    tag: int
    message_id: int
    payload: Any


@dataclass
class MatchRecord:
    """Which message completed one application receive."""

    source: int
    tag: int
    message_id: int
    was_late: bool


@dataclass
class CollectiveRecord:
    """Result of one collective executed while logging."""

    kind: str
    result: Any


class _CursorLog:
    """A record list with an append side and a replay cursor."""

    def __init__(self) -> None:
        self.records: list[Any] = []
        self.cursor = 0

    def append(self, record: Any) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.records)

    def peek(self) -> Any:
        if self.exhausted:
            raise RecoveryError(f"{type(self).__name__}: replay past end of log")
        return self.records[self.cursor]

    def next(self) -> Any:
        record = self.peek()
        self.cursor += 1
        return record

    def rewind(self) -> None:
        self.cursor = 0


class NondetLog(_CursorLog):
    """Results of non-deterministic decisions, in execution order."""


class MatchLog(_CursorLog):
    """Receive-completion records, in receive order."""


class CollectiveResultLog(_CursorLog):
    """Collective results, in call order."""


class LateMessageLog:
    """Late messages, consumable by (source, tag) or by exact message id.

    Unlike the cursor logs, late messages are consumed *by match*: during
    replay a receive descriptor pulls the specific logged message the match
    log names, and free-running receives after the replay window pull the
    oldest record matching ``(source, tag)``.
    """

    def __init__(self) -> None:
        self.records: list[LateRecord] = []
        self._consumed: list[bool] = []

    def append(self, record: LateRecord) -> None:
        self.records.append(record)
        self._consumed.append(False)

    def __len__(self) -> int:
        return len(self.records)

    def remaining(self) -> int:
        return sum(1 for c in self._consumed if not c)

    @property
    def exhausted(self) -> bool:
        return self.remaining() == 0

    def take_by_id(self, source: int, message_id: int) -> LateRecord | None:
        """Consume the logged late message with this exact identity."""
        for i, rec in enumerate(self.records):
            if not self._consumed[i] and rec.source == source and rec.message_id == message_id:
                self._consumed[i] = True
                return rec
        return None

    def take_matching(self, source: int, tag: int, any_source: int, any_tag: int) -> LateRecord | None:
        """Consume the oldest unconsumed record matching a receive descriptor."""
        for i, rec in enumerate(self.records):
            if self._consumed[i]:
                continue
            if source != any_source and rec.source != source:
                continue
            if tag != any_tag and rec.tag != tag:
                continue
            self._consumed[i] = True
            return rec
        return None

    def rewind(self) -> None:
        self._consumed = [False] * len(self.records)


@dataclass
class EpochLogs:
    """Everything ``finalizeLog`` writes for one checkpoint epoch."""

    epoch: int
    late: LateMessageLog = field(default_factory=LateMessageLog)
    nondet: NondetLog = field(default_factory=NondetLog)
    matches: MatchLog = field(default_factory=MatchLog)
    collectives: CollectiveResultLog = field(default_factory=CollectiveResultLog)

    def all_exhausted(self) -> bool:
        return (
            self.late.exhausted
            and self.nondet.exhausted
            and self.matches.exhausted
            and self.collectives.exhausted
        )

    def rewind(self) -> None:
        self.late.rewind()
        self.nondet.rewind()
        self.matches.rewind()
        self.collectives.rewind()

    def summary(self) -> dict[str, int]:
        return {
            "late": len(self.late),
            "nondet": len(self.nondet),
            "matches": len(self.matches),
            "collectives": len(self.collectives),
        }
