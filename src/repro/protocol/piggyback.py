"""Piggyback codecs (paper Section 4.2).

Every application message carries protocol metadata the receiver uses to
answer three questions: (1) is the message late, intra-epoch, or early?
(2) has the sender stopped logging?  (3) which message is this (for early-ID
suppression and deterministic replay)?

Two codecs implement the paper's two designs:

* :class:`FullCodec` — the straightforward encoding: the triple
  ``(epoch, amLogging, messageID)``.
* :class:`PackedCodec` — the optimised encoding: a single 32-bit integer
  holding the epoch **color** (epochs differ by at most one, so one bit
  suffices), the amLogging bit, and a 30-bit messageID.

Both decode to a common :class:`PiggybackInfo`.  The packed codec recovers
the sender's absolute epoch from the color and the receiver's own epoch —
which is exactly the inference the paper's classification rule performs, and
is validated against the full codec by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PiggybackError
from repro.util.intpack import pack_piggyback, unpack_piggyback


@dataclass(frozen=True)
class PiggybackInfo:
    """Decoded piggyback data as seen by a receiver.

    ``epoch`` is the sender's epoch at send time.  With the packed codec it
    is reconstructed relative to the receiver's epoch and is exact as long as
    the protocol's invariant (|sender_epoch - receiver_epoch| <= 1) holds.
    """

    epoch: int
    am_logging: bool
    message_id: int

    @property
    def color(self) -> int:
        return self.epoch & 1


class FullCodec:
    """Unoptimised piggyback: carries the epoch number explicitly."""

    name = "full"
    #: Wire overhead in bytes (epoch int + flag + id int), paper Section 4.2.
    overhead_bytes = 12

    def encode(self, epoch: int, am_logging: bool, message_id: int) -> tuple[int, bool, int]:
        if epoch < 0 or message_id < 0:
            raise PiggybackError(f"negative epoch/messageID ({epoch}, {message_id})")
        return (epoch, am_logging, message_id)

    def decode(self, wire: tuple[int, bool, int], receiver_epoch: int) -> PiggybackInfo:
        epoch, am_logging, message_id = wire
        return PiggybackInfo(epoch=epoch, am_logging=am_logging, message_id=message_id)


class PackedCodec:
    """Optimised piggyback: one 32-bit word (color + amLogging + messageID)."""

    name = "packed"
    overhead_bytes = 4

    def encode(self, epoch: int, am_logging: bool, message_id: int) -> int:
        return pack_piggyback(epoch & 1, am_logging, message_id)

    def decode(self, wire: int, receiver_epoch: int) -> PiggybackInfo:
        color, am_logging, message_id = unpack_piggyback(wire)
        epoch = infer_epoch_from_color(color, receiver_epoch)
        return PiggybackInfo(epoch=epoch, am_logging=am_logging, message_id=message_id)


def infer_epoch_from_color(color: int, receiver_epoch: int) -> int:
    """Recover a sender's absolute epoch from its color bit.

    Because at most one global checkpoint is in progress at a time, the
    sender's epoch is the receiver's epoch, one less, or one more; exactly
    one of ``receiver_epoch`` and ``receiver_epoch ± 1`` has the observed
    color.  When colors match the epochs are equal; when they differ the
    classification rule (paper Section 4.2) disambiguates late vs early by
    the *receiver's* logging state — but for epoch reconstruction we only
    need the adjacent epoch with the right color, whose late/early meaning
    the classifier resolves.
    """
    if (receiver_epoch & 1) == color:
        return receiver_epoch
    # Different color: adjacent epoch.  Choose the lower one canonically;
    # the classifier corrects to +1 for early messages (see classify()).
    return receiver_epoch - 1 if receiver_epoch > 0 else receiver_epoch + 1


def get_codec(name: str):
    """Codec factory (``"full"`` or ``"packed"``)."""
    if name == "full":
        return FullCodec()
    if name == "packed":
        return PackedCodec()
    raise PiggybackError(f"unknown piggyback codec {name!r}")
