"""The C3 non-blocking coordinated application-level checkpointing protocol.

This package is the paper's primary contribution: a coordination protocol
that works when checkpoints can only be taken at application-chosen points,
handling late and early messages, non-FIFO application-level delivery,
non-determinism, collective communication, and MPI library state — all from
a layer between the application and the MPI library (here, the simulator).
"""

from repro.protocol.classify import (
    MessageClass,
    classify_by_color,
    classify_by_epoch,
)
from repro.protocol.control import (
    MySendCount,
    PleaseCheckpoint,
    ReadyToStopLogging,
    ReplayDone,
    StopLogging,
    StoppedLogging,
    SuppressList,
)
from repro.protocol.initiator import Initiator, WavePhase
from repro.protocol.layer import C3Config, C3Layer, LayerStats
from repro.protocol.logs import (
    CollectiveRecord,
    EpochLogs,
    LateMessageLog,
    LateRecord,
    MatchLog,
    MatchRecord,
    NondetLog,
)
from repro.protocol.piggyback import (
    FullCodec,
    PackedCodec,
    PiggybackInfo,
    get_codec,
    infer_epoch_from_color,
)
from repro.protocol.pseudo_handles import PseudoHandle, PseudoRequest, RequestTable
from repro.protocol.stages import (
    ProtocolPipeline,
    ProtocolStage,
    StackSpec,
    list_stacks,
    list_stages,
    register_stack,
    register_stage,
    variant_stack,
)
from repro.protocol.state import ProtocolState

__all__ = [
    "ProtocolPipeline",
    "ProtocolStage",
    "StackSpec",
    "list_stacks",
    "list_stages",
    "register_stack",
    "register_stage",
    "variant_stack",
    "C3Config",
    "C3Layer",
    "CollectiveRecord",
    "EpochLogs",
    "FullCodec",
    "Initiator",
    "LateMessageLog",
    "LateRecord",
    "LayerStats",
    "MatchLog",
    "MatchRecord",
    "MessageClass",
    "MySendCount",
    "NondetLog",
    "PackedCodec",
    "PiggybackInfo",
    "PleaseCheckpoint",
    "ProtocolState",
    "PseudoHandle",
    "PseudoRequest",
    "ReadyToStopLogging",
    "ReplayDone",
    "RequestTable",
    "StopLogging",
    "StoppedLogging",
    "SuppressList",
    "WavePhase",
    "classify_by_color",
    "classify_by_epoch",
    "get_codec",
    "infer_epoch_from_color",
]
