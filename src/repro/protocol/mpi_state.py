"""MPI-library state record/replay (paper Section 5.2).

The layer cannot serialise the library's internal state, and does not need
to: "all that is required is that the application's view of the library
remains consistent before and after restart."  For *persistent* opaque
objects (communicators, user-defined ops, attached buffers, ...) the layer
records the name and arguments of every creating/mutating call in a
:class:`CallRecordLog`.  The log rides inside each local checkpoint; on
restart it is replayed against a fresh library instance, re-binding every
:class:`PseudoHandle` to a functionally identical object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RecoveryError
from repro.protocol.pseudo_handles import PseudoHandle


@dataclass
class CallRecord:
    """One recorded library call: ``fn(*args)`` creating/mutating
    ``handle_id`` (or -1 for pure mutations like attach_buffer)."""

    fn: str
    args: tuple[Any, ...]
    handle_id: int = -1


@dataclass
class MpiStateLog:
    """The persistent-object call log for one process."""

    records: list[CallRecord] = field(default_factory=list)
    next_handle_id: int = 0

    def new_handle(self, kind: str) -> PseudoHandle:
        handle = PseudoHandle(kind=kind, handle_id=self.next_handle_id)
        self.next_handle_id += 1
        return handle

    def record(self, fn: str, args: tuple[Any, ...], handle: PseudoHandle | None = None) -> None:
        self.records.append(
            CallRecord(fn=fn, args=args, handle_id=handle.handle_id if handle else -1)
        )

    def replay(
        self,
        executors: dict[str, Callable[..., Any]],
        handles: dict[int, PseudoHandle],
    ) -> None:
        """Re-execute every recorded call in order (paper: "each processor
        will replay these calls in order to recreate effectively the same
        persistent objects that existed at the time of the checkpoint").

        ``executors`` maps call names to functions that perform the call
        against the fresh library; each returns the new live object (or
        None).  ``handles`` maps handle ids to the restored pseudo-handles
        whose ``_live`` slots get re-bound.
        """
        for rec in self.records:
            fn = executors.get(rec.fn)
            if fn is None:
                raise RecoveryError(f"no executor for recorded MPI call {rec.fn!r}")
            live = fn(*rec.args)
            if rec.handle_id >= 0:
                handle = handles.get(rec.handle_id)
                if handle is None:
                    raise RecoveryError(
                        f"recorded call {rec.fn!r} targets unknown handle {rec.handle_id}"
                    )
                handle._live = live


class HandleRegistry:
    """All live pseudo-handles of one process, keyed by id."""

    def __init__(self) -> None:
        self.by_id: dict[int, PseudoHandle] = {}

    def add(self, handle: PseudoHandle) -> PseudoHandle:
        self.by_id[handle.handle_id] = handle
        return handle

    def snapshot(self) -> list[PseudoHandle]:
        return list(self.by_id.values())

    def restore(self, handles: list[PseudoHandle]) -> None:
        self.by_id = {h.handle_id: h for h in handles}
