"""Control messages of the C3 coordination protocol.

These are the out-of-band tokens of Section 4.1's four phases plus the
recovery-time handshakes.  They travel on the reserved ``TAG_CONTROL`` tag,
bypass piggybacking, and are never counted in the application-message
bookkeeping.

Protocol phases (paper Section 4.1):

1. initiator → all: :class:`PleaseCheckpoint`
2. each process, at its local checkpoint: :class:`MySendCount` to its
   receivers; once all late messages have arrived it sends
   :class:`ReadyToStopLogging` to the initiator
3. initiator, after hearing from everyone: :class:`StopLogging` to all
4. each process, after flushing its log: :class:`StoppedLogging` to the
   initiator, which then commits the global checkpoint

Recovery additions (Section 4.2's suppression mechanism plus a quiescence
guard):

* :class:`SuppressList` — a restarted receiver tells each sender which
  message IDs were received early and must not be resent;
* :class:`ReplayDone` — a restarted process tells the initiator it has
  consumed its logs, so the initiator can safely start the next checkpoint
  wave (no wave may overlap a replay).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ControlMessage:
    """Base class; ``epoch`` scopes every token to one checkpoint wave."""

    epoch: int


@dataclass(frozen=True)
class PleaseCheckpoint(ControlMessage):
    """Phase 1: take a local checkpoint, moving into epoch ``epoch``."""


@dataclass(frozen=True)
class MySendCount(ControlMessage):
    """Phase 2: sender's application-message count for the *previous* epoch.

    ``epoch`` is the new epoch the sender just entered; ``count`` is the
    number of application messages it sent to the addressee during
    ``epoch - 1`` — the number of late messages the addressee must await
    (less those it already received intra-epoch).
    """

    sender: int
    count: int


@dataclass(frozen=True)
class ReadyToStopLogging(ControlMessage):
    """Phase 2→3: the sender has checkpointed and drained all late messages."""

    sender: int


@dataclass(frozen=True)
class StopLogging(ControlMessage):
    """Phase 3: every process has checkpointed; logging may cease."""


@dataclass(frozen=True)
class StoppedLogging(ControlMessage):
    """Phase 4: the sender has flushed its log to stable storage."""

    sender: int


@dataclass(frozen=True)
class SuppressList(ControlMessage):
    """Recovery: ``message_ids`` sent by the addressee in epoch ``epoch``
    were received early (pre-checkpoint) by ``receiver`` and must not be
    re-posted to the network during re-execution."""

    receiver: int
    message_ids: tuple[int, ...] = field(default=())


@dataclass(frozen=True)
class ReplayDone(ControlMessage):
    """Recovery: the sender has exhausted its replay logs for ``epoch``."""

    sender: int
