"""Message classification (paper Definition 1 and Section 4.2).

Given the epoch of the sender at send time and the epoch of the receiver at
delivery-to-application time:

* **late** — sender epoch < receiver epoch (the paper's "in-flight");
* **intra-epoch** — equal epochs;
* **early** — sender epoch > receiver epoch (the paper's "inconsistent").

With the packed codec only the sender's epoch *color* is known; the paper's
rule resolves the ambiguity: same color ⇒ intra-epoch; different color ⇒
late if the receiver is currently logging, early otherwise.  Both paths are
implemented and property-tested against each other.
"""

from __future__ import annotations

import enum

from repro.errors import ProtocolError


class MessageClass(enum.Enum):
    LATE = "late"
    INTRA_EPOCH = "intra-epoch"
    EARLY = "early"


def classify_by_epoch(sender_epoch: int, receiver_epoch: int) -> MessageClass:
    """Classification from absolute epochs (full codec path)."""
    if sender_epoch < receiver_epoch:
        return MessageClass.LATE
    if sender_epoch == receiver_epoch:
        return MessageClass.INTRA_EPOCH
    return MessageClass.EARLY


def classify_by_color(
    sender_color: int, receiver_epoch: int, receiver_logging: bool
) -> MessageClass:
    """Classification from the color bit (packed codec path).

    Paper Section 4.2: "When the receiver is in a green epoch, and it
    receives a message from a sender in a green epoch, that message must be
    an intra-epoch message.  If the message is from a sender in a red epoch,
    ... if the receiver is not logging, the message must be an early
    message; otherwise, it is a late message."
    """
    if sender_color not in (0, 1):
        raise ProtocolError(f"invalid color {sender_color!r}")
    if (receiver_epoch & 1) == sender_color:
        return MessageClass.INTRA_EPOCH
    return MessageClass.LATE if receiver_logging else MessageClass.EARLY


def sender_epoch_from_class(msg_class: MessageClass, receiver_epoch: int) -> int:
    """Absolute sender epoch implied by a classification (for bookkeeping)."""
    if msg_class is MessageClass.LATE:
        return receiver_epoch - 1
    if msg_class is MessageClass.INTRA_EPOCH:
        return receiver_epoch
    return receiver_epoch + 1
