"""Per-process protocol variables (paper Section 4.4, Figure 4 preamble).

:class:`ProtocolState` carries exactly the variables the paper's pseudocode
maintains, under the paper's names (snake_cased):

* ``epoch`` — current epoch number, initialised to 0;
* ``am_logging`` — whether late-message/non-determinism logging is active;
* ``next_message_id`` — per-epoch send sequence number;
* ``checkpoint_requested`` — set by ``pleaseCheckpoint``;
* ``send_count[q]`` — application messages sent to ``q`` this epoch;
* ``early_ids[q]`` — IDs of early messages received from ``q``;
* ``current_receive_count[q]`` / ``previous_receive_count[q]`` — the paper's
  two receive counters (late messages of the previous epoch may intersperse
  with intra-epoch messages of the new one, Section 4.3);
* ``total_sent[q]`` — the count announced by ``q``'s ``mySendCount``, or
  ``None`` for the paper's ⊥.

The state is a plain picklable object: it rides inside every local
checkpoint.  ``senders``/``receivers`` realise the paper's communication
topology sets; by default every process may talk to every other one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ProtocolState:
    """Figure-4 variables for one process."""

    rank: int
    nprocs: int
    epoch: int = 0
    am_logging: bool = False
    next_message_id: int = 0
    checkpoint_requested: bool = False
    #: Epoch this process has been asked to move into (wave target), used to
    #: ignore duplicate/stale pleaseCheckpoint tokens.
    requested_target: int = 0
    send_count: dict[int, int] = field(default_factory=dict)
    early_ids: dict[int, list[int]] = field(default_factory=dict)
    current_receive_count: dict[int, int] = field(default_factory=dict)
    previous_receive_count: dict[int, int] = field(default_factory=dict)
    total_sent: dict[int, Optional[int]] = field(default_factory=dict)
    #: Whether readyToStopLogging has been sent for the current epoch.
    ready_sent: bool = False
    senders: tuple[int, ...] = ()
    receivers: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        others = tuple(r for r in range(self.nprocs) if r != self.rank)
        if not self.senders:
            self.senders = others
        if not self.receivers:
            self.receivers = others
        for q in self.receivers:
            self.send_count.setdefault(q, 0)
        for q in self.senders:
            self.early_ids.setdefault(q, [])
            self.current_receive_count.setdefault(q, 0)
            self.previous_receive_count.setdefault(q, 0)
            self.total_sent.setdefault(q, None)

    # ------------------------------------------------------------------ #

    def note_send(self, dest: int) -> int:
        """Account for one application send; returns the message's ID."""
        message_id = self.next_message_id
        self.next_message_id += 1
        self.send_count[dest] = self.send_count.get(dest, 0) + 1
        return message_id

    def all_late_received(self) -> bool:
        """The paper's receivedAll? condition over every sender."""
        for q in self.senders:
            expected = self.total_sent.get(q)
            if expected is None:
                return False
            if self.previous_receive_count.get(q, 0) != expected:
                return False
        return True

    def reset_total_sent(self) -> None:
        for q in self.senders:
            self.total_sent[q] = None

    def epoch_transition(self) -> dict[int, int]:
        """Apply the potentialCheckpoint bookkeeping of Figure 4.

        Shifts the receive counters, re-seeds the current counts from the
        early-message IDs (early messages belong to the *new* epoch), clears
        the early lists and the per-epoch send state, and increments the
        epoch.  Returns the per-receiver send counts of the epoch that just
        ended (the ``mySendCount`` payloads).
        """
        old_send_counts = dict(self.send_count)
        self.epoch += 1
        for q in self.senders:
            self.previous_receive_count[q] = self.current_receive_count.get(q, 0)
            self.current_receive_count[q] = len(self.early_ids.get(q, []))
            self.early_ids[q] = []
        for q in self.receivers:
            self.send_count[q] = 0
        self.checkpoint_requested = False
        self.next_message_id = 0
        self.ready_sent = False
        return old_send_counts

    def snapshot_for_checkpoint(self) -> "ProtocolState":
        """The state image stored in a local checkpoint.

        Captured *after* :meth:`epoch_transition`, with logging-related
        transients normalised: a restored process starts its epoch in replay
        mode, not logging mode, and awaits fresh ``mySendCount`` tokens only
        at its next checkpoint.
        """
        import copy

        snap = copy.deepcopy(self)
        snap.am_logging = False
        snap.checkpoint_requested = False
        snap.ready_sent = False
        snap.next_message_id = 0
        for q in snap.senders:
            snap.total_sent[q] = None
            snap.previous_receive_count[q] = 0
        return snap
