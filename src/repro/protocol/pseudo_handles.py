"""Pseudo-handles for MPI opaque objects (paper Section 5.2).

The protocol layer never lets the application touch the underlying library's
(here: the simulator's) opaque objects.  Instead the application holds
*pseudo-handles* — small indirection records owned by the layer — which the
layer can re-bind to fresh library objects after a restart, because the real
objects cannot be serialised.

Transient objects: requests.  :class:`PseudoRequest` records how the request
was created and how far it got; on restore the paper's rules apply:

* an ``isend`` pseudo-request is reinitialised so ``wait`` returns
  immediately (the message is either in the receiver's checkpoint or in its
  late-message log — either way the buffer is reusable);
* an ``irecv`` pseudo-request that already completed carries its payload in
  the checkpoint; one that had not completed is re-satisfied on restore from
  the late-message log or by re-posting the receive.

Persistent objects (communicators, user ops, ...) are handled by the
call-record replay mechanism in :mod:`repro.protocol.mpi_state`;
:class:`PseudoHandle` is their application-visible indirection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ProtocolError


@dataclass
class PseudoRequest:
    """Application-visible handle for a nonblocking operation.

    Picklable by design: the live simulator request (if any) is stored in a
    transient slot that is dropped at checkpoint time and re-bound on
    restore.
    """

    kind: str                      # "isend" | "irecv"
    req_id: int
    source: int = -1               # irecv: world rank or ANY_SOURCE
    tag: int = -1
    dest: int = -1                 # isend: world rank
    #: Completed payload captured at checkpoint time (irecv only).
    payload: Any = None
    has_payload: bool = False
    consumed: bool = False         # wait() already returned to the app

    def __post_init__(self) -> None:
        if self.kind not in ("isend", "irecv"):
            raise ProtocolError(f"unknown request kind {self.kind!r}")

    # Transient binding to the live simulator request; never pickled.
    _live: Any = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_live"] = None
        return state


@dataclass
class PseudoHandle:
    """Application-visible handle for a persistent opaque object."""

    kind: str                      # "comm" | "op" | "datatype" | "errhandler"
    handle_id: int
    #: Transient binding to the live library object; re-bound by replay.
    _live: Any = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_live"] = None
        return state


class RequestTable:
    """Tracks every pseudo-request whose lifetime may span a checkpoint."""

    def __init__(self) -> None:
        self._next = itertools.count()
        self.outstanding: dict[int, PseudoRequest] = {}

    def new(self, kind: str, **kwargs: Any) -> PseudoRequest:
        req = PseudoRequest(kind=kind, req_id=next(self._next), **kwargs)
        self.outstanding[req.req_id] = req
        return req

    def retire(self, req: PseudoRequest) -> None:
        req.consumed = True
        self.outstanding.pop(req.req_id, None)

    def snapshot(self) -> list[PseudoRequest]:
        """Checkpoint image of all outstanding requests.

        Only the creation arguments are captured — never a matched payload.
        In the paper's model a message is *delivered* when ``MPI_Wait``
        returns (Section 2), so a message matched before the checkpoint but
        waited after it is a post-checkpoint delivery: the protocol layer
        must classify it at wait time (late ⇒ logged and counted), and on
        restore the wait is re-satisfied from the late-message log or by a
        re-posted receive (Section 5.2's two Irecv reinitialisation rules).
        """
        return list(self.outstanding.values())

    def restore(self, image: list[PseudoRequest]) -> None:
        self.outstanding = {r.req_id: r for r in image}
        top = max(self.outstanding, default=-1) + 1
        self._next = itertools.count(top)
