"""Epoch-classifier stage (paper Definition 1 and Section 4.2).

Given a decoded piggyback word and the receiver's protocol state, decide
whether the message is late, intra-epoch, or early.  With the full codec
the sender's absolute epoch is on the wire; with the packed codec only
the color bit is, and the receiver's logging state disambiguates.
"""

from __future__ import annotations

from repro.protocol.classify import MessageClass, classify_by_color, classify_by_epoch
from repro.protocol.piggyback import FullCodec, PiggybackInfo
from repro.protocol.stages.base import ProtocolStage


class ClassifierStage(ProtocolStage):
    """Classify one arrived message against the receiver's epoch."""

    name = "classifier"

    def classify(self, info: PiggybackInfo) -> MessageClass:
        core = self.core
        if isinstance(core.codec, FullCodec):
            return classify_by_epoch(info.epoch, core.state.epoch)
        return classify_by_color(info.color, core.state.epoch, core.state.am_logging)
