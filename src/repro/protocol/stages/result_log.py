"""Non-determinism and collective-result log stage (Sections 3.2, 4.5).

While a process is logging, results of non-deterministic decisions and
of collective calls are recorded so recovery replay can return them
without re-computation (nondet) or re-communication (collectives — some
participants will not re-execute the call).
"""

from __future__ import annotations

import copy
from typing import Any

from repro.protocol.logs import CollectiveRecord
from repro.protocol.stages.base import ProtocolStage


class ResultLogStage(ProtocolStage):
    """Append nondet/collective results to the current epoch's logs."""

    name = "result-log"

    def _logged_copy(self, value: Any) -> Any:
        return copy.deepcopy(value) if self.config.copy_logged_payloads else value

    def record_nondet(self, value: Any) -> None:
        core = self.core
        core.logs.nondet.append(self._logged_copy(value))
        core.stats.nondet_logged += 1

    def record_collective(self, kind: str, result: Any) -> None:
        core = self.core
        core.logs.collectives.append(
            CollectiveRecord(kind=kind, result=self._logged_copy(result))
        )
        core.stats.collective_results_logged += 1
