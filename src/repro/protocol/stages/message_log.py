"""Late/early message-log stage (Figure 4's communicationEventHandler).

Applies the per-class actions once the classifier has spoken:

* **early** — record the message ID so a future checkpoint can suppress
  the sender's re-execution resend (Section 4.2 question 3);
* **intra-epoch** — bump the current receive counter; a message from a
  process that has *stopped* logging terminates this process's log
  (phase 4 condition (ii));
* **late** — log the payload (the sender will never resend it) and bump
  the previous-epoch receive counter toward ``receivedAll?``.

While logging, every receive also appends a match record so recovery
replay can reproduce exact receive-completion order.
"""

from __future__ import annotations

import copy

from repro.errors import ProtocolError
from repro.protocol.classify import MessageClass
from repro.protocol.logs import LateRecord, MatchRecord
from repro.protocol.piggyback import PiggybackInfo
from repro.protocol.stages.base import ProtocolStage
from repro.simmpi import coop


class MessageLogStage(ProtocolStage):
    """Record one classified message into the epoch's logs and counters."""

    name = "message-log"

    def on_message(self, env, info: PiggybackInfo, mclass: MessageClass) -> None:
        coop.drive(self.co_on_message(env, info, mclass), self.core.comm)

    def co_on_message(self, env, info: PiggybackInfo, mclass: MessageClass):
        core = self.core
        state = core.state
        src = env.source
        if mclass is MessageClass.EARLY:
            if state.am_logging:
                raise ProtocolError(
                    f"rank {core.rank}: early message from {src} while logging"
                )
            state.early_ids.setdefault(src, []).append(info.message_id)
            core.stats.early_recorded += 1
            tr = core.tracer
            if tr is not None:
                tr.emit(
                    "proto", "early_record", rank=core.rank, epoch=state.epoch,
                    source=src, mid=info.message_id,
                )
        elif mclass is MessageClass.INTRA_EPOCH:
            if state.am_logging and not info.am_logging:
                # Phase 4 condition (ii): a message from a process that has
                # stopped logging means every process has checkpointed.
                yield from core._co_finalize_log()
            state.current_receive_count[src] = (
                state.current_receive_count.get(src, 0) + 1
            )
        else:  # LATE
            if not state.am_logging:
                raise ProtocolError(
                    f"rank {core.rank}: late message from {src} after logging ended"
                )
            payload = env.payload
            logged = (
                copy.deepcopy(payload) if self.config.copy_logged_payloads else payload
            )
            core.logs.late.append(
                LateRecord(
                    source=src, tag=env.tag, message_id=info.message_id, payload=logged
                )
            )
            core.stats.late_logged += 1
            tr = core.tracer
            if tr is not None:
                tr.emit(
                    "proto", "late_log", rank=core.rank, epoch=state.epoch,
                    source=src, mid=info.message_id,
                )
            state.previous_receive_count[src] = (
                state.previous_receive_count.get(src, 0) + 1
            )
        if state.am_logging:
            core.logs.matches.append(
                MatchRecord(
                    source=src,
                    tag=env.tag,
                    message_id=info.message_id,
                    was_late=mclass is MessageClass.LATE,
                )
            )
        if mclass is MessageClass.LATE:
            yield from core._co_received_all_check()
