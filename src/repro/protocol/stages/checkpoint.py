"""Checkpoint-controller stage: control plane, initiator, epochs.

Owns everything that makes checkpoints happen (paper Section 4.1):

* the out-of-band control plane on ``TAG_CONTROL`` (drained at every
  scheduling opportunity via :meth:`progress`);
* the initiator state machine, embedded in the configured rank's stage;
* ``potentialCheckpoint`` — the local checkpoint at application-chosen
  points, with the epoch-transition bookkeeping of Figure 4;
* the ``mySendCount`` / ``receivedAll?`` / ``finalizeLog`` completion
  mechanism for late messages (Section 4.3).
"""

from __future__ import annotations

import copy

from repro.errors import ProtocolError
from repro.protocol import control as ctl
from repro.protocol.initiator import Initiator
from repro.protocol.logs import EpochLogs
from repro.protocol.stages.base import C3Config, ProtocolStage
from repro.simmpi import coop
from repro.simmpi.constants import TAG_CONTROL
from repro.statesave.format import CheckpointData


class CheckpointStage(ProtocolStage):
    """Drive checkpoint waves and take local checkpoints."""

    name = "checkpoint"

    def __init__(self, config: C3Config) -> None:
        super().__init__(config)
        self.initiator: Initiator | None = None

    def bind(self, core) -> None:
        super().bind(core)
        if core.rank == self.config.initiator_rank:
            self.initiator = Initiator(
                nprocs=core.nprocs,
                interval=self.config.checkpoint_interval,
                send_control=core._send_control,
                commit=self._commit,
                now=core.comm.wtime,
                co_send_control=core._co_send_control,
            )
        core.initiator = self.initiator

    # -- control plane --------------------------------------------------- #

    def _commit(self, epoch: int, now: float) -> None:
        core = self.core
        if core._commit_accepts_nprocs:
            core.storage.commit(epoch, now, nprocs=core.nprocs)
        else:
            # Custom storages implementing the pre-1.2 two-argument commit
            # keep working; they just forgo validated N->N-1 fallback.
            core.storage.commit(epoch, now)
        core.storage.gc(core.nprocs, keep_epoch=epoch)

    def progress(self) -> None:
        """Drain and handle queued control messages; poll the initiator."""
        coop.drive(self.co_progress(), self.core.comm)

    def co_progress(self):
        core = self.core
        while True:
            env = core.comm.take_matching(tag=TAG_CONTROL)
            if env is None:
                break
            core.stats.control_messages += 1
            yield from self.co_handle_control(env.payload, env.source)
        if self.initiator is not None:
            yield from self.initiator.co_poll(core.state.epoch)

    def handle_control(self, msg: ctl.ControlMessage, source: int) -> None:
        coop.drive(self.co_handle_control(msg, source), self.core.comm)

    def co_handle_control(self, msg: ctl.ControlMessage, source: int):
        core = self.core
        state = core.state
        if isinstance(msg, ctl.PleaseCheckpoint):
            if state.epoch < msg.epoch and state.requested_target < msg.epoch:
                state.checkpoint_requested = True
                state.requested_target = msg.epoch
                tr = core.tracer
                if tr is not None:
                    tr.emit(
                        "ckpt", "wave_request", rank=core.rank, epoch=msg.epoch,
                    )
        elif isinstance(msg, ctl.MySendCount):
            if msg.epoch not in (state.epoch, state.epoch + 1):
                raise ProtocolError(
                    f"rank {core.rank}: mySendCount for epoch {msg.epoch} "
                    f"while in epoch {state.epoch}"
                )
            state.total_sent[msg.sender] = msg.count
            if state.am_logging:
                yield from self.co_received_all_check()
        elif isinstance(msg, ctl.ReadyToStopLogging):
            self._require_initiator("readyToStopLogging")
            yield from self.initiator.co_on_ready(msg.sender, msg.epoch)
        elif isinstance(msg, ctl.StopLogging):
            yield from self.co_finalize_log()
        elif isinstance(msg, ctl.StoppedLogging):
            self._require_initiator("stoppedLogging")
            self.initiator.on_stopped(msg.sender, msg.epoch)
        elif isinstance(msg, ctl.ReplayDone):
            self._require_initiator("replayDone")
            self.initiator.on_replay_done(msg.sender)
        else:
            raise ProtocolError(f"unknown control message {msg!r}")

    def _require_initiator(self, what: str) -> None:
        if self.initiator is None:
            raise ProtocolError(
                f"rank {self.core.rank} received initiator-only control {what!r}"
            )

    # -- receivedAll? / finalizeLog (Figure 4) --------------------------- #

    def received_all_check(self) -> None:
        coop.drive(self.co_received_all_check(), self.core.comm)

    def co_received_all_check(self):
        core = self.core
        state = core.state
        if state.ready_sent or not state.am_logging:
            return
        if state.all_late_received():
            state.ready_sent = True
            state.reset_total_sent()
            yield from core._co_send_control(
                ctl.ReadyToStopLogging(epoch=state.epoch, sender=core.rank),
                self.config.initiator_rank,
            )

    def finalize_log(self) -> None:
        coop.drive(self.co_finalize_log(), self.core.comm)

    def co_finalize_log(self):
        core = self.core
        if not core.state.am_logging:
            return
        core.state.am_logging = False
        core.stats.log_finalizations += 1
        tr = core.tracer
        if tr is not None:
            tr.emit(
                "ckpt", "finalize_log", rank=core.rank, epoch=core.state.epoch,
                late=len(core.logs.late), matches=len(core.logs.matches),
            )
        core.storage.write_log(core.rank, core.state.epoch, core.logs)
        yield from core._co_send_control(
            ctl.StoppedLogging(epoch=core.state.epoch, sender=core.rank),
            self.config.initiator_rank,
        )

    # -- potentialCheckpoint (Figure 4) ---------------------------------- #

    def potential_checkpoint(self) -> bool:
        """Take a local checkpoint if one has been requested.

        Checkpointing is deferred while a recovery replay is in progress
        (the initiator never starts a wave during replay, so this can only
        trigger in exotic interleavings and is safe to postpone).
        """
        return coop.drive(self.co_potential_checkpoint(), self.core.comm)

    def co_potential_checkpoint(self):
        core = self.core
        if core.replay is not None:
            return False
        if not core.state.checkpoint_requested:
            return False
        yield from self.co_take_local_checkpoint()
        return True

    def take_local_checkpoint(self) -> None:
        coop.drive(self.co_take_local_checkpoint(), self.core.comm)

    def co_take_local_checkpoint(self):
        core = self.core
        state = core.state
        saved_early = {q: list(ids) for q, ids in state.early_ids.items() if ids}
        send_counts = state.epoch_transition()
        tr = core.tracer
        if tr is not None:
            tr.emit("ckpt", "local_checkpoint", rank=core.rank, epoch=state.epoch)
        # Suppression sets apply only to re-executions of the *previous*
        # epoch's sends; entering a new epoch invalidates them.
        core.suppress = {}
        snapshot = state.snapshot_for_checkpoint()
        app_state = None
        if self.config.save_app_state and core.state_provider is not None:
            app_state = core.state_provider()
        data = CheckpointData(
            rank=core.rank,
            epoch=state.epoch,
            protocol=snapshot,
            early_ids=saved_early,
            requests=copy.deepcopy(core.requests.snapshot()),
            mpi_records=copy.deepcopy(core.mpi_log),
            handles=core.handles.snapshot(),
            coll_seqs=dict(core.coll_seqs),
            app_state=app_state,
            taken_at=core.comm.wtime(),
        )
        manifest = core.storage.write_state(core.rank, state.epoch, data)
        if manifest is not None:  # custom storages may return nothing
            core.generation_manifests.append(manifest)
            core.stats.ckpt_logical_bytes += manifest.logical_bytes
            core.stats.ckpt_stored_bytes += manifest.stored_bytes
            core.stats.ckpt_chunks_reused += manifest.reused_chunks
        core.stats.checkpoints_taken += 1
        for q in state.receivers:
            yield from core._co_send_control(
                ctl.MySendCount(
                    epoch=state.epoch, sender=core.rank,
                    count=send_counts.get(q, 0),
                ),
                q,
            )
        state.am_logging = True
        core.logs = EpochLogs(epoch=state.epoch)
        if core.on_checkpoint is not None:
            core.on_checkpoint(data)
        yield from self.co_received_all_check()

    def request_checkpoint_now(self) -> None:
        """Ask the initiator to start a wave at its next poll (tests/API)."""
        if self.initiator is None:
            raise ProtocolError("request_checkpoint_now is initiator-only")
        self.initiator.force_initiate = True
