"""Named stage stacks: the paper's V0–V3 plus user-registered variants.

A *stack* is a declared composition of protocol stages.  The four build
variants of Section 6.2 are pinned here as named stacks instead of flag
soup:

=====  =========================================  ==========================
Name   Paper name                                 Stage stack
=====  =========================================  ==========================
V0     "Unmodified Program"                       (empty — raw pass-through)
V1     "Using Protocol Layer, No Checkpoints"     piggyback, classifier,
                                                  message-log, result-log,
                                                  replay
V2     "Checkpointing, No Application State"      V1 stages + checkpoint
                                                  (``save_app_state=False``)
V3     "Full Checkpoints"                         V1 stages + checkpoint
=====  =========================================  ==========================

Custom stacks are registered with :func:`register_stack`, the same way
``repro.ckpt`` backends are; resolve any stack — built-in or custom —
with :func:`variant_stack`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.protocol.stages.base import C3Config, ProtocolStage, make_stage

#: The protocol stages shared by every instrumented variant (V1's stack).
PROTOCOL_STAGES = ("piggyback", "classifier", "message-log", "result-log", "replay")

#: V2/V3: the protocol stages plus the checkpoint controller.
FULL_STACK = PROTOCOL_STAGES + ("checkpoint",)


@dataclass(frozen=True)
class StackSpec:
    """One named, declared stage composition."""

    name: str
    stages: tuple[str, ...]
    description: str = ""
    #: Whether checkpoints taken under this stack capture application state
    #: (meaningful only when the stack has a ``checkpoint`` stage; V2 is
    #: exactly V3 with this off).
    save_app_state: bool = True

    def c3_config(self, run_config) -> C3Config:
        """Derive the pipeline configuration for one run.

        ``run_config`` is any object with ``codec`` and
        ``checkpoint_interval`` attributes (in practice a
        :class:`repro.runtime.config.RunConfig`).  The legacy
        ``protocol_enabled``/``piggyback_enabled`` flags are mirrors of
        stage presence, kept for observability and the ``C3Layer`` facade.
        """
        has_ckpt = "checkpoint" in self.stages
        return C3Config(
            codec=run_config.codec,
            checkpoint_interval=run_config.checkpoint_interval if has_ckpt else None,
            protocol_enabled="classifier" in self.stages,
            piggyback_enabled="piggyback" in self.stages,
            save_app_state=self.save_app_state and has_ckpt,
        )


_STACKS: dict[str, StackSpec] = {}

#: Aliases: ``Variant`` enum values resolve to the canonical stack names.
_ALIASES = {
    "unmodified": "V0",
    "piggyback": "V1",
    "no-app-state": "V2",
    "full": "V3",
}


def register_stack(
    name: str,
    stages: Sequence[str],
    *,
    description: str = "",
    save_app_state: bool = True,
    replace: bool = False,
) -> StackSpec:
    """Register (or with ``replace=True`` redefine) a named stage stack.

    Stage names are resolved against the stage registry when a pipeline is
    built, so a stack may reference a custom stage registered afterwards.
    """
    if name in _STACKS and not replace:
        raise ConfigError(
            f"stack {name!r} is already registered; pass replace=True to override"
        )
    spec = StackSpec(
        name=name,
        stages=tuple(stages),
        description=description,
        save_app_state=save_app_state,
    )
    _STACKS[name] = spec
    return spec


def variant_stack(name: str) -> StackSpec:
    """Resolve a stack by name (``"V0"``–``"V3"``, a ``Variant`` value such
    as ``"full"``, or any user-registered name)."""
    key = getattr(name, "value", name)  # accept the Variant enum directly
    key = _ALIASES.get(key, key)
    try:
        return _STACKS[key]
    except KeyError:
        raise ConfigError(
            f"unknown variant stack {name!r}; available: {sorted(_STACKS)}"
        ) from None


def list_stacks() -> list[str]:
    return sorted(_STACKS)


def build_stages(spec: StackSpec | Sequence[str], config: C3Config) -> list[ProtocolStage]:
    """Instantiate the (unbound) stage objects for a stack."""
    names = spec.stages if isinstance(spec, StackSpec) else tuple(spec)
    return [make_stage(name, config) for name in names]


def stages_for_config(config: C3Config) -> tuple[str, ...]:
    """Legacy flag-soup mapping: the stack implied by a bare ``C3Config``.

    Kept for the ``C3Layer`` facade, whose constructor still accepts the
    historical boolean switches.
    """
    if config.protocol_enabled:
        return FULL_STACK
    if config.piggyback_enabled:
        return ("piggyback",)
    return ()


# -- built-in stacks ---------------------------------------------------- #

register_stack(
    "V0", (), description="Unmodified Program — raw pass-through (empty stack)",
    save_app_state=False,
)
register_stack(
    "V1", PROTOCOL_STAGES,
    description="Using Protocol Layer, No Checkpoints",
    save_app_state=False,
)
register_stack(
    "V2", FULL_STACK,
    description="Checkpointing, No Application State",
    save_app_state=False,
)
register_stack(
    "V3", FULL_STACK,
    description="Full Checkpoints",
)
