"""Composable protocol stages (the decomposed C3 layer).

See :mod:`repro.protocol.stages.base` for the stage interface and
:mod:`repro.protocol.stages.registry` for the named V0–V3 stacks.
"""

from repro.protocol.stages.base import (
    C3Config,
    LayerStats,
    ProtocolStage,
    list_stages,
    make_stage,
    register_stage,
)
from repro.protocol.stages.checkpoint import CheckpointStage
from repro.protocol.stages.classifier import ClassifierStage
from repro.protocol.stages.message_log import MessageLogStage
from repro.protocol.stages.piggyback import PiggybackStage
from repro.protocol.stages.pipeline import ProtocolPipeline, RawHandle
from repro.protocol.stages.registry import (
    FULL_STACK,
    PROTOCOL_STAGES,
    StackSpec,
    build_stages,
    list_stacks,
    register_stack,
    stages_for_config,
    variant_stack,
)
from repro.protocol.stages.replay import ReplayStage
from repro.protocol.stages.result_log import ResultLogStage

# Built-in stage factories (the names the V0-V3 stacks are declared with).
register_stage("piggyback", PiggybackStage, replace=True)
register_stage("classifier", ClassifierStage, replace=True)
register_stage("message-log", MessageLogStage, replace=True)
register_stage("result-log", ResultLogStage, replace=True)
register_stage("replay", ReplayStage, replace=True)
register_stage("checkpoint", CheckpointStage, replace=True)

__all__ = [
    "C3Config",
    "CheckpointStage",
    "ClassifierStage",
    "FULL_STACK",
    "LayerStats",
    "MessageLogStage",
    "PROTOCOL_STAGES",
    "PiggybackStage",
    "ProtocolPipeline",
    "ProtocolStage",
    "RawHandle",
    "ReplayStage",
    "ResultLogStage",
    "StackSpec",
    "build_stages",
    "list_stacks",
    "list_stages",
    "make_stage",
    "register_stack",
    "register_stage",
    "stages_for_config",
    "variant_stack",
]
