"""The protocol pipeline: a stage stack behind the ``CommLike`` surface.

:class:`ProtocolPipeline` is the engine that used to be the monolithic
``C3Layer``: it owns the shared protocol state (Figure 4's variables,
the epoch logs, pseudo-handle tables, per-communicator collective
sequence numbers) and threads every ``CommLike`` call through the
single-responsibility stages of this package.  Which concerns are active
is decided purely by which stages are present:

* the **empty stack** is the paper's V0 "Unmodified Program": every call
  is a raw pass-through over the underlying communicator — the same code
  path :class:`repro.api.comms.RawCommAdapter` exposes;
* a stack with the ``piggyback`` stage alone attaches/strips the wire
  word but runs no protocol (the legacy piggyback-only configuration);
* a stack with the protocol stages (``classifier``/``message-log``/
  ``result-log``/``replay``) runs the full Figure-4 event handler; adding
  ``checkpoint`` enables waves — the paper's V2/V3.

Per-stage dispatch is counted and timed into
``LayerStats.stage_calls`` / ``stage_seconds``, giving the per-stage
overhead accounting the flat layer could not.
"""

from __future__ import annotations

import copy
import inspect
from time import perf_counter
from typing import Any, Callable, Optional, Sequence

from repro.errors import ConfigError, ProtocolError, RecoveryError
from repro.protocol import control as ctl
from repro.protocol.logs import EpochLogs
from repro.protocol.mpi_state import HandleRegistry, MpiStateLog
from repro.protocol.piggyback import get_codec
from repro.protocol.pseudo_handles import PseudoHandle, RequestTable
from repro.protocol.stages.base import C3Config, LayerStats, ProtocolStage
from repro.protocol.state import ProtocolState
from repro.simmpi import collectives_impl as coll_impl
from repro.simmpi import coop
from repro.simmpi.comm import Comm
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG, TAG_CONTROL
from repro.simmpi.op import Op
from repro.simmpi.request import Request
from repro.statesave.format import CheckpointData

#: Base of the tag region used by pipeline-level collective instances.  Raw
#: communicator collectives use the -1000 region; keeping the pipeline in
#: its own region means a V0 (uninstrumented) app and the pipeline can
#: never clash.
LAYER_COLL_BASE = -10_000_000

#: Tag block used by the one-shot suppression exchange at restart.
RESTORE_BASE = -1_000_000_000

#: Pseudo-handle id denoting the world communicator.
WORLD_HANDLE = -1

#: Stage-presence requirements: a stack naming the key must also name the
#: values (e.g. classification is meaningless without the piggyback word).
_STAGE_REQUIRES = {
    "classifier": ("piggyback", "message-log"),
    "checkpoint": ("classifier", "result-log", "replay"),
}


def _accepts_nprocs(commit: Callable[..., Any]) -> bool:
    """Whether a storage's ``commit`` takes the (1.2+) ``nprocs`` keyword.

    Decided once by signature inspection — a runtime TypeError fallback
    would mask genuine TypeErrors raised inside a modern commit.
    """
    try:
        params = inspect.signature(commit).parameters
    except (TypeError, ValueError):  # builtins/uninspectable: assume modern
        return True
    return "nprocs" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


class RawHandle:
    """Opaque handle over a raw communicator or op (the V0 analogue of a
    pseudo-handle: same ``handle_id`` surface, no record/replay)."""

    __slots__ = ("kind", "handle_id", "_live")

    def __init__(self, kind: str, handle_id: int, live: Any) -> None:
        self.kind = kind
        self.handle_id = handle_id
        self._live = live

    def __repr__(self) -> str:  # pragma: no cover
        return f"RawHandle(kind={self.kind!r}, id={self.handle_id})"


class ProtocolPipeline:
    """Per-process protocol engine: shared state + a stage stack."""

    def __init__(
        self,
        comm: Comm,
        stages: Sequence[ProtocolStage] = (),
        config: Optional[C3Config] = None,
        storage: Any = None,
        state_provider: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.comm = comm
        self.config = config if config is not None else C3Config()
        self.storage = storage
        self.state_provider = state_provider
        self.codec = get_codec(self.config.codec)
        self.rank = comm.rank
        self.nprocs = comm.size
        #: The simulator's repro.trace recorder, when armed (None otherwise;
        #: every emit site below guards on that, so tracing off costs one
        #: attribute read per traced operation).
        self.tracer = getattr(getattr(comm, "sim", None), "tracer", None)
        self.state = ProtocolState(rank=self.rank, nprocs=self.nprocs)
        self.logs = EpochLogs(epoch=0)
        self.replay: Optional[EpochLogs] = None
        self._replay_done_sent = False
        self.suppress: dict[int, set[int]] = {}
        self.requests = RequestTable()
        self.mpi_log = MpiStateLog()
        self.handles = HandleRegistry()
        #: Creation-replay cursor (see _creation_replay); None == disabled
        #: (fresh start or precompiled resume), set to 0 by restore_from.
        self._creation_cursor: Optional[int] = None
        #: Per-communicator collective call sequence (world = WORLD_HANDLE).
        self.coll_seqs: dict[int, int] = {WORLD_HANDLE: 0}
        self.stats = LayerStats()
        self._commit_accepts_nprocs = (
            _accepts_nprocs(storage.commit) if storage is not None else True
        )
        #: Set by the checkpoint stage at bind time (initiator rank only).
        self.initiator = None
        #: Per-generation storage manifests for this rank's checkpoints,
        #: in wave order (observability; see :mod:`repro.ckpt`).
        self.generation_manifests: list[Any] = []
        #: Hook invoked right after a local checkpoint is written (tests).
        self.on_checkpoint: Optional[Callable[[CheckpointData], None]] = None
        #: Raw-handle table (empty-stack mode).
        self._handles: dict[int, RawHandle] = {}
        self._next_handle_id = 0

        # -- stage stack ------------------------------------------------ #
        self.stages: list[ProtocolStage] = list(stages)
        by_name: dict[str, ProtocolStage] = {}
        for stage in self.stages:
            if stage.name in by_name:
                raise ConfigError(f"duplicate stage {stage.name!r} in stack")
            by_name[stage.name] = stage
        for name, needs in _STAGE_REQUIRES.items():
            if name in by_name:
                missing = [n for n in needs if n not in by_name]
                if missing:
                    raise ConfigError(
                        f"stage {name!r} requires stages {missing} in the stack"
                    )
        self.stage_by_name = by_name
        self.pb = by_name.get("piggyback")
        self.clf = by_name.get("classifier")
        self.msg_log = by_name.get("message-log")
        self.res_log = by_name.get("result-log")
        self.rep = by_name.get("replay")
        self.ckpt = by_name.get("checkpoint")
        self._raw = not self.stages
        self._protocol = self.clf is not None
        if self.ckpt is not None and storage is None:
            raise ConfigError("a checkpoint stage requires a storage")
        self.stats.stage_calls = {s.name: 0 for s in self.stages}
        self.stats.stage_seconds = {s.name: 0.0 for s in self.stages}
        for stage in self.stages:
            stage.bind(self)
        # Generic observer hooks: dispatched only when overridden, so the
        # built-in stacks pay nothing for them.
        self._send_observers = [
            s for s in self.stages if type(s).on_send is not ProtocolStage.on_send
        ]
        self._recv_observers = [
            s for s in self.stages if type(s).on_receive is not ProtocolStage.on_receive
        ]

    # ------------------------------------------------------------------ #
    # Per-stage accounting.
    # ------------------------------------------------------------------ #

    def _charge(self, name: str, t0: float) -> None:
        self.stats.stage_calls[name] += 1
        self.stats.stage_seconds[name] += perf_counter() - t0

    # ------------------------------------------------------------------ #
    # Cooperative-core plumbing.
    #
    # Every CommLike operation below is written ONCE, as a ``co_*``
    # generator whose yields are the scheduling points; the synchronous
    # method of the same name just drives that generator (under the
    # threaded core a yield suspends the calling rank thread on its baton
    # gate; under the cooperative core the generator is resumed by the
    # scheduler directly).  ``_co_call`` routes an underlying-communicator
    # operation through its generator twin when one exists and falls back
    # to the plain method for comm doubles that only implement the
    # synchronous surface (such stand-ins never suspend, so the generators
    # complete on first resume and the sync wrappers behave exactly like
    # the historical code).
    # ------------------------------------------------------------------ #

    def _co_call(self, target: Any, name: str, *args: Any, **kwargs: Any):
        co = getattr(target, "co_" + name, None)
        if co is None:
            return getattr(target, name)(*args, **kwargs)
        return (yield from co(*args, **kwargs))

    def _co_recv_envelope(self, source: int, tag: int, predicate: Any = None):
        # ``predicate`` is only forwarded when set so doubles implementing
        # the plain two-argument recv_envelope keep working.
        if predicate is None:
            return (yield from self._co_call(self.comm, "recv_envelope", source, tag))
        return (
            yield from self._co_call(
                self.comm, "recv_envelope", source, tag, predicate=predicate
            )
        )

    def _co_yield_point(self):
        co = getattr(self.comm, "co_yield_point", None)
        if co is None:
            self.comm._yield_point()
        else:
            yield from co()

    # ------------------------------------------------------------------ #
    # Control plane (shared by the checkpoint and replay stages).
    # ------------------------------------------------------------------ #

    def _send_control(self, msg: ctl.ControlMessage, dest: int) -> None:
        coop.drive(self._co_send_control(msg, dest), self.comm)

    def _co_send_control(self, msg: ctl.ControlMessage, dest: int):
        if dest == self.rank:
            yield from self._co_handle_control(msg, self.rank)
        else:
            yield from self._co_call(self.comm, "send", msg, dest, tag=TAG_CONTROL)

    def _handle_control(self, msg: ctl.ControlMessage, source: int) -> None:
        coop.drive(self._co_handle_control(msg, source), self.comm)

    def _co_handle_control(self, msg: ctl.ControlMessage, source: int):
        if self.ckpt is None:
            raise ProtocolError(
                f"rank {self.rank}: control message {msg!r} but the stack "
                "has no checkpoint stage"
            )
        yield from self.ckpt.co_handle_control(msg, source)

    def _progress(self) -> None:
        """Drain control traffic and poll the initiator (checkpoint stage)."""
        coop.drive(self._co_progress(), self.comm)

    def _co_progress(self):
        if self.ckpt is None:
            return
        t0 = perf_counter()
        yield from self.ckpt.co_progress()
        self._charge("checkpoint", t0)

    def _finalize_log(self) -> None:
        if self.ckpt is not None:
            self.ckpt.finalize_log()

    def _co_finalize_log(self):
        if self.ckpt is not None:
            yield from self.ckpt.co_finalize_log()

    def _received_all_check(self) -> None:
        if self.ckpt is not None:
            self.ckpt.received_all_check()

    def _co_received_all_check(self):
        if self.ckpt is not None:
            yield from self.ckpt.co_received_all_check()

    def _maybe_end_replay(self) -> None:
        if self.rep is not None:
            self.rep.maybe_end_replay()

    def _co_maybe_end_replay(self):
        if self.rep is not None:
            yield from self.rep.co_maybe_end_replay()

    # ------------------------------------------------------------------ #
    # Raw-mode helpers (empty stack — the V0 pass-through).
    # ------------------------------------------------------------------ #

    def _new_handle(self, kind: str, live: Any) -> RawHandle:
        handle = RawHandle(kind, self._next_handle_id, live)
        self._next_handle_id += 1
        self._handles[handle.handle_id] = handle
        return handle

    def _resolve(self, handle: Any) -> Comm:
        if handle is None:
            return self.comm
        live = getattr(handle, "_live", None)
        if not isinstance(live, Comm):
            raise ProtocolError(f"not a communicator handle: {handle!r}")
        return live

    # ------------------------------------------------------------------ #
    # Send path.
    # ------------------------------------------------------------------ #

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Application blocking send with piggybacked protocol data."""
        coop.drive(self.co_send(payload, dest, tag), self.comm)

    def co_send(self, payload: Any, dest: int, tag: int = 0):
        if self._raw:
            self.stats.sends += 1
            yield from self._co_call(self.comm, "send", payload, dest, tag)
            return
        yield from self._co_progress()
        self.stats.sends += 1
        for stage in self._send_observers:
            t0 = perf_counter()
            stage.on_send(payload, dest, tag)
            self._charge(stage.name, t0)
        if not self._protocol:
            if self.pb is None:
                yield from self._co_call(self.comm, "send", payload, dest, tag)
                return
            t0 = perf_counter()
            wire = self.pb.blank()
            self._charge("piggyback", t0)
            yield from self._co_call(
                self.comm, "send", payload, dest, tag, piggyback=wire
            )
            return
        message_id = self.state.note_send(dest)
        tr = self.tracer
        if self.rep is not None and self.rep.is_suppressed(dest, message_id):
            # Early-message resend suppression (Section 4.2 question 3):
            # the receiver's checkpoint already contains this message, so it
            # must not be re-posted; bookkeeping still advances so that
            # subsequent IDs and the next wave's counts line up.
            self.stats.suppressed_sends += 1
            if tr is not None:
                tr.emit(
                    "proto", "suppress_send", rank=self.rank,
                    epoch=self.state.epoch, dest=dest, mid=message_id,
                )
            return
        if tr is not None:
            tr.emit(
                "proto", "send", rank=self.rank, epoch=self.state.epoch,
                dest=dest, mid=message_id, logging=self.state.am_logging,
            )
        t0 = perf_counter()
        wire = self.pb.encode(self.state.epoch, self.state.am_logging, message_id)
        self._charge("piggyback", t0)
        yield from self._co_call(self.comm, "send", payload, dest, tag, piggyback=wire)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Any:
        """Nonblocking send; returns a pseudo-request (Section 5.2) on a
        staged stack, a raw request on the empty stack."""
        return coop.drive(self.co_isend(payload, dest, tag), self.comm)

    def co_isend(self, payload: Any, dest: int, tag: int = 0):
        # The underlying isend never suspends (eager sends); the scheduling
        # points here are the progress drain only.
        if self._raw:
            self.stats.sends += 1
            return self.comm.isend(payload, dest, tag)
        yield from self._co_progress()
        self.stats.sends += 1
        for stage in self._send_observers:
            t0 = perf_counter()
            stage.on_send(payload, dest, tag)
            self._charge(stage.name, t0)
        req = self.requests.new("isend", dest=dest, tag=tag)
        if not self._protocol:
            if self.pb is None:
                self.comm.isend(payload, dest, tag)
                return req
            t0 = perf_counter()
            wire = self.pb.blank()
            self._charge("piggyback", t0)
            self.comm.isend(payload, dest, tag, piggyback=wire)
            return req
        message_id = self.state.note_send(dest)
        tr = self.tracer
        if self.rep is not None and self.rep.is_suppressed(dest, message_id):
            self.stats.suppressed_sends += 1
            if tr is not None:
                tr.emit(
                    "proto", "suppress_send", rank=self.rank,
                    epoch=self.state.epoch, dest=dest, mid=message_id,
                )
            return req
        if tr is not None:
            tr.emit(
                "proto", "send", rank=self.rank, epoch=self.state.epoch,
                dest=dest, mid=message_id, logging=self.state.am_logging,
            )
        t0 = perf_counter()
        wire = self.pb.encode(self.state.epoch, self.state.am_logging, message_id)
        self._charge("piggyback", t0)
        self.comm.isend(payload, dest, tag, piggyback=wire)
        return req

    # ------------------------------------------------------------------ #
    # Receive path.
    # ------------------------------------------------------------------ #

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Application blocking receive."""
        return coop.drive(self.co_recv(source, tag), self.comm)

    def co_recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        if self._raw:
            self.stats.receives += 1
            return (yield from self._co_call(self.comm, "recv", source, tag))
        yield from self._co_progress()
        self.stats.receives += 1
        if not self._protocol:
            env = yield from self._co_recv_envelope(source, tag)
            if self.pb is not None and env.piggyback is not None:
                # Piggyback-only variant still pays the decode cost.
                t0 = perf_counter()
                self.pb.decode(env)
                self._charge("piggyback", t0)
            for stage in self._recv_observers:
                t0 = perf_counter()
                stage.on_receive(env)
                self._charge(stage.name, t0)
            return env.payload
        if self.replay is not None and not self.replay.matches.exhausted:
            return (yield from self._co_replay_recv())
        env = yield from self._co_recv_envelope(source, tag)
        return (yield from self._co_classify_and_deliver(env))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Nonblocking receive pseudo-request (raw request on empty stack)."""
        return coop.drive(self.co_irecv(source, tag), self.comm)

    def co_irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        # Posting the receive never suspends; only the progress drain does.
        if self._raw:
            return self.comm.irecv(source, tag)
        yield from self._co_progress()
        req = self.requests.new("irecv", source=source, tag=tag)
        if self._protocol and self.replay is not None:
            # During replay, completion is resolved through the match log at
            # wait time; posting a raw receive could steal messages that the
            # replay engine must route by messageID.
            return req
        req._live = self.comm.irecv(source, tag)
        return req

    def wait(self, req: Any) -> Any:
        """Complete a pseudo-request (the MPI_Wait analogue)."""
        return coop.drive(self.co_wait(req), self.comm)

    def co_wait(self, req: Any):
        if self._raw:
            if isinstance(req, Request) and not req.completed and hasattr(req, "_desc"):
                self.stats.receives += 1
            return (yield from self._co_call(req, "wait"))
        yield from self._co_progress()
        if req.consumed:
            raise ProtocolError("wait() on an already-completed pseudo-request")
        if req.kind == "isend":
            # Paper rule: a restored (or live, under the eager model) isend
            # request completes immediately — the message is in the
            # receiver's checkpoint or its late-message log.
            self.requests.retire(req)
            yield from self._co_yield_point()
            return None
        # irecv:
        if req.has_payload:
            payload = req.payload
            self.requests.retire(req)
            return payload
        if req._live is None:
            # Restored-unmatched or replay-posted: resolve like a fresh recv
            # (paper rule: match the late log, else re-post the receive).
            self.stats.receives += 1
            if (
                self._protocol
                and self.replay is not None
                and not self.replay.matches.exhausted
            ):
                payload = yield from self._co_replay_recv()
            else:
                env = yield from self._co_recv_envelope(req.source, req.tag)
                payload = yield from self._co_classify_and_deliver(env)
            self.requests.retire(req)
            return payload
        self.stats.receives += 1
        yield from self._co_call(req._live, "wait")
        env = req._live._desc.matched
        self.requests.retire(req)
        if not self._protocol:
            return env.payload
        return (yield from self._co_classify_and_deliver(env))

    def test(self, req: Any) -> bool:
        """Nonblocking completion check for a pseudo-request."""
        return coop.drive(self.co_test(req), self.comm)

    def co_test(self, req: Any):
        if self._raw:
            return req.test()
        yield from self._co_progress()
        if req.kind == "isend":
            return True
        if req.has_payload:
            return True
        if req._live is None:
            # Replay-resolved requests are only completed by wait().
            return self.replay is not None and not self.replay.matches.exhausted
        return req._live.test()

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        """Combined exchange built from the pipeline's own send + recv."""
        return coop.drive(
            self.co_sendrecv(payload, dest, recv_source, send_tag, recv_tag),
            self.comm,
        )

    def co_sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ):
        if self._raw:
            self.stats.sends += 1
            self.stats.receives += 1
            return (
                yield from self._co_call(
                    self.comm, "sendrecv", payload, dest, recv_source, send_tag, recv_tag
                )
            )
        if recv_tag is None:
            recv_tag = send_tag
        yield from self.co_send(payload, dest, send_tag)
        return (yield from self.co_recv(recv_source, recv_tag))

    # ------------------------------------------------------------------ #

    def _classify_and_deliver(self, env) -> Any:
        """Figure 4's communicationEventHandler for one arrived message."""
        return coop.drive(self._co_classify_and_deliver(env), self.comm)

    def _co_classify_and_deliver(self, env):
        t0 = perf_counter()
        info = self.pb.decode(env)
        self._charge("piggyback", t0)
        t0 = perf_counter()
        mclass = self.clf.classify(info)
        self._charge("classifier", t0)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "proto", "classify", rank=self.rank, epoch=self.state.epoch,
                source=env.source, cls=mclass.name.lower(), mid=info.message_id,
            )
        t0 = perf_counter()
        yield from self.msg_log.co_on_message(env, info, mclass)
        self._charge("message-log", t0)
        for stage in self._recv_observers:
            t0 = perf_counter()
            stage.on_receive(env)
            self._charge(stage.name, t0)
        return env.payload

    def _co_replay_recv(self):
        """Serve one receive deterministically from the match log."""
        t0 = perf_counter()
        payload = yield from self.rep.co_serve_recv()
        self._charge("replay", t0)
        return payload

    # ------------------------------------------------------------------ #
    # Non-determinism (Section 3.2 / Figure 4 phase 2).
    # ------------------------------------------------------------------ #

    def nondet(self, compute: Callable[[], Any]) -> Any:
        """Execute a non-deterministic decision under protocol control.

        While logging, the result is recorded; during recovery replay, the
        recorded result is returned instead of re-computing, so the replayed
        execution is identical to the one peers' checkpoints observed.
        """
        return coop.drive(self.co_nondet(compute), self.comm)

    def co_nondet(self, compute: Callable[[], Any]):
        if self._raw:
            return compute()
        yield from self._co_progress()
        if (
            self._protocol
            and self.replay is not None
            and not self.replay.nondet.exhausted
        ):
            t0 = perf_counter()
            value = yield from self.rep.co_serve_nondet()
            self._charge("replay", t0)
            return value
        value = compute()
        if self._protocol and self.state.am_logging:
            t0 = perf_counter()
            self.res_log.record_nondet(value)
            self._charge("result-log", t0)
        return value

    # ------------------------------------------------------------------ #
    # Collectives (Section 4.5).
    # ------------------------------------------------------------------ #

    def _coll_endpoint(self, handle_id: int, phase: int) -> "_LayerCollEndpoint":
        seq = self.coll_seqs.get(handle_id, 0)
        raw = self._raw_comm(handle_id)
        base = LAYER_COLL_BASE - (seq * 2 + phase) * coll_impl._TAG_STRIDE
        return _LayerCollEndpoint(raw, base)

    def _raw_comm(self, handle_id: int) -> Comm:
        if handle_id == WORLD_HANDLE:
            return self.comm
        handle = self.handles.by_id.get(handle_id)
        if handle is None or handle._live is None:
            raise ProtocolError(f"unknown or unbound communicator handle {handle_id}")
        return handle._live

    def _advance_coll_seq(self, handle_id: int) -> None:
        self.coll_seqs[handle_id] = self.coll_seqs.get(handle_id, 0) + 1

    def _co_collective(
        self,
        kind: str,
        executor: Callable[[Any], Any],
        comm: Optional[PseudoHandle] = None,
        loggable: bool = True,
    ):
        """Shared machinery for every staged collective call.

        ``executor`` builds the generator form of the collective algorithm
        over the handed endpoint.  ``loggable=False`` marks barrier: never
        served from the result log (all participants re-execute it after
        restart — guaranteed by the epoch-alignment rule) and never
        recorded.
        """
        yield from self._co_progress()
        self.stats.collectives += 1
        handle_id = comm.handle_id if comm is not None else WORLD_HANDLE
        if not self._protocol:
            ep = self._coll_endpoint(handle_id, 1)
            self._advance_coll_seq(handle_id)
            return (yield from executor(ep))
        if (
            loggable
            and self.replay is not None
            and not self.replay.collectives.exhausted
        ):
            t0 = perf_counter()
            result = self.rep.serve_collective(kind)
            self._charge("replay", t0)
            self._advance_coll_seq(handle_id)
            yield from self._co_maybe_end_replay()
            return result
        # Command exchange before the data call (paper: "each data
        # MPI_Allgather is preceded by a command MPI_Allgather which sends
        # around the relevant control information").
        ctl_ep = self._coll_endpoint(handle_id, 0)
        peer_info = yield from coll_impl.co_allgather(
            ctl_ep, (self.state.epoch, self.state.am_logging)
        )
        data_ep = self._coll_endpoint(handle_id, 1)
        result = yield from executor(data_ep)
        self._advance_coll_seq(handle_id)
        if self.state.am_logging and loggable:
            my_epoch = self.state.epoch
            ended = any(
                epoch == my_epoch and not logging
                for i, (epoch, logging) in enumerate(peer_info)
                if i != self._group_rank(handle_id)
            )
            if ended:
                # A same-epoch participant has stopped logging: logging has
                # globally terminated; do not record the result.
                yield from self._co_finalize_log()
            else:
                t0 = perf_counter()
                self.res_log.record_collective(kind, result)
                self._charge("result-log", t0)
        return result

    def _group_rank(self, handle_id: int) -> int:
        return self._raw_comm(handle_id).rank

    def bcast(self, obj: Any, root: int = 0, comm: Any = None) -> Any:
        return coop.drive(self.co_bcast(obj, root, comm), self.comm)

    def co_bcast(self, obj: Any, root: int = 0, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (yield from self._co_call(self._resolve(comm), "bcast", obj, root))
        return (
            yield from self._co_collective(
                "bcast", lambda ep: coll_impl.co_bcast(ep, obj, root), comm
            )
        )

    def reduce(self, obj: Any, op: Op, root: int = 0, comm: Any = None) -> Any:
        return coop.drive(self.co_reduce(obj, op, root, comm), self.comm)

    def co_reduce(self, obj: Any, op: Op, root: int = 0, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (
                yield from self._co_call(self._resolve(comm), "reduce", obj, op, root)
            )
        return (
            yield from self._co_collective(
                "reduce", lambda ep: coll_impl.co_reduce(ep, obj, op, root), comm
            )
        )

    def allreduce(self, obj: Any, op: Op, comm: Any = None) -> Any:
        return coop.drive(self.co_allreduce(obj, op, comm), self.comm)

    def co_allreduce(self, obj: Any, op: Op, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (
                yield from self._co_call(self._resolve(comm), "allreduce", obj, op)
            )
        return (
            yield from self._co_collective(
                "allreduce", lambda ep: coll_impl.co_allreduce(ep, obj, op), comm
            )
        )

    def gather(self, obj: Any, root: int = 0, comm: Any = None) -> Any:
        return coop.drive(self.co_gather(obj, root, comm), self.comm)

    def co_gather(self, obj: Any, root: int = 0, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (yield from self._co_call(self._resolve(comm), "gather", obj, root))
        return (
            yield from self._co_collective(
                "gather", lambda ep: coll_impl.co_gather(ep, obj, root), comm
            )
        )

    def allgather(self, obj: Any, comm: Any = None) -> list[Any]:
        return coop.drive(self.co_allgather(obj, comm), self.comm)

    def co_allgather(self, obj: Any, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (yield from self._co_call(self._resolve(comm), "allgather", obj))
        return (
            yield from self._co_collective(
                "allgather", lambda ep: coll_impl.co_allgather(ep, obj), comm
            )
        )

    def scatter(self, objs: list[Any] | None, root: int = 0, comm: Any = None) -> Any:
        return coop.drive(self.co_scatter(objs, root, comm), self.comm)

    def co_scatter(self, objs: list[Any] | None, root: int = 0, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (
                yield from self._co_call(self._resolve(comm), "scatter", objs, root)
            )
        return (
            yield from self._co_collective(
                "scatter", lambda ep: coll_impl.co_scatter(ep, objs, root), comm
            )
        )

    def alltoall(self, objs: list[Any], comm: Any = None) -> list[Any]:
        return coop.drive(self.co_alltoall(objs, comm), self.comm)

    def co_alltoall(self, objs: list[Any], comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (yield from self._co_call(self._resolve(comm), "alltoall", objs))
        return (
            yield from self._co_collective(
                "alltoall", lambda ep: coll_impl.co_alltoall(ep, objs), comm
            )
        )

    def scan(self, obj: Any, op: Op, comm: Any = None) -> Any:
        return coop.drive(self.co_scan(obj, op, comm), self.comm)

    def co_scan(self, obj: Any, op: Op, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            return (yield from self._co_call(self._resolve(comm), "scan", obj, op))
        return (
            yield from self._co_collective(
                "scan", lambda ep: coll_impl.co_scan(ep, obj, op), comm
            )
        )

    def barrier(self, comm: Any = None) -> None:
        """MPI_Barrier with the paper's epoch-alignment rule (Section 4.5).

        "All processes involved in the barrier execute an all-to-all
        communication just before the barrier to determine if they are all
        in the same epoch.  If not, processes that have not yet taken their
        local checkpoints do so."
        """
        coop.drive(self.co_barrier(comm), self.comm)

    def co_barrier(self, comm: Any = None):
        if self._raw:
            self.stats.collectives += 1
            yield from self._co_call(self._resolve(comm), "barrier")
            return
        yield from self._co_progress()
        handle_id = comm.handle_id if comm is not None else WORLD_HANDLE
        if self._protocol and self.replay is None:
            ctl_ep = self._coll_endpoint(handle_id, 0)
            epochs = yield from coll_impl.co_allgather(ctl_ep, self.state.epoch)
            if self.state.epoch < max(epochs) and self.ckpt is not None:
                # The forced local checkpoint happens BEFORE this barrier's
                # collective-sequence advance: the checkpoint's resume point
                # re-executes the whole barrier call (the paper's inserted
                # potentialCheckpoint-before-barrier), so its snapshot must
                # not count the alignment exchange the re-execution will
                # perform again.
                t0 = perf_counter()
                yield from self.ckpt.co_take_local_checkpoint()
                self._charge("checkpoint", t0)
            self._advance_coll_seq(handle_id)
        elif self._protocol:
            # Re-executed barrier during replay: alignment already held in
            # the original execution (all participants were in this epoch),
            # but the exchange itself must re-run so tags stay aligned.
            ctl_ep = self._coll_endpoint(handle_id, 0)
            yield from coll_impl.co_allgather(ctl_ep, self.state.epoch)
            self._advance_coll_seq(handle_id)
        yield from self._co_collective(
            "barrier", lambda ep: coll_impl.co_barrier(ep), comm, loggable=False
        )

    # ------------------------------------------------------------------ #
    # potentialCheckpoint (Figure 4).
    # ------------------------------------------------------------------ #

    def potential_checkpoint(self) -> bool:
        """Take a local checkpoint if one has been requested.

        Returns True if a checkpoint was taken; always False on stacks
        without a checkpoint stage.
        """
        return coop.drive(self.co_potential_checkpoint(), self.comm)

    def co_potential_checkpoint(self):
        if self._raw:
            return False
        yield from self._co_progress()
        if self.ckpt is None:
            return False
        t0 = perf_counter()
        taken = yield from self.ckpt.co_potential_checkpoint()
        self._charge("checkpoint", t0)
        return taken

    def request_checkpoint_now(self) -> None:
        """Ask the initiator to start a wave at its next poll (tests/API)."""
        if self.ckpt is None:
            raise ProtocolError(
                "request_checkpoint_now needs a checkpoint stage (initiator-only)"
            )
        self.ckpt.request_checkpoint_now()

    # ------------------------------------------------------------------ #
    # MPI library persistent-object virtualisation (Section 5.2).
    # ------------------------------------------------------------------ #

    def _creation_replay(self, fn: str) -> tuple[bool, Optional[PseudoHandle]]:
        """Swallow a re-executed persistent-object creation after restore.

        Applications that restart *from the top* (the manual-state path)
        re-execute their pre-checkpoint ``comm_dup``/``comm_split``/... calls.
        Those objects already exist — recreated by the call-record replay at
        restore — so while the creation cursor has records left, a creation
        call returns the restored handle instead of making a new one.  The
        precompiled path resumes past these calls and disables the cursor.
        """
        if (
            self._creation_cursor is None
            or self._creation_cursor >= len(self.mpi_log.records)
        ):
            return False, None
        record = self.mpi_log.records[self._creation_cursor]
        if record.fn != fn:
            raise RecoveryError(
                f"rank {self.rank}: re-executed creation {fn!r} but the "
                f"restored call record says {record.fn!r}"
            )
        self._creation_cursor += 1
        if record.handle_id >= 0:
            return True, self.handles.by_id[record.handle_id]
        return True, None

    def skip_creation_replay(self) -> None:
        """Disable creation-cursor matching (precompiled-application path)."""
        self._creation_cursor = None

    def comm_dup(self, parent: Any = None) -> Any:
        """Duplicate a communicator behind a (pseudo or raw) handle."""
        if self._raw:
            return self._new_handle("comm", self._resolve(parent).dup())
        replayed, handle = self._creation_replay("comm_dup")
        if replayed:
            return handle
        parent_id = parent.handle_id if parent is not None else WORLD_HANDLE
        handle = self.mpi_log.new_handle("comm")
        handle._live = self._raw_comm(parent_id).dup()
        self.mpi_log.record("comm_dup", (parent_id,), handle)
        self.handles.add(handle)
        self.coll_seqs[handle.handle_id] = 0
        return handle

    def comm_split(
        self, color: int, key: int | None = None, parent: Any = None
    ) -> Optional[Any]:
        """Split a communicator behind a (pseudo or raw) handle (collective)."""
        return coop.drive(self.co_comm_split(color, key, parent), self.comm)

    def co_comm_split(self, color: int, key: int | None = None, parent: Any = None):
        if self._raw:
            child = yield from self._co_call(self._resolve(parent), "split", color, key)
            if child is None:
                return None
            return self._new_handle("comm", child)
        if self._creation_cursor is not None and self._creation_cursor < len(self.mpi_log.records):
            record = self.mpi_log.records[self._creation_cursor]
            fn = "comm_split" if record.fn == "comm_split" else "comm_split_undefined"
            replayed, handle = self._creation_replay(fn)
            if replayed:
                return handle
        parent_id = parent.handle_id if parent is not None else WORLD_HANDLE
        raw_child = yield from self._co_call(self._raw_comm(parent_id), "split", color, key)
        if raw_child is None:
            # Participation is still recorded: the split must be re-executed
            # collectively on restore even by ranks that got no child.
            self.mpi_log.record("comm_split_undefined", (parent_id, key))
            return None
        handle = self.mpi_log.new_handle("comm")
        handle._live = raw_child
        self.mpi_log.record("comm_split", (parent_id, color, key), handle)
        self.handles.add(handle)
        self.coll_seqs[handle.handle_id] = 0
        return handle

    def op_create(self, name: str, fn: Callable[[Any, Any], Any]) -> Any:
        """Create a user-defined reduction op behind a (pseudo or raw) handle.

        On staged stacks ``fn`` must be importable/stable under ``name``:
        the call record replays ``Op.create(name, fn)`` by looking the op up
        at restore, so the application must re-register the op before
        restore (module import time is the natural place).
        """
        if self._raw:
            return self._new_handle("op", Op.create(name, fn))
        replayed, handle = self._creation_replay("op_create")
        if replayed:
            return handle
        handle = self.mpi_log.new_handle("op")
        handle._live = Op.create(name, fn)
        self.mpi_log.record("op_create", (name,), handle)
        self.handles.add(handle)
        return handle

    def attach_buffer(self, nbytes: int) -> None:
        """Record a direct library state change (MPI_Attach_buffer analogue)."""
        if self._raw:
            return
        replayed, _ = self._creation_replay("attach_buffer")
        if replayed:
            return
        self.mpi_log.record("attach_buffer", (nbytes,))

    def comm_rank(self, handle: Any = None) -> int:
        if self._raw:
            return self._resolve(handle).rank
        return self._raw_comm(handle.handle_id if handle else WORLD_HANDLE).rank

    def comm_size(self, handle: Any = None) -> int:
        if self._raw:
            return self._resolve(handle).size
        return self._raw_comm(handle.handle_id if handle else WORLD_HANDLE).size

    def _co_replay_executors(self) -> dict[str, Callable[..., Any]]:
        """Generator-form executors for the recorded-call replay at restore.

        ``comm_split`` is a collective over the parent communicator, so its
        re-execution is a scheduling point; the other creations are local.
        """

        def comm_dup(parent_id: int):
            return self._raw_comm(parent_id).dup()
            yield  # pragma: no cover -- marks this function as a generator

        def comm_split(parent_id: int, color: int, key: int | None):
            return (yield from self._co_call(self._raw_comm(parent_id), "split", color, key))

        def comm_split_undefined(parent_id: int, key: int | None):
            yield from self._co_call(self._raw_comm(parent_id), "split", None, key)
            return None

        def op_create(name: str):
            return Op.lookup(name)
            yield  # pragma: no cover

        def attach_buffer(nbytes: int):
            return None
            yield  # pragma: no cover

        return {
            "comm_dup": comm_dup,
            "comm_split": comm_split,
            "comm_split_undefined": comm_split_undefined,
            "op_create": op_create,
            "attach_buffer": attach_buffer,
        }

    def _co_mpi_replay(self):
        """Re-execute every recorded persistent-object call in order (the
        generator form of :meth:`MpiStateLog.replay`)."""
        executors = self._co_replay_executors()
        handles = self.handles.by_id
        for rec in self.mpi_log.records:
            fn = executors.get(rec.fn)
            if fn is None:
                raise RecoveryError(f"no executor for recorded MPI call {rec.fn!r}")
            live = yield from fn(*rec.args)
            if rec.handle_id >= 0:
                handle = handles.get(rec.handle_id)
                if handle is None:
                    raise RecoveryError(
                        f"recorded call {rec.fn!r} targets unknown handle {rec.handle_id}"
                    )
                handle._live = live

    # ------------------------------------------------------------------ #
    # Recovery (restart from a committed checkpoint).
    # ------------------------------------------------------------------ #

    def restore_from(self, data: CheckpointData, logs: EpochLogs) -> None:
        """Reinitialise this pipeline from a committed local checkpoint.

        Must be called by *every* rank of the job at restart, before any
        application re-execution: it performs a synchronous suppression
        exchange (each receiver tells each sender which early-message IDs to
        suppress) and arms the deterministic replay engine.
        """
        coop.drive(self.co_restore_from(data, logs), self.comm)

    def co_restore_from(self, data: CheckpointData, logs: EpochLogs):
        if self.rep is None:
            raise RecoveryError(
                f"rank {self.rank}: restore_from on a stack without a replay stage"
            )
        if data.rank != self.rank:
            raise RecoveryError(
                f"rank {self.rank} handed checkpoint of rank {data.rank}"
            )
        self.state = copy.deepcopy(data.protocol)
        self.coll_seqs = dict(data.coll_seqs)
        self.mpi_log = copy.deepcopy(data.mpi_records) if data.mpi_records else MpiStateLog()
        self.handles.restore([copy.deepcopy(h) for h in data.handles])
        yield from self._co_mpi_replay()
        # Arm the creation cursor: a from-the-top restart will re-execute
        # these recorded creations and must be handed the restored handles.
        self._creation_cursor = 0
        self.requests.restore([copy.deepcopy(r) for r in data.requests])
        logs = copy.deepcopy(logs)
        logs.rewind()
        self.replay = logs
        self._replay_done_sent = False
        # --- suppression exchange (synchronous, all ranks participate) ---
        outgoing = [
            tuple(data.early_ids.get(sender, ())) for sender in range(self.nprocs)
        ]
        ep = _LayerCollEndpoint(self.comm, RESTORE_BASE)
        incoming = yield from coll_impl.co_alltoall(ep, outgoing)
        self.suppress = {
            dest: set(ids) for dest, ids in enumerate(incoming) if ids
        }
        if self.initiator is not None:
            self.initiator.begin_recovery(set(range(self.nprocs)))
            self.initiator.last_commit_time = self.comm.wtime()
        for stage in self.stages:
            if type(stage).on_restore is not ProtocolStage.on_restore:
                stage.on_restore(data, logs)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "proto", "restore", rank=self.rank, epoch=self.state.epoch,
                late=len(logs.late), matches=len(logs.matches),
            )
        yield from self._co_maybe_end_replay()

    @property
    def in_replay(self) -> bool:
        return self.replay is not None


class _LayerCollEndpoint:
    """Collective endpoint over a raw communicator with an explicit tag base.

    The pipeline cannot use the raw communicator's own collective tag
    counter: replay-served collectives perform no raw communication, so raw
    counters would drift apart between ranks.  The pipeline derives tags
    from its own checkpointed per-communicator sequence numbers instead.
    """

    def __init__(self, raw: Comm, base: int) -> None:
        self._raw = raw
        self._base = base
        self._used = False

    @property
    def coll_rank(self) -> int:
        return self._raw.rank

    @property
    def coll_size(self) -> int:
        return self._raw.size

    def coll_next_tag_block(self) -> int:
        if self._used:
            raise ProtocolError("layer collective endpoint reused")
        self._used = True
        return self._base

    def coll_send(self, dest: int, payload: Any, tag: int) -> None:
        self._raw.coll_send(dest, payload, tag)

    def coll_recv(self, source: int, tag: int) -> Any:
        return self._raw.coll_recv(source, tag)

    # Generator twins (cooperative core); fall back to the synchronous
    # surface for comm doubles, which never suspend.

    def co_coll_send(self, dest: int, payload: Any, tag: int):
        co = getattr(self._raw, "co_coll_send", None)
        if co is None:
            self._raw.coll_send(dest, payload, tag)
        else:
            yield from co(dest, payload, tag)

    def co_coll_recv(self, source: int, tag: int):
        co = getattr(self._raw, "co_coll_recv", None)
        if co is None:
            return self._raw.coll_recv(source, tag)
        return (yield from co(source, tag))
