"""Piggyback attach/strip stage (paper Section 4.2).

Owns the wire codec: every outgoing application message gets a
``(epoch-color, amLogging, messageID)`` word attached; every incoming
envelope gets it stripped and decoded into a
:class:`~repro.protocol.piggyback.PiggybackInfo`.
"""

from __future__ import annotations

from repro.protocol.piggyback import PiggybackInfo, get_codec
from repro.protocol.stages.base import C3Config, ProtocolStage


class PiggybackStage(ProtocolStage):
    """Attach the piggyback word on send; strip and decode it on receive."""

    name = "piggyback"

    def __init__(self, config: C3Config) -> None:
        super().__init__(config)
        self.codec = get_codec(config.codec)

    def encode(self, epoch: int, am_logging: bool, message_id: int):
        """The wire word for one outgoing application message."""
        return self.codec.encode(epoch, am_logging, message_id)

    def blank(self):
        """The wire word used when the protocol itself is disabled (the
        legacy piggyback-only configuration still pays the encode cost)."""
        return self.codec.encode(0, False, 0)

    def decode(self, env) -> PiggybackInfo:
        """Strip one arrived envelope's piggyback word."""
        return self.codec.decode(env.piggyback, self.core.state.epoch)
