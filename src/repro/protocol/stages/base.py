"""Protocol-stage interface, configuration, and the stage registry.

The C3 layer (paper Figure 4) is composed of single-responsibility
*stages* threaded together by a :class:`~repro.protocol.stages.pipeline.
ProtocolPipeline`.  Each stage owns one protocol concern:

=============  =====================================================
Stage name     Concern
=============  =====================================================
piggyback      attach/strip the ``(color, amLogging, messageID)``
               word on every application message (Section 4.2)
classifier     late / intra-epoch / early classification (Def. 1)
message-log    late-message payload log, early-ID recording, match
               records, receive counters (Figure 4 event handler)
result-log     non-deterministic decision + collective result
               logging under the amLogging rule (Sections 3.2, 4.5)
replay         deterministic re-execution from the logged window and
               early-message resend suppression (recovery)
checkpoint     control plane, initiator, ``potentialCheckpoint``,
               epoch transitions, ``mySendCount``/``receivedAll?``
=============  =====================================================

Stages share the pipeline as a blackboard: protocol variables
(:class:`~repro.protocol.state.ProtocolState`), logs, handle tables and
stats live on the pipeline core; stages carry behaviour.  Custom stages
are registered with :func:`register_stage` — the same open-registry
idiom as :func:`repro.ckpt.register_backend` — and composed into named
stacks with :func:`repro.protocol.stages.registry.register_stack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ClassVar, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocol.stages.pipeline import ProtocolPipeline


@dataclass
class C3Config:
    """Behavioural switches for the protocol layer.

    The four benchmark variants of Section 6 map to the stage stacks of
    :mod:`repro.protocol.stages.registry`:

    * V0 "unmodified"      — no layer at all (the empty stack; raw comm);
    * V1 "piggyback only"  — the protocol layer is active
      (``protocol_enabled=True``: piggybacking, classification, logging
      machinery) but there is no checkpoint stage and
      ``checkpoint_interval=None``, so no wave is ever initiated — the
      paper's "Using Protocol Layer, No Checkpoints";
    * V2 "no app state"    — ``protocol_enabled=True, save_app_state=False``;
    * V3 "full"            — everything on.
    """

    codec: str = "packed"
    checkpoint_interval: Optional[float] = None
    protocol_enabled: bool = True
    #: When False, messages carry no piggyback at all (the paper's
    #: "Unmodified Program" baseline); implies no protocol either.
    piggyback_enabled: bool = True
    save_app_state: bool = True
    initiator_rank: int = 0
    #: Deep-copy logged payloads (protects the log from later mutation by
    #: the application; disable only for immutable-payload benchmarks).
    copy_logged_payloads: bool = True


@dataclass
class LayerStats:
    """Per-rank protocol observability counters."""

    sends: int = 0
    receives: int = 0
    suppressed_sends: int = 0
    late_logged: int = 0
    early_recorded: int = 0
    nondet_logged: int = 0
    collectives: int = 0
    collective_results_logged: int = 0
    checkpoints_taken: int = 0
    replayed_late: int = 0
    replayed_matches: int = 0
    replayed_nondet: int = 0
    replayed_collectives: int = 0
    control_messages: int = 0
    log_finalizations: int = 0
    #: Checkpoint-storage accounting from per-generation manifests: what a
    #: flat pickle store would have written vs. what actually hit storage.
    ckpt_logical_bytes: int = 0
    ckpt_stored_bytes: int = 0
    ckpt_chunks_reused: int = 0
    #: Per-stage observability: dispatches into each pipeline stage and
    #: the wall-clock seconds spent inside them (keys are stage names;
    #: populated only for the stages present in this rank's stack).
    stage_calls: dict[str, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)


class ProtocolStage:
    """Base class for pipeline stages.

    A stage is bound to exactly one pipeline via :meth:`bind` before any
    traffic flows.  The six built-in concerns are dispatched explicitly by
    the pipeline; in addition, *any* stage may override the generic
    observer hooks below (``on_send`` / ``on_receive`` / ``on_restore``)
    — the pipeline invokes them only when overridden, so unused hooks
    cost nothing on the hot path.
    """

    #: Registry name; also the key under which per-stage counters appear.
    name: ClassVar[str] = "stage"

    def __init__(self, config: C3Config) -> None:
        self.config = config
        self.core: "ProtocolPipeline" = None  # type: ignore[assignment]

    def bind(self, core: "ProtocolPipeline") -> None:
        self.core = core

    # -- generic observer hooks (override to participate) --------------- #

    def on_send(self, payload, dest: int, tag: int) -> None:
        """Called for every application send/isend (staged stacks only)."""

    def on_receive(self, env) -> None:
        """Called after a received message has been classified/delivered."""

    def on_restore(self, data, logs) -> None:
        """Called at the end of ``restore_from`` (recovery restart)."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


# ===================================================================== #
# Stage registry (open, like repro.ckpt's backend registry).
# ===================================================================== #

StageFactory = Callable[[C3Config], ProtocolStage]

_STAGES: dict[str, StageFactory] = {}


def register_stage(name: str, factory: StageFactory, *, replace: bool = False) -> None:
    """Register a stage factory under ``name``.

    ``factory(config)`` must return a fresh, unbound
    :class:`ProtocolStage`.  Re-registering an existing name requires
    ``replace=True`` (guards against accidental shadowing of built-ins).
    """
    if name in _STAGES and not replace:
        raise ConfigError(
            f"stage {name!r} is already registered; pass replace=True to override"
        )
    _STAGES[name] = factory


def make_stage(name: str, config: C3Config) -> ProtocolStage:
    try:
        factory = _STAGES[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol stage {name!r}; available: {sorted(_STAGES)}"
        ) from None
    return factory(config)


def list_stages() -> list[str]:
    return sorted(_STAGES)
