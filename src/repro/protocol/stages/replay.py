"""Replay-engine stage: deterministic re-execution after a rollback.

After ``restore_from`` arms the pipeline with the committed epoch's logs,
this stage serves the logged window back to the application: receives are
resolved through the match log (late payloads from the late log,
intra-epoch messages awaited by exact messageID), non-deterministic
decisions and collective results come straight from their logs, and
re-executed sends whose IDs the receiver checkpointed early are
suppressed.  When every log is exhausted the stage reports ``ReplayDone``
to the initiator so the next checkpoint wave may begin.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RecoveryError
from repro.protocol import control as ctl
from repro.protocol.logs import CollectiveRecord, MatchRecord
from repro.protocol.stages.base import ProtocolStage
from repro.simmpi import coop


class ReplayStage(ProtocolStage):
    """Serve receives/nondet/collectives from the logged window."""

    name = "replay"

    # -- send-side suppression ------------------------------------------ #

    def is_suppressed(self, dest: int, message_id: int) -> bool:
        """Early-message resend suppression (Section 4.2 question 3)."""
        return message_id in self.core.suppress.get(dest, ())

    # -- receive path --------------------------------------------------- #

    def serve_recv(self) -> Any:
        """Serve one receive deterministically from the match log."""
        return coop.drive(self.co_serve_recv(), self.core.comm)

    def co_serve_recv(self):
        core = self.core
        assert core.replay is not None
        rec: MatchRecord = core.replay.matches.next()
        core.stats.replayed_matches += 1
        if rec.was_late:
            late = core.replay.late.take_by_id(rec.source, rec.message_id)
            if late is None:
                raise RecoveryError(
                    f"rank {core.rank}: match log names late message "
                    f"({rec.source}, {rec.message_id}) absent from late log"
                )
            core.stats.replayed_late += 1
            yield from self.co_maybe_end_replay()
            return late.payload
        # Intra-epoch message: the sender is re-executing deterministically
        # and will re-post it with the same messageID; wait for exactly it.
        wanted_id = rec.message_id

        def _matches(env) -> bool:
            if env.piggyback is None:
                return False
            info = core.codec.decode(env.piggyback, core.state.epoch)
            return info.message_id == wanted_id

        env = yield from core._co_recv_envelope(rec.source, rec.tag, predicate=_matches)
        core.state.current_receive_count[rec.source] = (
            core.state.current_receive_count.get(rec.source, 0) + 1
        )
        yield from self.co_maybe_end_replay()
        return env.payload

    # -- nondet / collectives ------------------------------------------- #

    def serve_nondet(self) -> Any:
        return coop.drive(self.co_serve_nondet(), self.core.comm)

    def co_serve_nondet(self):
        core = self.core
        value = core.replay.nondet.next()
        core.stats.replayed_nondet += 1
        yield from self.co_maybe_end_replay()
        return value

    def serve_collective(self, kind: str) -> Any:
        core = self.core
        rec: CollectiveRecord = core.replay.collectives.next()
        if rec.kind != kind:
            raise RecoveryError(
                f"rank {core.rank}: replaying {kind} but log has {rec.kind}"
            )
        core.stats.replayed_collectives += 1
        return rec.result

    # -- lifecycle ------------------------------------------------------- #

    def maybe_end_replay(self) -> None:
        coop.drive(self.co_maybe_end_replay(), self.core.comm)

    def co_maybe_end_replay(self):
        core = self.core
        if core.replay is None or core._replay_done_sent:
            return
        if core.replay.all_exhausted():
            core._replay_done_sent = True
            core.replay = None
            tr = core.tracer
            if tr is not None:
                tr.emit(
                    "proto", "replay_end", rank=core.rank, epoch=core.state.epoch,
                    replayed_matches=core.stats.replayed_matches,
                    replayed_nondet=core.stats.replayed_nondet,
                    replayed_collectives=core.stats.replayed_collectives,
                )
            yield from core._co_send_control(
                ctl.ReplayDone(epoch=core.state.epoch, sender=core.rank),
                self.config.initiator_rank,
            )
