"""The C3 protocol layer (paper Section 4, Figure 4) — facade.

``C3Layer`` sits between the application and the (simulated) MPI library
and intercepts every communication call, exactly as in the paper's
architecture (Figure 2).  Since the stage-pipeline refactor it is a slim
facade: the engine is :class:`repro.protocol.stages.pipeline.
ProtocolPipeline`, and each protocol concern lives in its own
single-responsibility stage under :mod:`repro.protocol.stages`:

* ``piggyback``   — attach/strip of ``(epoch-color, amLogging,
  messageID)`` on every application message (Section 4.2);
* ``classifier``  — late / intra-epoch / early classification
  (Figure 4, ``communicationEventHandler``);
* ``message-log`` — late-message logging, early-ID recording, match
  records and receive counters;
* ``result-log``  — non-determinism and collective result logging under
  the amLogging conjunction rule (Sections 3.2, 4.5);
* ``replay``      — recovery: early-message resend suppression and
  deterministic replay of the logged window;
* ``checkpoint``  — control plane, initiator, local checkpoints at
  ``potentialCheckpoint`` call sites, the ``mySendCount`` /
  ``receivedAll?`` completion mechanism (Section 4.3).

``C3Layer(comm, config, storage)`` keeps its historical constructor: the
boolean switches of :class:`C3Config` map onto a stage stack
(``protocol_enabled`` → the full stack, ``piggyback_enabled`` alone → the
piggyback stage, neither → the empty stack).  The recovery driver builds
layers from *named* stacks instead — see
:func:`repro.protocol.stages.registry.variant_stack`.

One deliberate refinement over the paper's prose: the collective logging
rule exchanges ``(epoch, amLogging)`` rather than ``amLogging`` alone.  A
bare conjunction cannot distinguish Figure 5's call A (a participant that
has *not yet checkpointed* — result must be logged) from call B (a
participant that *finished* logging — logging must stop).  Classifying each
participant's contribution with the same late/intra/early rule as
point-to-point messages resolves both cases; with the packed codec this is
exactly the paper's color-bit reasoning applied to collectives.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.protocol.stages.base import C3Config, LayerStats
from repro.protocol.stages.pipeline import (
    LAYER_COLL_BASE,
    RESTORE_BASE,
    WORLD_HANDLE,
    ProtocolPipeline,
)
from repro.protocol.stages.registry import StackSpec, build_stages, stages_for_config
from repro.simmpi.comm import Comm
from repro.statesave.storage import Storage

__all__ = [
    "C3Config",
    "C3Layer",
    "LAYER_COLL_BASE",
    "LayerStats",
    "RESTORE_BASE",
    "WORLD_HANDLE",
]


class C3Layer(ProtocolPipeline):
    """Per-process protocol engine (facade over the stage pipeline).

    ``stack`` may name an explicit stage composition (a
    :class:`~repro.protocol.stages.registry.StackSpec` or a sequence of
    stage names); without one, the stack is derived from ``config``'s
    legacy boolean switches.
    """

    def __init__(
        self,
        comm: Comm,
        config: C3Config,
        storage: Storage,
        state_provider: Optional[Callable[[], Any]] = None,
        stack: StackSpec | Sequence[str] | None = None,
    ) -> None:
        if stack is None:
            stack = stages_for_config(config)
        super().__init__(
            comm,
            stages=build_stages(stack, config),
            config=config,
            storage=storage,
            state_provider=state_provider,
        )
