"""The C3 protocol layer (paper Section 4, Figure 4).

This layer sits between the application and the (simulated) MPI library and
intercepts every communication call, exactly as in the paper's architecture
(Figure 2).  It implements:

* piggybacking of ``(epoch-color, amLogging, messageID)`` on every
  application message (Section 4.2);
* classification of incoming messages as late / intra-epoch / early and the
  corresponding actions: logging late messages, recording early-message IDs,
  terminating logging on intra-epoch messages from non-logging senders
  (Figure 4, ``communicationEventHandler``);
* the ``mySendCount`` / ``receivedAll?`` completion mechanism for late
  messages (Section 4.3);
* local checkpoints at ``potentialCheckpoint`` call sites, including the
  epoch transition bookkeeping of Figure 4;
* collective communication with result logging under the amLogging
  conjunction rule and the barrier epoch-alignment rule (Section 4.5);
* pseudo-handle virtualisation of requests and persistent opaque objects
  (Section 5.2);
* recovery: early-message resend suppression, deterministic replay of the
  logged window (late messages, receive matches, non-deterministic events,
  collective results), and reconstruction of the library's state.

One deliberate refinement over the paper's prose: the collective logging
rule exchanges ``(epoch, amLogging)`` rather than ``amLogging`` alone.  A
bare conjunction cannot distinguish Figure 5's call A (a participant that
has *not yet checkpointed* — result must be logged) from call B (a
participant that *finished* logging — logging must stop).  Classifying each
participant's contribution with the same late/intra/early rule as
point-to-point messages resolves both cases; with the packed codec this is
exactly the paper's color-bit reasoning applied to collectives.
"""

from __future__ import annotations

import copy
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ProtocolError, RecoveryError
from repro.protocol import control as ctl
from repro.protocol.classify import MessageClass, classify_by_color, classify_by_epoch
from repro.protocol.initiator import Initiator
from repro.protocol.logs import (
    CollectiveRecord,
    EpochLogs,
    LateRecord,
    MatchRecord,
)
from repro.protocol.mpi_state import HandleRegistry, MpiStateLog
from repro.protocol.piggyback import FullCodec, get_codec
from repro.protocol.pseudo_handles import PseudoHandle, PseudoRequest, RequestTable
from repro.protocol.state import ProtocolState
from repro.simmpi import collectives_impl as coll_impl
from repro.simmpi.comm import Comm
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG, TAG_CONTROL
from repro.simmpi.op import Op
from repro.statesave.format import CheckpointData
from repro.statesave.storage import Storage

#: Base of the tag region used by layer-level collective instances.  Raw
#: communicator collectives use the -1000 region; keeping the layer in its
#: own region means a V0 (uninstrumented) app and the layer can never clash.
LAYER_COLL_BASE = -10_000_000

#: Tag block used by the one-shot suppression exchange at restart.
RESTORE_BASE = -1_000_000_000

#: Pseudo-handle id denoting the world communicator.
WORLD_HANDLE = -1


def _accepts_nprocs(commit: Callable[..., Any]) -> bool:
    """Whether a storage's ``commit`` takes the (1.2+) ``nprocs`` keyword.

    Decided once by signature inspection — a runtime TypeError fallback
    would mask genuine TypeErrors raised inside a modern commit.
    """
    try:
        params = inspect.signature(commit).parameters
    except (TypeError, ValueError):  # builtins/uninspectable: assume modern
        return True
    return "nprocs" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


@dataclass
class C3Config:
    """Behavioural switches for the protocol layer.

    The four benchmark variants of Section 6 map to:

    * V0 "unmodified"      — no layer at all (raw comm);
    * V1 "piggyback only"  — ``protocol_enabled=False``;
    * V2 "no app state"    — ``protocol_enabled=True, save_app_state=False``;
    * V3 "full"            — everything on.
    """

    codec: str = "packed"
    checkpoint_interval: Optional[float] = None
    protocol_enabled: bool = True
    #: When False, messages carry no piggyback at all (the paper's
    #: "Unmodified Program" baseline); implies no protocol either.
    piggyback_enabled: bool = True
    save_app_state: bool = True
    initiator_rank: int = 0
    #: Deep-copy logged payloads (protects the log from later mutation by
    #: the application; disable only for immutable-payload benchmarks).
    copy_logged_payloads: bool = True


@dataclass
class LayerStats:
    """Per-rank protocol observability counters."""

    sends: int = 0
    receives: int = 0
    suppressed_sends: int = 0
    late_logged: int = 0
    early_recorded: int = 0
    nondet_logged: int = 0
    collectives: int = 0
    collective_results_logged: int = 0
    checkpoints_taken: int = 0
    replayed_late: int = 0
    replayed_matches: int = 0
    replayed_nondet: int = 0
    replayed_collectives: int = 0
    control_messages: int = 0
    log_finalizations: int = 0
    #: Checkpoint-storage accounting from per-generation manifests: what a
    #: flat pickle store would have written vs. what actually hit storage.
    ckpt_logical_bytes: int = 0
    ckpt_stored_bytes: int = 0
    ckpt_chunks_reused: int = 0


class C3Layer:
    """Per-process protocol engine."""

    def __init__(
        self,
        comm: Comm,
        config: C3Config,
        storage: Storage,
        state_provider: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.comm = comm
        self.config = config
        self.storage = storage
        self.state_provider = state_provider
        self.codec = get_codec(config.codec)
        self.rank = comm.rank
        self.nprocs = comm.size
        self.state = ProtocolState(rank=self.rank, nprocs=self.nprocs)
        self.logs = EpochLogs(epoch=0)
        self.replay: Optional[EpochLogs] = None
        self._replay_done_sent = False
        self.suppress: dict[int, set[int]] = {}
        self.requests = RequestTable()
        self.mpi_log = MpiStateLog()
        self.handles = HandleRegistry()
        #: Creation-replay cursor (see _creation_replay); None == disabled
        #: (fresh start or precompiled resume), set to 0 by restore_from.
        self._creation_cursor: Optional[int] = None
        #: Per-communicator collective call sequence (world = WORLD_HANDLE).
        self.coll_seqs: dict[int, int] = {WORLD_HANDLE: 0}
        self.stats = LayerStats()
        self._commit_accepts_nprocs = _accepts_nprocs(storage.commit)
        self.initiator: Optional[Initiator] = None
        if self.rank == config.initiator_rank and config.protocol_enabled:
            self.initiator = Initiator(
                nprocs=self.nprocs,
                interval=config.checkpoint_interval,
                send_control=self._send_control,
                commit=self._commit,
                now=self.comm.wtime,
            )
        #: Per-generation storage manifests for this rank's checkpoints,
        #: in wave order (observability; see :mod:`repro.ckpt`).
        self.generation_manifests: list[Any] = []
        #: Hook invoked right after a local checkpoint is written (tests).
        self.on_checkpoint: Optional[Callable[[CheckpointData], None]] = None

    # ================================================================== #
    # Control plane.
    # ================================================================== #

    def _send_control(self, msg: ctl.ControlMessage, dest: int) -> None:
        if dest == self.rank:
            self._handle_control(msg, self.rank)
        else:
            self.comm.send(msg, dest, tag=TAG_CONTROL)

    def _commit(self, epoch: int, now: float) -> None:
        if self._commit_accepts_nprocs:
            self.storage.commit(epoch, now, nprocs=self.nprocs)
        else:
            # Custom storages implementing the pre-1.2 two-argument commit
            # keep working; they just forgo validated N->N-1 fallback.
            self.storage.commit(epoch, now)
        self.storage.gc(self.nprocs, keep_epoch=epoch)

    def _progress(self) -> None:
        """Drain and handle queued control messages; poll the initiator."""
        if not self.config.protocol_enabled:
            return
        while True:
            env = self.comm.take_matching(tag=TAG_CONTROL)
            if env is None:
                break
            self.stats.control_messages += 1
            self._handle_control(env.payload, env.source)
        if self.initiator is not None:
            self.initiator.poll(self.state.epoch)

    def _handle_control(self, msg: ctl.ControlMessage, source: int) -> None:
        if isinstance(msg, ctl.PleaseCheckpoint):
            if self.state.epoch < msg.epoch and self.state.requested_target < msg.epoch:
                self.state.checkpoint_requested = True
                self.state.requested_target = msg.epoch
        elif isinstance(msg, ctl.MySendCount):
            if msg.epoch not in (self.state.epoch, self.state.epoch + 1):
                raise ProtocolError(
                    f"rank {self.rank}: mySendCount for epoch {msg.epoch} "
                    f"while in epoch {self.state.epoch}"
                )
            self.state.total_sent[msg.sender] = msg.count
            if self.state.am_logging:
                self._received_all_check()
        elif isinstance(msg, ctl.ReadyToStopLogging):
            self._require_initiator("readyToStopLogging")
            self.initiator.on_ready(msg.sender, msg.epoch)
        elif isinstance(msg, ctl.StopLogging):
            self._finalize_log()
        elif isinstance(msg, ctl.StoppedLogging):
            self._require_initiator("stoppedLogging")
            self.initiator.on_stopped(msg.sender, msg.epoch)
        elif isinstance(msg, ctl.ReplayDone):
            self._require_initiator("replayDone")
            self.initiator.on_replay_done(msg.sender)
        else:
            raise ProtocolError(f"unknown control message {msg!r}")

    def _require_initiator(self, what: str) -> None:
        if self.initiator is None:
            raise ProtocolError(
                f"rank {self.rank} received initiator-only control {what!r}"
            )

    # ================================================================== #
    # receivedAll? / finalizeLog (Figure 4).
    # ================================================================== #

    def _received_all_check(self) -> None:
        if self.state.ready_sent or not self.state.am_logging:
            return
        if self.state.all_late_received():
            self.state.ready_sent = True
            self.state.reset_total_sent()
            self._send_control(
                ctl.ReadyToStopLogging(epoch=self.state.epoch, sender=self.rank),
                self.config.initiator_rank,
            )

    def _finalize_log(self) -> None:
        if not self.state.am_logging:
            return
        self.state.am_logging = False
        self.stats.log_finalizations += 1
        self.storage.write_log(self.rank, self.state.epoch, self.logs)
        self._send_control(
            ctl.StoppedLogging(epoch=self.state.epoch, sender=self.rank),
            self.config.initiator_rank,
        )

    # ================================================================== #
    # Send path.
    # ================================================================== #

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Application blocking send with piggybacked protocol data."""
        self._progress()
        self.stats.sends += 1
        if not self.config.protocol_enabled:
            if not self.config.piggyback_enabled:
                self.comm.send(payload, dest, tag)
                return
            wire = self.codec.encode(0, False, 0)
            self.comm.send(payload, dest, tag, piggyback=wire)
            return
        message_id = self.state.note_send(dest)
        if message_id in self.suppress.get(dest, ()):
            # Early-message resend suppression (Section 4.2 question 3):
            # the receiver's checkpoint already contains this message, so it
            # must not be re-posted; bookkeeping still advances so that
            # subsequent IDs and the next wave's counts line up.
            self.stats.suppressed_sends += 1
            return
        wire = self.codec.encode(self.state.epoch, self.state.am_logging, message_id)
        self.comm.send(payload, dest, tag, piggyback=wire)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> PseudoRequest:
        """Nonblocking send; returns a pseudo-request (Section 5.2)."""
        self._progress()
        self.stats.sends += 1
        req = self.requests.new("isend", dest=dest, tag=tag)
        if not self.config.protocol_enabled:
            if not self.config.piggyback_enabled:
                self.comm.isend(payload, dest, tag)
                return req
            wire = self.codec.encode(0, False, 0)
            self.comm.isend(payload, dest, tag, piggyback=wire)
            return req
        message_id = self.state.note_send(dest)
        if message_id in self.suppress.get(dest, ()):
            self.stats.suppressed_sends += 1
            return req
        wire = self.codec.encode(self.state.epoch, self.state.am_logging, message_id)
        self.comm.isend(payload, dest, tag, piggyback=wire)
        return req

    # ================================================================== #
    # Receive path.
    # ================================================================== #

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Application blocking receive."""
        self._progress()
        self.stats.receives += 1
        if not self.config.protocol_enabled:
            env = self.comm.recv_envelope(source, tag)
            if env.piggyback is not None:
                # Piggyback-only variant still pays the decode cost.
                self.codec.decode(env.piggyback, self.state.epoch)
            return env.payload
        if self.replay is not None and not self.replay.matches.exhausted:
            return self._replay_recv()
        env = self.comm.recv_envelope(source, tag)
        return self._classify_and_deliver(env)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> PseudoRequest:
        """Nonblocking receive pseudo-request."""
        self._progress()
        req = self.requests.new("irecv", source=source, tag=tag)
        if self.config.protocol_enabled and self.replay is not None:
            # During replay, completion is resolved through the match log at
            # wait time; posting a raw receive could steal messages that the
            # replay engine must route by messageID.
            return req
        req._live = self.comm.irecv(source, tag)
        return req

    def wait(self, req: PseudoRequest) -> Any:
        """Complete a pseudo-request (the MPI_Wait analogue)."""
        self._progress()
        if req.consumed:
            raise ProtocolError("wait() on an already-completed pseudo-request")
        if req.kind == "isend":
            # Paper rule: a restored (or live, under the eager model) isend
            # request completes immediately — the message is in the
            # receiver's checkpoint or its late-message log.
            self.requests.retire(req)
            self.comm._yield_point()
            return None
        # irecv:
        if req.has_payload:
            payload = req.payload
            self.requests.retire(req)
            return payload
        if req._live is None:
            # Restored-unmatched or replay-posted: resolve like a fresh recv
            # (paper rule: match the late log, else re-post the receive).
            self.stats.receives += 1
            if self.replay is not None and not self.replay.matches.exhausted:
                payload = self._replay_recv()
            else:
                env = self.comm.recv_envelope(req.source, req.tag)
                payload = self._classify_and_deliver(env)
            self.requests.retire(req)
            return payload
        self.stats.receives += 1
        req._live.wait()
        env = req._live._desc.matched
        self.requests.retire(req)
        if not self.config.protocol_enabled:
            return env.payload
        return self._classify_and_deliver(env)

    def test(self, req: PseudoRequest) -> bool:
        """Nonblocking completion check for a pseudo-request."""
        self._progress()
        if req.kind == "isend":
            return True
        if req.has_payload:
            return True
        if req._live is None:
            # Replay-resolved requests are only completed by wait().
            return self.replay is not None and not self.replay.matches.exhausted
        return req._live.test()

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        recv_source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        """Combined exchange built from the layer's own send + recv."""
        if recv_tag is None:
            recv_tag = send_tag
        self.send(payload, dest, send_tag)
        return self.recv(recv_source, recv_tag)

    # ------------------------------------------------------------------ #

    def _classify_and_deliver(self, env) -> Any:
        """Figure 4's communicationEventHandler for one arrived message."""
        info = self.codec.decode(env.piggyback, self.state.epoch)
        if isinstance(self.codec, FullCodec):
            mclass = classify_by_epoch(info.epoch, self.state.epoch)
        else:
            mclass = classify_by_color(
                info.color, self.state.epoch, self.state.am_logging
            )
        src = env.source
        if mclass is MessageClass.EARLY:
            if self.state.am_logging:
                raise ProtocolError(
                    f"rank {self.rank}: early message from {src} while logging"
                )
            self.state.early_ids.setdefault(src, []).append(info.message_id)
            self.stats.early_recorded += 1
        elif mclass is MessageClass.INTRA_EPOCH:
            if self.state.am_logging and not info.am_logging:
                # Phase 4 condition (ii): a message from a process that has
                # stopped logging means every process has checkpointed.
                self._finalize_log()
            self.state.current_receive_count[src] = (
                self.state.current_receive_count.get(src, 0) + 1
            )
        else:  # LATE
            if not self.state.am_logging:
                raise ProtocolError(
                    f"rank {self.rank}: late message from {src} after logging ended"
                )
            payload = env.payload
            logged = copy.deepcopy(payload) if self.config.copy_logged_payloads else payload
            self.logs.late.append(
                LateRecord(source=src, tag=env.tag, message_id=info.message_id, payload=logged)
            )
            self.stats.late_logged += 1
            self.state.previous_receive_count[src] = (
                self.state.previous_receive_count.get(src, 0) + 1
            )
        if self.state.am_logging:
            self.logs.matches.append(
                MatchRecord(
                    source=src,
                    tag=env.tag,
                    message_id=info.message_id,
                    was_late=mclass is MessageClass.LATE,
                )
            )
        if mclass is MessageClass.LATE:
            self._received_all_check()
        return env.payload

    # ------------------------------------------------------------------ #

    def _replay_recv(self) -> Any:
        """Serve one receive deterministically from the match log."""
        assert self.replay is not None
        rec: MatchRecord = self.replay.matches.next()
        self.stats.replayed_matches += 1
        if rec.was_late:
            late = self.replay.late.take_by_id(rec.source, rec.message_id)
            if late is None:
                raise RecoveryError(
                    f"rank {self.rank}: match log names late message "
                    f"({rec.source}, {rec.message_id}) absent from late log"
                )
            self.stats.replayed_late += 1
            self._maybe_end_replay()
            return late.payload
        # Intra-epoch message: the sender is re-executing deterministically
        # and will re-post it with the same messageID; wait for exactly it.
        wanted_id = rec.message_id

        def _matches(env) -> bool:
            if env.piggyback is None:
                return False
            info = self.codec.decode(env.piggyback, self.state.epoch)
            return info.message_id == wanted_id

        env = self.comm.recv_envelope(rec.source, rec.tag, predicate=_matches)
        self.state.current_receive_count[rec.source] = (
            self.state.current_receive_count.get(rec.source, 0) + 1
        )
        self._maybe_end_replay()
        return env.payload

    def _maybe_end_replay(self) -> None:
        if self.replay is None or self._replay_done_sent:
            return
        if self.replay.all_exhausted():
            self._replay_done_sent = True
            self.replay = None
            self._send_control(
                ctl.ReplayDone(epoch=self.state.epoch, sender=self.rank),
                self.config.initiator_rank,
            )

    # ================================================================== #
    # Non-determinism (Section 3.2 / Figure 4 phase 2).
    # ================================================================== #

    def nondet(self, compute: Callable[[], Any]) -> Any:
        """Execute a non-deterministic decision under protocol control.

        While logging, the result is recorded; during recovery replay, the
        recorded result is returned instead of re-computing, so the replayed
        execution is identical to the one peers' checkpoints observed.
        """
        self._progress()
        if self.config.protocol_enabled and self.replay is not None \
                and not self.replay.nondet.exhausted:
            value = self.replay.nondet.next()
            self.stats.replayed_nondet += 1
            self._maybe_end_replay()
            return value
        value = compute()
        if self.config.protocol_enabled and self.state.am_logging:
            logged = copy.deepcopy(value) if self.config.copy_logged_payloads else value
            self.logs.nondet.append(logged)
            self.stats.nondet_logged += 1
        return value

    # ================================================================== #
    # Collectives (Section 4.5).
    # ================================================================== #

    def _coll_endpoint(self, handle_id: int, phase: int) -> "_LayerCollEndpoint":
        seq = self.coll_seqs.get(handle_id, 0)
        raw = self._raw_comm(handle_id)
        base = LAYER_COLL_BASE - (seq * 2 + phase) * coll_impl._TAG_STRIDE
        return _LayerCollEndpoint(raw, base)

    def _raw_comm(self, handle_id: int) -> Comm:
        if handle_id == WORLD_HANDLE:
            return self.comm
        handle = self.handles.by_id.get(handle_id)
        if handle is None or handle._live is None:
            raise ProtocolError(f"unknown or unbound communicator handle {handle_id}")
        return handle._live

    def _advance_coll_seq(self, handle_id: int) -> None:
        self.coll_seqs[handle_id] = self.coll_seqs.get(handle_id, 0) + 1

    def _collective(
        self,
        kind: str,
        executor: Callable[[coll_impl.P2PEndpoint], Any],
        comm: Optional[PseudoHandle] = None,
        loggable: bool = True,
    ) -> Any:
        """Shared machinery for every collective call.

        ``loggable=False`` marks barrier: never served from the result log
        (all participants re-execute it after restart — guaranteed by the
        epoch-alignment rule) and never recorded.
        """
        self._progress()
        self.stats.collectives += 1
        handle_id = comm.handle_id if comm is not None else WORLD_HANDLE
        if not self.config.protocol_enabled:
            ep = self._coll_endpoint(handle_id, 1)
            self._advance_coll_seq(handle_id)
            return executor(ep)
        if (
            loggable
            and self.replay is not None
            and not self.replay.collectives.exhausted
        ):
            rec: CollectiveRecord = self.replay.collectives.next()
            if rec.kind != kind:
                raise RecoveryError(
                    f"rank {self.rank}: replaying {kind} but log has {rec.kind}"
                )
            self.stats.replayed_collectives += 1
            self._advance_coll_seq(handle_id)
            self._maybe_end_replay()
            return rec.result
        # Command exchange before the data call (paper: "each data
        # MPI_Allgather is preceded by a command MPI_Allgather which sends
        # around the relevant control information").
        ctl_ep = self._coll_endpoint(handle_id, 0)
        peer_info = coll_impl.allgather(ctl_ep, (self.state.epoch, self.state.am_logging))
        data_ep = self._coll_endpoint(handle_id, 1)
        result = executor(data_ep)
        self._advance_coll_seq(handle_id)
        if self.state.am_logging and loggable:
            my_epoch = self.state.epoch
            ended = any(
                epoch == my_epoch and not logging
                for i, (epoch, logging) in enumerate(peer_info)
                if i != self._group_rank(handle_id)
            )
            if ended:
                # A same-epoch participant has stopped logging: logging has
                # globally terminated; do not record the result.
                self._finalize_log()
            else:
                logged = copy.deepcopy(result) if self.config.copy_logged_payloads else result
                self.logs.collectives.append(CollectiveRecord(kind=kind, result=logged))
                self.stats.collective_results_logged += 1
        return result

    def _group_rank(self, handle_id: int) -> int:
        return self._raw_comm(handle_id).rank

    def bcast(self, obj: Any, root: int = 0, comm: Optional[PseudoHandle] = None) -> Any:
        return self._collective("bcast", lambda ep: coll_impl.bcast(ep, obj, root), comm)

    def reduce(self, obj: Any, op: Op, root: int = 0, comm: Optional[PseudoHandle] = None) -> Any:
        return self._collective("reduce", lambda ep: coll_impl.reduce(ep, obj, op, root), comm)

    def allreduce(self, obj: Any, op: Op, comm: Optional[PseudoHandle] = None) -> Any:
        return self._collective("allreduce", lambda ep: coll_impl.allreduce(ep, obj, op), comm)

    def gather(self, obj: Any, root: int = 0, comm: Optional[PseudoHandle] = None) -> Any:
        return self._collective("gather", lambda ep: coll_impl.gather(ep, obj, root), comm)

    def allgather(self, obj: Any, comm: Optional[PseudoHandle] = None) -> list[Any]:
        return self._collective("allgather", lambda ep: coll_impl.allgather(ep, obj), comm)

    def scatter(self, objs: list[Any] | None, root: int = 0, comm: Optional[PseudoHandle] = None) -> Any:
        return self._collective("scatter", lambda ep: coll_impl.scatter(ep, objs, root), comm)

    def alltoall(self, objs: list[Any], comm: Optional[PseudoHandle] = None) -> list[Any]:
        return self._collective("alltoall", lambda ep: coll_impl.alltoall(ep, objs), comm)

    def scan(self, obj: Any, op: Op, comm: Optional[PseudoHandle] = None) -> Any:
        return self._collective("scan", lambda ep: coll_impl.scan(ep, obj, op), comm)

    def barrier(self, comm: Optional[PseudoHandle] = None) -> None:
        """MPI_Barrier with the paper's epoch-alignment rule (Section 4.5).

        "All processes involved in the barrier execute an all-to-all
        communication just before the barrier to determine if they are all
        in the same epoch.  If not, processes that have not yet taken their
        local checkpoints do so."
        """
        self._progress()
        handle_id = comm.handle_id if comm is not None else WORLD_HANDLE
        if self.config.protocol_enabled and self.replay is None:
            ctl_ep = self._coll_endpoint(handle_id, 0)
            epochs = coll_impl.allgather(ctl_ep, self.state.epoch)
            if self.state.epoch < max(epochs):
                # The forced local checkpoint happens BEFORE this barrier's
                # collective-sequence advance: the checkpoint's resume point
                # re-executes the whole barrier call (the paper's inserted
                # potentialCheckpoint-before-barrier), so its snapshot must
                # not count the alignment exchange the re-execution will
                # perform again.
                self._take_local_checkpoint()
            self._advance_coll_seq(handle_id)
        elif self.config.protocol_enabled:
            # Re-executed barrier during replay: alignment already held in
            # the original execution (all participants were in this epoch),
            # but the exchange itself must re-run so tags stay aligned.
            ctl_ep = self._coll_endpoint(handle_id, 0)
            coll_impl.allgather(ctl_ep, self.state.epoch)
            self._advance_coll_seq(handle_id)
        self._collective("barrier", lambda ep: coll_impl.barrier(ep), comm, loggable=False)

    # ================================================================== #
    # potentialCheckpoint (Figure 4).
    # ================================================================== #

    def potential_checkpoint(self) -> bool:
        """Take a local checkpoint if one has been requested.

        Returns True if a checkpoint was taken.  Checkpointing is deferred
        while a recovery replay is in progress (the initiator never starts a
        wave during replay, so this can only trigger in exotic interleavings
        and is safe to postpone).
        """
        self._progress()
        if not self.config.protocol_enabled:
            return False
        if self.replay is not None:
            return False
        if not self.state.checkpoint_requested:
            return False
        self._take_local_checkpoint()
        return True

    def _take_local_checkpoint(self) -> None:
        saved_early = {q: list(ids) for q, ids in self.state.early_ids.items() if ids}
        send_counts = self.state.epoch_transition()
        # Suppression sets apply only to re-executions of the *previous*
        # epoch's sends; entering a new epoch invalidates them.
        self.suppress = {}
        snapshot = self.state.snapshot_for_checkpoint()
        app_state = None
        if self.config.save_app_state and self.state_provider is not None:
            app_state = self.state_provider()
        data = CheckpointData(
            rank=self.rank,
            epoch=self.state.epoch,
            protocol=snapshot,
            early_ids=saved_early,
            requests=copy.deepcopy(self.requests.snapshot()),
            mpi_records=copy.deepcopy(self.mpi_log),
            handles=self.handles.snapshot(),
            coll_seqs=dict(self.coll_seqs),
            app_state=app_state,
            taken_at=self.comm.wtime(),
        )
        manifest = self.storage.write_state(self.rank, self.state.epoch, data)
        if manifest is not None:  # custom storages may return nothing
            self.generation_manifests.append(manifest)
            self.stats.ckpt_logical_bytes += manifest.logical_bytes
            self.stats.ckpt_stored_bytes += manifest.stored_bytes
            self.stats.ckpt_chunks_reused += manifest.reused_chunks
        self.stats.checkpoints_taken += 1
        for q in self.state.receivers:
            self._send_control(
                ctl.MySendCount(
                    epoch=self.state.epoch, sender=self.rank,
                    count=send_counts.get(q, 0),
                ),
                q,
            )
        self.state.am_logging = True
        self.logs = EpochLogs(epoch=self.state.epoch)
        if self.on_checkpoint is not None:
            self.on_checkpoint(data)
        self._received_all_check()

    def request_checkpoint_now(self) -> None:
        """Ask the initiator to start a wave at its next poll (tests/API)."""
        if self.initiator is None:
            raise ProtocolError("request_checkpoint_now is initiator-only")
        self.initiator.force_initiate = True

    # ================================================================== #
    # MPI library persistent-object virtualisation (Section 5.2).
    # ================================================================== #

    def _creation_replay(self, fn: str) -> tuple[bool, Optional[PseudoHandle]]:
        """Swallow a re-executed persistent-object creation after restore.

        Applications that restart *from the top* (the manual-state path)
        re-execute their pre-checkpoint ``comm_dup``/``comm_split``/... calls.
        Those objects already exist — recreated by the call-record replay at
        restore — so while the creation cursor has records left, a creation
        call returns the restored handle instead of making a new one.  The
        precompiled path resumes past these calls and disables the cursor.
        """
        if (
            self._creation_cursor is None
            or self._creation_cursor >= len(self.mpi_log.records)
        ):
            return False, None
        record = self.mpi_log.records[self._creation_cursor]
        if record.fn != fn:
            raise RecoveryError(
                f"rank {self.rank}: re-executed creation {fn!r} but the "
                f"restored call record says {record.fn!r}"
            )
        self._creation_cursor += 1
        if record.handle_id >= 0:
            return True, self.handles.by_id[record.handle_id]
        return True, None

    def skip_creation_replay(self) -> None:
        """Disable creation-cursor matching (precompiled-application path)."""
        self._creation_cursor = None

    def comm_dup(self, parent: Optional[PseudoHandle] = None) -> PseudoHandle:
        """Duplicate a communicator behind a pseudo-handle."""
        replayed, handle = self._creation_replay("comm_dup")
        if replayed:
            return handle
        parent_id = parent.handle_id if parent is not None else WORLD_HANDLE
        handle = self.mpi_log.new_handle("comm")
        handle._live = self._raw_comm(parent_id).dup()
        self.mpi_log.record("comm_dup", (parent_id,), handle)
        self.handles.add(handle)
        self.coll_seqs[handle.handle_id] = 0
        return handle

    def comm_split(
        self, color: int, key: int | None = None, parent: Optional[PseudoHandle] = None
    ) -> Optional[PseudoHandle]:
        """Split a communicator behind a pseudo-handle (collective)."""
        if self._creation_cursor is not None and self._creation_cursor < len(self.mpi_log.records):
            record = self.mpi_log.records[self._creation_cursor]
            fn = "comm_split" if record.fn == "comm_split" else "comm_split_undefined"
            replayed, handle = self._creation_replay(fn)
            if replayed:
                return handle
        parent_id = parent.handle_id if parent is not None else WORLD_HANDLE
        raw_child = self._raw_comm(parent_id).split(color, key)
        if raw_child is None:
            # Participation is still recorded: the split must be re-executed
            # collectively on restore even by ranks that got no child.
            self.mpi_log.record("comm_split_undefined", (parent_id, key))
            return None
        handle = self.mpi_log.new_handle("comm")
        handle._live = raw_child
        self.mpi_log.record("comm_split", (parent_id, color, key), handle)
        self.handles.add(handle)
        self.coll_seqs[handle.handle_id] = 0
        return handle

    def op_create(self, name: str, fn: Callable[[Any, Any], Any]) -> PseudoHandle:
        """Create a user-defined reduction op behind a pseudo-handle.

        ``fn`` must be importable/stable under ``name``: the call record
        replays ``Op.create(name, fn)`` by looking the op up at restore, so
        the application must re-register the op before restore (module
        import time is the natural place).
        """
        replayed, handle = self._creation_replay("op_create")
        if replayed:
            return handle
        handle = self.mpi_log.new_handle("op")
        handle._live = Op.create(name, fn)
        self.mpi_log.record("op_create", (name,), handle)
        self.handles.add(handle)
        return handle

    def attach_buffer(self, nbytes: int) -> None:
        """Record a direct library state change (MPI_Attach_buffer analogue)."""
        replayed, _ = self._creation_replay("attach_buffer")
        if replayed:
            return
        self.mpi_log.record("attach_buffer", (nbytes,))

    def comm_rank(self, handle: Optional[PseudoHandle] = None) -> int:
        return self._raw_comm(handle.handle_id if handle else WORLD_HANDLE).rank

    def comm_size(self, handle: Optional[PseudoHandle] = None) -> int:
        return self._raw_comm(handle.handle_id if handle else WORLD_HANDLE).size

    def _replay_executors(self) -> dict[str, Callable[..., Any]]:
        def comm_dup(parent_id: int):
            return self._raw_comm(parent_id).dup()

        def comm_split(parent_id: int, color: int, key: int | None):
            return self._raw_comm(parent_id).split(color, key)

        def comm_split_undefined(parent_id: int, key: int | None):
            self._raw_comm(parent_id).split(None, key)
            return None

        def op_create(name: str):
            return Op.lookup(name)

        def attach_buffer(nbytes: int):
            return None

        return {
            "comm_dup": comm_dup,
            "comm_split": comm_split,
            "comm_split_undefined": comm_split_undefined,
            "op_create": op_create,
            "attach_buffer": attach_buffer,
        }

    # ================================================================== #
    # Recovery (restart from a committed checkpoint).
    # ================================================================== #

    def restore_from(self, data: CheckpointData, logs: EpochLogs) -> None:
        """Reinitialise this layer from a committed local checkpoint.

        Must be called by *every* rank of the job at restart, before any
        application re-execution: it performs a synchronous suppression
        exchange (each receiver tells each sender which early-message IDs to
        suppress) and arms the deterministic replay engine.
        """
        if data.rank != self.rank:
            raise RecoveryError(
                f"rank {self.rank} handed checkpoint of rank {data.rank}"
            )
        self.state = copy.deepcopy(data.protocol)
        self.coll_seqs = dict(data.coll_seqs)
        self.mpi_log = copy.deepcopy(data.mpi_records) if data.mpi_records else MpiStateLog()
        self.handles.restore([copy.deepcopy(h) for h in data.handles])
        self.mpi_log.replay(self._replay_executors(), self.handles.by_id)
        # Arm the creation cursor: a from-the-top restart will re-execute
        # these recorded creations and must be handed the restored handles.
        self._creation_cursor = 0
        self.requests.restore([copy.deepcopy(r) for r in data.requests])
        logs = copy.deepcopy(logs)
        logs.rewind()
        self.replay = logs
        self._replay_done_sent = False
        # --- suppression exchange (synchronous, all ranks participate) ---
        outgoing = [
            tuple(data.early_ids.get(sender, ())) for sender in range(self.nprocs)
        ]
        ep = _LayerCollEndpoint(self.comm, RESTORE_BASE)
        incoming = coll_impl.alltoall(ep, outgoing)
        self.suppress = {
            dest: set(ids) for dest, ids in enumerate(incoming) if ids
        }
        if self.initiator is not None:
            self.initiator.begin_recovery(set(range(self.nprocs)))
            self.initiator.last_commit_time = self.comm.wtime()
        self._maybe_end_replay()

    @property
    def in_replay(self) -> bool:
        return self.replay is not None


class _LayerCollEndpoint:
    """Collective endpoint over a raw communicator with an explicit tag base.

    The layer cannot use the raw communicator's own collective tag counter:
    replay-served collectives perform no raw communication, so raw counters
    would drift apart between ranks.  The layer derives tags from its own
    checkpointed per-communicator sequence numbers instead.
    """

    def __init__(self, raw: Comm, base: int) -> None:
        self._raw = raw
        self._base = base
        self._used = False

    @property
    def coll_rank(self) -> int:
        return self._raw.rank

    @property
    def coll_size(self) -> int:
        return self._raw.size

    def coll_next_tag_block(self) -> int:
        if self._used:
            raise ProtocolError("layer collective endpoint reused")
        self._used = True
        return self._base

    def coll_send(self, dest: int, payload: Any, tag: int) -> None:
        self._raw.coll_send(dest, payload, tag)

    def coll_recv(self, source: int, tag: int) -> Any:
        return self._raw.coll_recv(source, tag)
