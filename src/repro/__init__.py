"""repro: reproduction of *Automated Application-level Checkpointing of MPI
Programs* (Bronevetsky, Marques, Pingali, Stodghill — PPoPP 2003).

Public API (stable)
-------------------
``repro.Session``
    Experiment facade: ``session.run(app, config)`` and
    ``session.sweep(app, config, variants=..., seeds=..., nprocs=...)``.
``repro.RunConfig`` / ``repro.Variant``
    Run configuration and the four build variants of Section 6.2.
``repro.app`` / ``repro.AppSpec``
    Application registration (plain ``main(ctx)`` functions and
    precompiled units alike).
``repro.CommLike`` / ``repro.RawCommAdapter``
    The messaging surface applications are written against, and its V0
    pass-through implementation (V1–V3 use the C3 protocol layer).

Subpackages
-----------
``repro.api``
    The facade itself: Session/sweep, CommLike, the app registry.
``repro.simmpi``
    Deterministic MPI simulator substrate (ranks, network, faults).
``repro.protocol``
    The C3 non-blocking coordinated checkpointing protocol (Figure 4),
    piggybacking, logging, recovery, and MPI-library state virtualisation.
``repro.precompiler``
    Source-to-source transformation that makes Python functions save and
    restore their own stack state (the CCIFT precompiler analogue).
``repro.ckpt``
    Tiered checkpoint storage engine: pluggable backends, compression
    codecs, incremental (content-addressed) generations, retention
    policies, crash-consistent two-phase commit.
``repro.statesave``
    Managed heap, globals registry, checkpoint assembly, stable storage
    (a facade over ``repro.ckpt``).
``repro.runtime``
    The run -> fail -> restart orchestration driver and application context.
``repro.apps``
    The paper's three benchmark applications (dense CG, Laplace, Neurosys).
``repro.bench``
    The four-variant overhead harness that regenerates Figure 8.
``repro.farm``
    Cached, resumable campaign execution: content-addressed result cache
    + durable job queue under ``Session.sweep`` and chaos campaigns
    (``repro-farm run | status | gc``).
"""

import warnings

from repro.api import (
    AppSpec,
    CommLike,
    RawCommAdapter,
    Session,
    SweepResult,
    app,
    get_app,
    list_apps,
    register,
)
from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import RunOutcome

__version__ = "1.2.0"

__all__ = [
    "AppSpec",
    "CommLike",
    "RawCommAdapter",
    "RunConfig",
    "RunOutcome",
    "Session",
    "SweepResult",
    "Variant",
    "__version__",
    "app",
    "get_app",
    "list_apps",
    "register",
    "run_variant_suite",
    "run_with_recovery",
]


def run_with_recovery(*args, **kwargs):
    """Deprecated shim — use :meth:`Session.run` instead."""
    warnings.warn(
        "repro.run_with_recovery is deprecated; use repro.Session().run(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.driver import run_with_recovery as _impl

    return _impl(*args, **kwargs)


def run_variant_suite(*args, **kwargs):
    """Deprecated shim — use :meth:`Session.sweep` instead."""
    warnings.warn(
        "repro.run_variant_suite is deprecated; use repro.Session().sweep(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.driver import run_variant_suite as _impl

    return _impl(*args, **kwargs)
