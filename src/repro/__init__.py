"""repro: reproduction of *Automated Application-level Checkpointing of MPI
Programs* (Bronevetsky, Marques, Pingali, Stodghill — PPoPP 2003).

Subpackages
-----------
``repro.simmpi``
    Deterministic MPI simulator substrate (ranks, network, faults).
``repro.protocol``
    The C3 non-blocking coordinated checkpointing protocol (Figure 4),
    piggybacking, logging, recovery, and MPI-library state virtualisation.
``repro.precompiler``
    Source-to-source transformation that makes Python functions save and
    restore their own stack state (the CCIFT precompiler analogue).
``repro.statesave``
    Managed heap, globals registry, checkpoint assembly, stable storage.
``repro.runtime``
    The run -> fail -> restart orchestration driver and application context.
``repro.apps``
    The paper's three benchmark applications (dense CG, Laplace, Neurosys).
``repro.bench``
    The four-variant overhead harness that regenerates Figure 8.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
