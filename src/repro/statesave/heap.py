"""Managed heap: the Heap Object Structure (HOS) analogue (paper 5.1.3).

The paper's precompiler ships its own heap manager so that heap objects can
be restored to their original virtual addresses, keeping pointers valid.  In
Python, "address identity" is object identity: the managed heap tracks every
allocation in a registry (the HOS), the whole registry is pickled inside the
checkpoint, and pickle's memo table guarantees that any number of references
to one heap object collapse back to one object after restore — including
references from frame locals captured in the same pickle.

Applications use it like a tiny allocator::

    heap = ManagedHeap()
    buf = heap.alloc_array("grid", (512, 512))   # numpy-backed
    node = heap.alloc("head", {"next": None})     # arbitrary object
    heap.free("head")

Named allocation (rather than raw addresses) keeps handles stable across
restarts; anonymous allocations get sequential ids.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np

from repro.errors import HeapError


class ManagedHeap:
    """Allocation registry with checkpoint/restore support."""

    def __init__(self) -> None:
        self._objects: dict[str, Any] = {}
        self._next_anon = 0
        #: Lifetime counters (observability / leak tests).
        self.allocations = 0
        self.frees = 0

    # ------------------------------------------------------------------ #

    def _fresh_name(self) -> str:
        name = f"__anon_{self._next_anon}"
        self._next_anon += 1
        return name

    def alloc(self, name: Optional[str], obj: Any) -> Any:
        """Register ``obj`` under ``name`` (or an anonymous id); returns it."""
        if name is None:
            name = self._fresh_name()
        if name in self._objects:
            raise HeapError(f"heap name {name!r} already allocated")
        self._objects[name] = obj
        self.allocations += 1
        return obj

    def alloc_array(
        self, name: Optional[str], shape, dtype=np.float64, fill: float | None = None
    ) -> np.ndarray:
        """Allocate a numpy array on the managed heap."""
        arr = np.zeros(shape, dtype=dtype) if fill is None else np.full(shape, fill, dtype=dtype)
        return self.alloc(name, arr)

    def get(self, name: str) -> Any:
        try:
            return self._objects[name]
        except KeyError:
            raise HeapError(f"no heap object named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def free(self, name: str) -> None:
        if name not in self._objects:
            raise HeapError(f"double free or foreign name {name!r}")
        del self._objects[name]
        self.frees += 1

    def live_objects(self) -> Iterator[tuple[str, Any]]:
        return iter(self._objects.items())

    @property
    def live_count(self) -> int:
        return len(self._objects)

    def total_bytes(self) -> int:
        """Approximate live heap size (numpy buffers counted exactly)."""
        total = 0
        for obj in self._objects.values():
            if isinstance(obj, np.ndarray):
                total += obj.nbytes
            else:
                total += 64  # header-ish estimate for small objects
        return total

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, Any]:
        """Checkpoint image: the HOS itself.

        Returned by reference: the checkpoint writer pickles it immediately,
        and pickling the heap together with the captured frames preserves
        frame-local aliases into heap objects.
        """
        return {
            "objects": self._objects,
            "next_anon": self._next_anon,
        }

    def restore(self, image: dict[str, Any]) -> None:
        self._objects = image["objects"]
        self._next_anon = image["next_anon"]
