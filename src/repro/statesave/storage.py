"""Stable storage for checkpoints, backed by the :mod:`repro.ckpt` engine.

Layout inside the engine's backend (in-memory or a directory)::

    objects/<codec>/<d0d1>/<digest>          -- content-addressed chunks
    manifests/rank<r>/state/gen<e>.mft       -- CheckpointData generations
    manifests/rank<r>/log/gen<e>.mft         -- EpochLogs generations
    refs/COMMIT                              -- commit history (framed+CRC)

Commit discipline (paper Section 4.1, phase 4): the initiator writes the
commit record only after every process has reported ``stoppedLogging`` — so
a committed epoch is guaranteed to have both the state and the log of every
rank on disk.  Recovery always starts from :meth:`Storage.committed_epoch`,
which walks the commit history newest-first and *validates* each candidate
generation (manifest checksum + chunk digests): a committed generation that
has since been torn or bit-rotted is rejected and recovery falls back to
the newest older commit still retained — keep at least two generations
(``keep_last=2``) to make that fallback possible.

Every generation write is the engine's two-phase commit (chunks, then one
atomic checksummed manifest), so a crash mid-write — including the injected
:class:`~repro.simmpi.failures.CheckpointCrash` scenario — never destroys
the previous generation.  Incremental mode and per-chunk compression are
selected per store; :meth:`Storage.from_config` reads them from the
``ckpt_*`` fields of :class:`~repro.runtime.config.RunConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.ckpt.backends import DirectoryBackend, MemoryBackend
from repro.ckpt.delta import DEFAULT_CHUNK_SIZE
from repro.ckpt.manifest import GenerationManifest
from repro.ckpt.retention import RetentionPolicy
from repro.ckpt.store import STAGE_MANIFEST, CheckpointStore
from repro.errors import ProcessKilled, StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.failures import CheckpointCrash, FailureSchedule

#: Name of the commit-history record in the engine's refs/ region.
COMMIT_RECORD = "COMMIT"


@dataclass
class CommitRecord:
    """Names one committed global checkpoint.

    ``nprocs`` lets :meth:`Storage.committed_epoch` validate the epoch's
    generations without outside help; ``None`` (a record written by code
    that did not know the world size) disables validation for that entry.

    ``committed_at`` is *virtual* time.  Persisted bytes must never carry
    host wall-clock readings: they would make two identical runs write
    different commit records, breaking byte-level rerun determinism (and
    the farm's content-addressed caching of run outcomes).  A historical
    ``wall_time`` field duplicated ``committed_at`` for this reason and
    has been folded away; records pickled by older code simply carry an
    ignored extra attribute when read back.
    """

    epoch: int
    committed_at: float
    nprocs: Optional[int] = None


class Storage:
    """Checkpoint store; filesystem-backed or in-memory.

    The constructor keeps its historical shape — ``Storage()`` is an
    in-memory store, ``Storage(path)`` persists under ``path`` — and the
    keyword knobs select the engine's behaviour.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        codec: str = "none",
        incremental: bool = True,
        keep_last: int = 1,
        keep_every: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.path = path
        backend = MemoryBackend() if path is None else DirectoryBackend(path)
        self.store = CheckpointStore(
            backend,
            codec=codec,
            incremental=incremental,
            retention=RetentionPolicy(keep_last=keep_last, keep_every=keep_every),
            chunk_size=chunk_size,
        )
        #: Logical checkpoint-object writes (state/log/commit), not backend puts.
        self.writes = 0
        #: Commit events observed on this store (one per checkpoint wave);
        #: the driver diffs it to count waves committed during a run.
        self.commits = 0
        #: Failure schedule whose mid-checkpoint crashes this store realises
        #: (armed by the recovery driver; None outside fault experiments).
        self.crash_plan: Optional["FailureSchedule"] = None
        #: :class:`repro.trace.TraceRecorder` armed by the recovery driver
        #: for the duration of one run; None means no tracing (and the
        #: engine-level ``store.tracer`` mirrors this assignment).
        self._tracer: Optional[Any] = None
        #: Epochs whose deep validation already passed (see validate_epoch),
        #: invalidated wholesale when the store's mutation stamp moves.
        self._validated_epochs: set[tuple[int, int]] = set()
        self._validated_stamp = 0

    @classmethod
    def from_config(cls, config: Any) -> "Storage":
        """Build a store from a :class:`RunConfig`-shaped object's
        ``storage_path`` and ``ckpt_*`` fields (absent fields default)."""
        return cls(
            getattr(config, "storage_path", None),
            codec=getattr(config, "ckpt_codec", "none"),
            incremental=getattr(config, "ckpt_incremental", True),
            keep_last=getattr(config, "ckpt_keep_last", 1),
            keep_every=getattr(config, "ckpt_keep_every", None),
            chunk_size=getattr(config, "ckpt_chunk_size", DEFAULT_CHUNK_SIZE),
        )

    # ------------------------------------------------------------------ #
    # Engine observability.
    # ------------------------------------------------------------------ #

    @property
    def tracer(self) -> Optional[Any]:
        return self._tracer

    @tracer.setter
    def tracer(self, value: Optional[Any]) -> None:
        # Mirror onto the engine so two-phase-commit / retention events
        # come from where they happen, not from this facade.
        self._tracer = value
        self.store.tracer = value

    @property
    def bytes_written(self) -> int:
        """Cumulative encoded bytes that reached the backend."""
        return self.store.bytes_written

    @property
    def logical_bytes(self) -> int:
        """What a flat one-blob-per-checkpoint store would have written."""
        return self.store.logical_bytes

    # ------------------------------------------------------------------ #
    # Checkpoint API.
    # ------------------------------------------------------------------ #

    @staticmethod
    def _stream(rank: int, kind: str) -> str:
        return f"rank{rank}/{kind}"

    def write_state(self, rank: int, epoch: int, data: Any) -> GenerationManifest:
        self.writes += 1
        crash = (
            self.crash_plan.take_checkpoint_crash(rank, epoch)
            if self.crash_plan is not None
            else None
        )
        stream = self._stream(rank, "state")
        # Manifests are stamped with the checkpoint's *virtual* take time —
        # never the host clock, which would break byte-identical reruns.
        taken_at = float(getattr(data, "taken_at", 0.0))
        if crash is None:
            return self.store.save(stream, epoch, data, created_at=taken_at)
        return self._crashing_write(stream, rank, epoch, data, crash)

    def _crashing_write(
        self, stream: str, rank: int, epoch: int, data: Any, crash: "CheckpointCrash"
    ) -> GenerationManifest:
        """Realise a :class:`CheckpointCrash`: die mid-write, leaving either
        a torn (unpublished) generation or a checksum-invalid manifest."""
        at_time = float(getattr(data, "taken_at", 0.0))
        if crash.corrupt_manifest:
            self.store.save(stream, epoch, data, created_at=at_time)
            self.store.corrupt_manifest(stream, epoch)
            raise ProcessKilled(rank, at_time)

        def progress(stage: str, index: int, total: int) -> None:
            # The hook fires before chunk ``index`` is processed: raising
            # at index == after_chunks leaves exactly that many chunks
            # persisted.  The manifest stage raises unconditionally, so the
            # generation is torn even when the payload has fewer chunks
            # than after_chunks.
            if stage == STAGE_MANIFEST or index >= crash.after_chunks:
                raise ProcessKilled(rank, at_time)

        return self.store.save(stream, epoch, data, progress=progress, created_at=at_time)

    def write_log(self, rank: int, epoch: int, logs: Any) -> GenerationManifest:
        self.writes += 1
        return self.store.save(self._stream(rank, "log"), epoch, logs)

    def read_state(self, rank: int, epoch: int) -> Any:
        return self._load(self._stream(rank, "state"), epoch)

    def read_log(self, rank: int, epoch: int) -> Any:
        return self._load(self._stream(rank, "log"), epoch)

    def _load(self, stream: str, epoch: int) -> Any:
        if not self.store.has_generation(stream, epoch):
            raise StorageError(
                f"missing stable-storage object {stream!r} epoch {epoch}"
            )
        return self.store.load(stream, epoch)

    def state_manifest(self, rank: int, epoch: int) -> GenerationManifest:
        """The recorded manifest of one rank's state generation."""
        return self.store.read_manifest(self._stream(rank, "state"), epoch)

    def has_complete_epoch(self, nprocs: int, epoch: int) -> bool:
        """True if every rank's state *and* log for ``epoch`` is present."""
        return all(
            self.store.has_generation(self._stream(rank, kind), epoch)
            for rank in range(nprocs)
            for kind in ("state", "log")
        )

    def validate_epoch(self, nprocs: int, epoch: int) -> bool:
        """Deep check: every rank's state and log generation for ``epoch``
        reassembles byte-perfectly (manifest checksum + chunk digests).

        A passing verdict is cached per store instance: recovery calls this
        at the top of every attempt and must not re-read the whole global
        checkpoint each time.  Failures are never cached (a re-written
        generation may validate later).

        Deliberate tradeoff: the deep check costs one extra full read of
        the candidate generation per restart, but it is what lets recovery
        *fall back* to an older commit on chunk bit rot — a cheap
        manifest-only check would defer detection to ``load()``, which can
        only raise, not fall back.
        """
        if self.store.mutations != self._validated_stamp:
            self._validated_epochs.clear()
            self._validated_stamp = self.store.mutations
        key = (nprocs, epoch)
        if key in self._validated_epochs:
            return True
        ok = all(
            self.store.validate_generation(self._stream(rank, kind), epoch)
            for rank in range(nprocs)
            for kind in ("state", "log")
        )
        if ok:
            self._validated_epochs.add(key)
        return ok

    # ------------------------------------------------------------------ #
    # Commit record.
    # ------------------------------------------------------------------ #

    def _commit_history(self) -> list[CommitRecord]:
        if not self.store.has_record(COMMIT_RECORD):
            return []
        return list(self.store.get_record(COMMIT_RECORD))

    def commit_history(self) -> list[CommitRecord]:
        """The commit records currently on storage, oldest first (a copy;
        consistency auditors — e.g. chaos-campaign invariants — read this)."""
        return self._commit_history()

    def commit(
        self, epoch: int, virtual_time: float, nprocs: Optional[int] = None
    ) -> None:
        history = self._commit_history()
        history.append(
            CommitRecord(
                epoch=epoch,
                committed_at=virtual_time,
                nprocs=nprocs,
            )
        )
        self.writes += 1
        self.store.put_record(COMMIT_RECORD, history)
        self.commits += 1
        tr = self._tracer
        if tr is not None:
            tr.emit("store", "commit", t=virtual_time, epoch=epoch, nprocs=nprocs)

    def committed_epoch(self) -> Optional[int]:
        """Epoch of the newest committed global checkpoint that still
        validates, or None.

        A record whose generations are torn or corrupt is skipped and the
        next older retained commit is tried — the generation-N → N-1
        fallback.  A record written without ``nprocs`` cannot be deep-
        validated; it is trusted as long as *some* generation for its epoch
        still exists (so a gc'd epoch falls through instead of sending
        recovery into a missing-object error).
        """
        for record in reversed(self._commit_history()):
            if record.nprocs is not None:
                if self.validate_epoch(record.nprocs, record.epoch):
                    return record.epoch
            elif self._epoch_present(record.epoch):
                return record.epoch
        return None

    def _epoch_present(self, epoch: int) -> bool:
        """Loose retention check for records lacking ``nprocs``: the epoch
        counts as present while some generation of it survives — or while
        the store holds no generations at all (commit-record-only usage,
        where there is nothing to cross-check)."""
        streams = self.store.streams()
        if not streams:
            return True
        return any(epoch in self.store.generations(stream) for stream in streams)

    def gc(self, nprocs: int, keep_epoch: int) -> int:
        """Apply the retention policy with ``keep_epoch`` pinned.

        Returns the number of generation manifests removed.  Called after a
        commit; the paper's discipline (only the latest committed checkpoint
        retained) is the default ``keep_last=1`` policy.
        """
        removed = self.store.collect(pinned=keep_epoch)
        self._prune_commit_history()
        return removed

    def _prune_commit_history(self) -> None:
        """Drop commit records whose generations retention has deleted."""
        history = self._commit_history()
        live = [
            record
            for record in history
            if (
                self.has_complete_epoch(record.nprocs, record.epoch)
                if record.nprocs is not None
                else self._epoch_present(record.epoch)
            )
        ]
        if len(live) != len(history):
            self.store.put_record(COMMIT_RECORD, live)

    def sweep_orphans(self) -> int:
        """Reclaim chunks no manifest references (torn-write leftovers).

        Full-store scan; the recovery driver runs it after a failed
        attempt, off the checkpoint hot path."""
        return self.store.sweep_orphans()

    def wipe(self) -> None:
        """Remove everything (test helper)."""
        self.store.wipe()
