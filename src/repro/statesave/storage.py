"""Stable storage for checkpoints.

Layout on disk::

    <root>/
        rank<r>/epoch<e>.state   -- CheckpointData, framed+CRC
        rank<r>/epoch<e>.log     -- EpochLogs, framed+CRC (written later,
                                    at finalizeLog)
        COMMIT                   -- commit record naming the recovery epoch

Commit discipline (paper Section 4.1, phase 4): the initiator writes the
commit record only after every process has reported ``stoppedLogging`` — so
a committed epoch is guaranteed to have both the state and the log of every
rank on disk.  Recovery always starts from ``committed_epoch()``; a crash
mid-wave leaves partial ``epoch e+1`` files that are simply ignored (and
garbage-collected by :meth:`Storage.gc`).

An in-memory backend (`Storage(path=None)`) supports fast tests and
benchmarks; the filesystem backend performs atomic writes (tmp + fsync +
rename) so a torn write can never masquerade as a checkpoint.
"""

from __future__ import annotations

import io
import os
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import StorageError
from repro.util.serialization import atomic_write_bytes, dumps_framed, loads_framed


@dataclass
class CommitRecord:
    """Names the global checkpoint to be used for recovery."""

    epoch: int
    committed_at: float
    wall_time: float


class Storage:
    """Checkpoint store; filesystem-backed or in-memory."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._mem: dict[str, bytes] = {}
        #: Cumulative bytes written (benchmark observability).
        self.bytes_written = 0
        self.writes = 0
        #: Commit events observed on this store (one per checkpoint wave);
        #: the driver diffs it to count waves committed during a run.
        self.commits = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Raw keyed blob IO.
    # ------------------------------------------------------------------ #

    def _key(self, rank: int, epoch: int, part: str) -> str:
        return os.path.join(f"rank{rank}", f"epoch{epoch}.{part}")

    def _write(self, key: str, obj: Any) -> None:
        blob = dumps_framed(obj)
        self.bytes_written += len(blob)
        self.writes += 1
        if self.path is None:
            self._mem[key] = blob
        else:
            atomic_write_bytes(os.path.join(self.path, key), blob)

    def _read(self, key: str) -> Any:
        if self.path is None:
            blob = self._mem.get(key)
            if blob is None:
                raise StorageError(f"missing stable-storage object {key!r}")
            return loads_framed(blob)
        full = os.path.join(self.path, key)
        if not os.path.exists(full):
            raise StorageError(f"missing stable-storage object {key!r}")
        with open(full, "rb") as fh:
            return loads_framed(fh.read())

    def _exists(self, key: str) -> bool:
        if self.path is None:
            return key in self._mem
        return os.path.exists(os.path.join(self.path, key))

    def _delete(self, key: str) -> None:
        if self.path is None:
            self._mem.pop(key, None)
        else:
            full = os.path.join(self.path, key)
            if os.path.exists(full):
                os.unlink(full)

    # ------------------------------------------------------------------ #
    # Checkpoint API.
    # ------------------------------------------------------------------ #

    def write_state(self, rank: int, epoch: int, data: Any) -> None:
        self._write(self._key(rank, epoch, "state"), data)

    def write_log(self, rank: int, epoch: int, logs: Any) -> None:
        self._write(self._key(rank, epoch, "log"), logs)

    def read_state(self, rank: int, epoch: int) -> Any:
        return self._read(self._key(rank, epoch, "state"))

    def read_log(self, rank: int, epoch: int) -> Any:
        return self._read(self._key(rank, epoch, "log"))

    def has_complete_epoch(self, nprocs: int, epoch: int) -> bool:
        """True if every rank's state *and* log for ``epoch`` is present."""
        return all(
            self._exists(self._key(r, epoch, "state"))
            and self._exists(self._key(r, epoch, "log"))
            for r in range(nprocs)
        )

    # ------------------------------------------------------------------ #
    # Commit record.
    # ------------------------------------------------------------------ #

    def commit(self, epoch: int, virtual_time: float) -> None:
        record = CommitRecord(
            epoch=epoch, committed_at=virtual_time, wall_time=time.time()
        )
        self._write("COMMIT", record)
        self.commits += 1

    def committed_epoch(self) -> Optional[int]:
        """Epoch of the last committed global checkpoint, or None."""
        if not self._exists("COMMIT"):
            return None
        record = self._read("COMMIT")
        return record.epoch

    def gc(self, nprocs: int, keep_epoch: int) -> int:
        """Delete state/log files for epochs other than ``keep_epoch``.

        Returns the number of objects removed.  Called after a commit; the
        paper assumes only the latest committed checkpoint is retained.
        """
        removed = 0
        if self.path is None:
            for key in list(self._mem):
                if key == "COMMIT":
                    continue
                epoch = int(key.rsplit("epoch", 1)[1].split(".")[0])
                if epoch != keep_epoch:
                    del self._mem[key]
                    removed += 1
            return removed
        for rank in range(nprocs):
            rank_dir = os.path.join(self.path, f"rank{rank}")
            if not os.path.isdir(rank_dir):
                continue
            for name in os.listdir(rank_dir):
                epoch = int(name.rsplit("epoch", 1)[1].split(".")[0])
                if epoch != keep_epoch:
                    os.unlink(os.path.join(rank_dir, name))
                    removed += 1
        return removed

    def wipe(self) -> None:
        """Remove everything (test helper)."""
        if self.path is None:
            self._mem.clear()
            return
        for root, _dirs, files in os.walk(self.path):
            for name in files:
                os.unlink(os.path.join(root, name))
