"""Application and library state saving (paper Section 5).

Stable storage (:class:`Storage`) is a facade over the tiered checkpoint
engine in :mod:`repro.ckpt` — backends, compression codecs, incremental
generations, retention and crash-consistent commit all live there.
"""

from repro.statesave.format import CheckpointData
from repro.statesave.globals_registry import (
    DEFAULT_REGISTRY,
    GlobalsRegistry,
    checkpointable_state,
)
from repro.statesave.heap import ManagedHeap
from repro.statesave.storage import CommitRecord, Storage

__all__ = [
    "CheckpointData",
    "CommitRecord",
    "DEFAULT_REGISTRY",
    "GlobalsRegistry",
    "ManagedHeap",
    "Storage",
    "checkpointable_state",
]
