"""Application and library state saving (paper Section 5)."""

from repro.statesave.format import CheckpointData
from repro.statesave.globals_registry import GlobalsRegistry
from repro.statesave.heap import ManagedHeap
from repro.statesave.storage import CommitRecord, Storage

__all__ = [
    "CheckpointData",
    "CommitRecord",
    "GlobalsRegistry",
    "ManagedHeap",
    "Storage",
]
