"""Global-variable registry (paper Section 5.1.2, final paragraph).

The paper saves a program's global variables through the same VDS mechanism
as stack variables, discovering them by scanning all source files.  The
Python analogue: applications register the module-level names they mutate;
the registry snapshots their values into every checkpoint and writes them
back on restore.

The registry addresses globals as ``(module_name, attribute)`` pairs and
reads/writes them through the live module object, so restored values are
visible to every function that references the global.
"""

from __future__ import annotations

import importlib
import sys
from typing import Any

from repro.errors import CheckpointError


class GlobalsRegistry:
    """Tracks registered module-level variables for checkpointing."""

    def __init__(self) -> None:
        self._entries: list[tuple[str, str]] = []

    def register(self, module_name: str, attribute: str) -> None:
        """Track ``module.attribute``; idempotent."""
        module = self._module(module_name)
        if not hasattr(module, attribute):
            raise CheckpointError(
                f"module {module_name!r} has no attribute {attribute!r}"
            )
        key = (module_name, attribute)
        if key not in self._entries:
            self._entries.append(key)

    def register_many(self, module_name: str, attributes: list[str]) -> None:
        for attr in attributes:
            self.register(module_name, attr)

    @staticmethod
    def _module(name: str):
        module = sys.modules.get(name)
        if module is None:
            module = importlib.import_module(name)
        return module

    @property
    def registered(self) -> list[tuple[str, str]]:
        return list(self._entries)

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[tuple[str, str], Any]:
        """Current values of every registered global."""
        return {
            (mod, attr): getattr(self._module(mod), attr)
            for mod, attr in self._entries
        }

    def restore(self, image: dict[tuple[str, str], Any]) -> None:
        """Write checkpointed values back into the live modules."""
        for (mod, attr), value in image.items():
            setattr(self._module(mod), attr, value)
            key = (mod, attr)
            if key not in self._entries:
                self._entries.append(key)


#: Process-wide default registry: :func:`checkpointable_state` feeds it,
#: Storage-based drivers snapshot/restore through it.
DEFAULT_REGISTRY = GlobalsRegistry()


def checkpointable_state(
    *names: str,
    module: str | None = None,
    registry: GlobalsRegistry | None = None,
) -> None:
    """Declare module-level variables as checkpointable state.

    Called at module top level next to the globals it registers::

        CACHE: dict = {}
        checkpointable_state("CACHE")

    The declaration registers ``<calling module>.CACHE`` with the
    :data:`DEFAULT_REGISTRY` (pass ``module=``/``registry=`` to override)
    and — equally important — is recognised *statically* by
    ``repro-check``: registered names are exempt from the RPR030/033/034
    escape findings, and the ``--fix`` escape rewrites emit exactly this
    form.
    """
    if module is None:
        frame = sys._getframe(1)
        module = frame.f_globals.get("__name__", "__main__")
    reg = registry if registry is not None else DEFAULT_REGISTRY
    reg.register_many(module, list(names))
