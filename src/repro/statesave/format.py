"""Checkpoint data structures.

:class:`CheckpointData` is the unit a process writes at ``potentialCheckpoint``
time (paper Sections 4.4 and 5): the application state image plus everything
the protocol layer needs to reconstruct itself and the MPI library's
application-visible state.  The log part (:class:`~repro.protocol.logs.EpochLogs`)
is written separately at ``finalizeLog`` time.

The whole object is serialised in one framed pickle (see
:mod:`repro.util.serialization`) so aliasing between application objects,
heap objects and protocol records survives restore intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class CheckpointData:
    """One rank's local checkpoint for one epoch boundary."""

    rank: int
    #: The epoch this checkpoint *begins* (state.epoch after the transition).
    epoch: int
    #: Protocol variables, post-transition, normalised for restore.
    protocol: Any
    #: Early-message IDs received before this checkpoint, keyed by sender —
    #: the suppression data exchanged at restart (paper Section 4.2 Q3).
    early_ids: dict[int, list[int]] = field(default_factory=dict)
    #: Outstanding pseudo-requests (paper Section 5.2, transient objects).
    requests: list[Any] = field(default_factory=list)
    #: Persistent-object call records (paper Section 5.2).
    mpi_records: Any = None
    #: Pseudo-handles for persistent objects.
    handles: list[Any] = field(default_factory=list)
    #: Per-communicator collective call sequence numbers.
    coll_seqs: dict[int, int] = field(default_factory=dict)
    #: Opaque application state (position stack + frames + heap + globals
    #: for precompiled apps; user blob for manual apps; None for the
    #: no-app-state benchmark variant).
    app_state: Any = None
    #: Virtual time at which the checkpoint was taken.
    taken_at: float = 0.0

    def describe(self) -> str:
        n_early = sum(len(v) for v in self.early_ids.values())
        return (
            f"ckpt(rank={self.rank}, epoch={self.epoch}, "
            f"early={n_early}, requests={len(self.requests)}, "
            f"app={'yes' if self.app_state is not None else 'no'})"
        )
