"""Neurosys neuron-network simulator (paper Section 6.1, third benchmark).

"Neurosys, a neuron simulator by Peter Pacheco of the University of San
Francisco, uses a graph of neurons which excite and inhibit each other via
their connections.  The current state of each neuron is computed by solving
a function of the states of the neurons that are connected to it.  The
evolution of the neuron network through time is computed via the
Runge-Kutta method for differential equations.  The program is parallelized
by assigning each processor a block of neurons to work with.  Communication
consists of 5 MPI_Allgather's and 1 MPI_Gather in each loop iteration."

Model implemented here (a standard firing-rate network):

    dv/dt = -v + W · tanh(v) + I

integrated with classic RK4.  Each of the four stages needs the *full*
state vector, so each stage performs an allgather (4), a fifth allgather
publishes the updated state, and a gather sends the block's mean activity
to rank 0 — exactly the paper's 5 allgathers + 1 gather per iteration.
The connection matrix W is generated deterministically per block from index
arithmetic (mixed excitatory/inhibitory weights, row-normalised for
stability).

The paper's headline observation for this code: the per-iteration *control*
collective the protocol layer adds in front of every data collective costs
up to 160% at tiny problem sizes and fades to 2.7% at 128×128 — the
benchmark harness reproduces that decay curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import AppSpec, register
from repro.precompiler.api import PrecompiledApp, Precompiler


@dataclass(frozen=True)
class NeurosysParams:
    """Paper sizes: 16², 32², 64², 128² neurons, 3000 iterations (scaled)."""

    grid: int = 8
    iterations: int = 30
    dt: float = 0.05
    compute_charge: bool = True

    @property
    def n_neurons(self) -> int:
        return self.grid * self.grid

    def state_bytes(self, nprocs: int) -> int:
        """Paper labels: 18 KB .. 1.24 MB."""
        block = self.n_neurons // nprocs
        return block * self.n_neurons * 8 + 4 * self.n_neurons * 8


def _block(rank: int, size: int, n: int) -> tuple[int, int]:
    base = n // size
    extra = n % size
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def make_weights(n: int, lo: int, hi: int) -> np.ndarray:
    """Deterministic mixed excitatory/inhibitory connection rows [lo, hi).

    ``W[i, j] = sin((i+1)(j+2)) / n`` gives bounded, reproducible weights
    whose row norms keep the dynamics contractive alongside the -v leak.
    """
    i = np.arange(lo, hi, dtype=np.float64)[:, None] + 1.0
    j = np.arange(n, dtype=np.float64)[None, :] + 2.0
    w = np.sin(i * j) / float(n)
    for local, row in enumerate(range(lo, hi)):
        w[local, row] = 0.0  # no self-connection
    return w


def make_input(n: int) -> np.ndarray:
    """Constant external drive, spatially varying but deterministic."""
    return 0.5 + 0.25 * np.cos(np.arange(n) * 0.7)


# --------------------------------------------------------------------- #
# The parallel application (precompiled unit).
# --------------------------------------------------------------------- #


def _stage_rate(w_block, v_full, i_block, lo, hi):
    """Local dv/dt for the owned block given the full state."""
    return -v_full[lo:hi] + w_block @ np.tanh(v_full) + i_block


def neurosys_iteration(ctx, w_block, v_local, i_block, lo, hi, dt):
    """One RK4 step: 5 allgathers + 1 gather, as in the paper."""
    n = ctx.params.n_neurons
    # Stage 1 (allgather #1).
    v_full = np.concatenate(ctx.mpi.allgather(v_local))
    k1 = _stage_rate(w_block, v_full, i_block, lo, hi)
    # Stage 2 (allgather #2).
    v2 = np.concatenate(ctx.mpi.allgather(v_local + 0.5 * dt * k1))
    k2 = _stage_rate(w_block, v2, i_block, lo, hi)
    # Stage 3 (allgather #3).
    v3 = np.concatenate(ctx.mpi.allgather(v_local + 0.5 * dt * k2))
    k3 = _stage_rate(w_block, v3, i_block, lo, hi)
    # Stage 4 (allgather #4).
    v4 = np.concatenate(ctx.mpi.allgather(v_local + dt * k3))
    k4 = _stage_rate(w_block, v4, i_block, lo, hi)
    v_new = v_local + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
    # Publish the updated state (allgather #5).
    ctx.mpi.allgather(v_new)
    if ctx.params.compute_charge:
        ctx.compute(flops=8.0 * (hi - lo) * n)
    # Observable collection at the root (the paper's MPI_Gather).
    ctx.mpi.gather(float(v_new.mean()), root=0)
    ctx.potential_checkpoint()
    return v_new


def neurosys_main(ctx):
    """Entry point: RK4 evolution of the neuron network."""
    n = ctx.params.n_neurons
    dt = ctx.params.dt
    lo, hi = _block(ctx.rank, ctx.size, n)
    w_block = make_weights(n, lo, hi)
    i_block = make_input(n)[lo:hi]
    v_local = 0.1 * np.sin(np.arange(lo, hi, dtype=np.float64))
    it = 0
    while it < ctx.params.iterations:
        v_local = neurosys_iteration(ctx, w_block, v_local, i_block, lo, hi, dt)
        it += 1
    return {
        "checksum": float(v_local.sum()),
        "mean": float(v_local.mean()),
        "block": (lo, hi),
    }


def neurosys_reference(params: NeurosysParams) -> np.ndarray:
    """Serial RK4 reference for correctness tests."""
    n = params.n_neurons
    w = make_weights(n, 0, n)
    i_drive = make_input(n)
    v = 0.1 * np.sin(np.arange(n, dtype=np.float64))

    def rate(state):
        return -state + w @ np.tanh(state) + i_drive

    for _ in range(params.iterations):
        k1 = rate(v)
        k2 = rate(v + 0.5 * params.dt * k1)
        k3 = rate(v + 0.5 * params.dt * k2)
        k4 = rate(v + params.dt * k3)
        v = v + (params.dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
    return v


# --------------------------------------------------------------------- #
# Harness glue.
# --------------------------------------------------------------------- #

_UNIT = None


def unit():
    global _UNIT
    if _UNIT is None:
        _UNIT = Precompiler(
            [neurosys_main, neurosys_iteration], unit_name="neurosys"
        ).compile()
    return _UNIT


def build(params: NeurosysParams) -> PrecompiledApp:
    return PrecompiledApp(unit(), entry="neurosys_main", params=params)


SPEC = register(
    AppSpec(
        name="neurosys",
        factory=build,
        default_params=NeurosysParams(),
        description="Neurosys neuron-network simulator (Figure 8, right chart)",
    )
)
