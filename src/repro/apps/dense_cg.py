"""Dense Conjugate Gradient (paper Section 6.1, first benchmark).

"A dense Conjugate Gradient code from Yingfeng Su of the University of San
Francisco.  This code implements a parallel conjugate gradient algorithm
with block row distribution.  The main loop performs a parallel matrix
vector multiply and a parallel dot product, with communication coming from
an allReduce and an allGather, which are implemented in terms of
point-to-point messages along a butterfly tree."

This implementation mirrors that structure: each rank owns a block of rows
of a dense SPD matrix; every iteration assembles the full search direction
with an ``allgather`` (butterfly for power-of-two sizes) and folds the two
dot products with ``allreduce``; a ``potential_checkpoint()`` sits at the
bottom of the iteration loop.  The matrix is generated deterministically
from index arithmetic (symmetric, strictly diagonally dominant ⇒ SPD), and
``b = A·1`` so the exact solution is the all-ones vector — giving the
integration tests a ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import AppSpec, register
from repro.precompiler.api import PrecompiledApp, Precompiler


@dataclass(frozen=True)
class CGParams:
    """Problem configuration (paper sizes: 4096, 8192, 16384; 500 iters)."""

    n: int = 256
    iterations: int = 50
    #: Virtual seconds charged per local flop-block per iteration; models
    #: the compute the 1 GHz Pentium III spent between messages.
    compute_charge: bool = True

    def state_bytes(self, nprocs: int) -> int:
        """Approximate per-rank application state (the paper's chart labels:
        8.2 MB / 33 MB / 131 MB for the full matrix block plus vectors)."""
        rows = self.n // nprocs
        return rows * self.n * 8 + 5 * self.n * 8


def _row_block(rank: int, size: int, n: int) -> tuple[int, int]:
    """Block-row ownership [lo, hi) for ``rank``; n must divide evenly in
    paper configurations but uneven tails are handled."""
    base = n // size
    extra = n % size
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def make_matrix_block(n: int, lo: int, hi: int) -> np.ndarray:
    """Rows [lo, hi) of the deterministic SPD test matrix.

    ``A[i, j] = cos((i+1)(j+1)/n²)`` off the diagonal (symmetric by
    construction, |entries| ≤ 1) and ``A[i, i] = n + 1`` (strict diagonal
    dominance ⇒ positive definite).
    """
    i = np.arange(lo, hi, dtype=np.float64)[:, None] + 1.0
    j = np.arange(n, dtype=np.float64)[None, :] + 1.0
    block = np.cos(i * j / float(n * n))
    for local, row in enumerate(range(lo, hi)):
        block[local, row] = n + 1.0
    return block


# --------------------------------------------------------------------- #
# The parallel application (precompiled unit).
# --------------------------------------------------------------------- #


def cg_iteration(ctx, a_block, x_local, r_local, p_local, rs_old, lo, hi, n):
    """One CG step; returns (rs_new, alpha) with state updated in place."""
    from repro.simmpi.op import SUM

    # Assemble the full search direction (paper: allGather via butterfly).
    p_parts = ctx.mpi.allgather(p_local)
    p_full = np.concatenate(p_parts)
    ap_local = a_block @ p_full
    if ctx.params.compute_charge:
        ctx.compute(flops=2.0 * (hi - lo) * n)
    # Parallel dot product (paper: allReduce via butterfly).
    pap = ctx.mpi.allreduce(float(p_local @ ap_local), SUM)
    # Once CG has converged to machine zero the search direction vanishes;
    # keep iterating with zero updates so every benchmark variant performs
    # the same fixed amount of communication and compute.
    alpha = rs_old / pap if pap > 0.0 else 0.0
    x_local += alpha * p_local
    r_local -= alpha * ap_local
    rs_new = ctx.mpi.allreduce(float(r_local @ r_local), SUM)
    ctx.potential_checkpoint()
    return rs_new


def cg_main(ctx):
    """Entry point: distributed CG solve of A x = A·1."""
    n = ctx.params.n
    iterations = ctx.params.iterations
    lo, hi = _row_block(ctx.rank, ctx.size, n)
    a_block = make_matrix_block(n, lo, hi)
    # b = A @ ones  => exact solution is the ones vector.
    b_local = a_block.sum(axis=1)
    x_local = np.zeros(hi - lo)
    r_local = b_local.copy()
    p_local = r_local.copy()
    from repro.simmpi.op import SUM

    rs_old = ctx.mpi.allreduce(float(r_local @ r_local), SUM)
    it = 0
    while it < iterations:
        rs_new = cg_iteration(
            ctx, a_block, x_local, r_local, p_local, rs_old, lo, hi, n
        )
        beta = rs_new / rs_old if rs_old > 0.0 else 0.0
        p_local *= beta
        p_local += r_local
        rs_old = rs_new
        it += 1
    err = float(np.abs(x_local - 1.0).max())
    return {"residual": rs_old, "max_error": err, "x_checksum": float(x_local.sum())}


# --------------------------------------------------------------------- #
# Harness glue.
# --------------------------------------------------------------------- #

_UNIT = None


def unit():
    """Lazily compile the CG unit (shared across benchmark runs)."""
    global _UNIT
    if _UNIT is None:
        _UNIT = Precompiler([cg_main, cg_iteration], unit_name="dense_cg").compile()
    return _UNIT


def build(params: CGParams) -> PrecompiledApp:
    """A driver-ready application instance for the given problem size."""
    return PrecompiledApp(unit(), entry="cg_main", params=params)


SPEC = register(
    AppSpec(
        name="dense_cg",
        factory=build,
        default_params=CGParams(),
        description="Dense Conjugate Gradient (Figure 8, left chart)",
    )
)


def reference(params: CGParams) -> dict:
    """Serial CG with identical arithmetic order is impractical (parallel
    reductions fold in rank order), but the *solution* is analytic: x = 1.
    Returns the tolerances integration tests should check against."""
    return {"solution": 1.0, "tolerance": 1e-6}
