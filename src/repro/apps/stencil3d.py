"""3D heat stencil (gallery app; deliberately split across two modules).

A 7-point Jacobi relaxation on an ``n³`` field with fixed (Dirichlet)
boundary faces, block-distributed by z-planes with one halo plane per
interior edge — the volumetric sibling of the paper's Laplace benchmark
(Section 6.1), with the same communication shape one dimension up: each
iteration exchanges boundary planes with the z-neighbours, averages the
six face neighbours, and ends at a ``potential_checkpoint()``.

The halo exchange lives in :mod:`repro.apps.stencil3d_halo`.  The split
is the point: ``repro-check``'s import-graph slicer joins the sibling
module into the checked unit, so this two-file app verifies exactly like
its single-file merge — and the precompiler compiles the pair into one
unit the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import AppSpec, register
from repro.apps.stencil3d_halo import halo_exchange_z
from repro.precompiler.api import PrecompiledApp, Precompiler


@dataclass(frozen=True)
class Stencil3DParams:
    """Scaled sizes: the gallery default keeps a run under a second."""

    n: int = 16
    iterations: int = 12
    compute_charge: bool = True

    def state_bytes(self, nprocs: int) -> int:
        """Per-rank state: owned planes plus two halo planes."""
        return (self.n // nprocs + 2) * self.n * self.n * 8


def _plane_block(rank: int, size: int, n: int) -> tuple[int, int]:
    base = n // size
    extra = n % size
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def make_initial_field(n: int) -> np.ndarray:
    """Deterministic initial condition: hot floor, cold ceiling."""
    field = np.zeros((n, n, n))
    field[0, :, :] = 100.0
    field[-1, :, :] = -40.0
    field[:, 0, :] = 25.0
    field[:, -1, :] = 25.0
    field[:, :, 0] = 50.0
    field[:, :, -1] = 50.0
    return field


def stencil3d_reference(n: int, iterations: int) -> np.ndarray:
    """Serial 7-point Jacobi reference for correctness tests."""
    field = make_initial_field(n)
    for _ in range(iterations):
        inner = (
            field[:-2, 1:-1, 1:-1] + field[2:, 1:-1, 1:-1]
            + field[1:-1, :-2, 1:-1] + field[1:-1, 2:, 1:-1]
            + field[1:-1, 1:-1, :-2] + field[1:-1, 1:-1, 2:]
        ) / 6.0
        new = field.copy()
        new[1:-1, 1:-1, 1:-1] = inner
        field = new
    return field


# --------------------------------------------------------------------- #
# The parallel application (precompiled unit spanning two modules).
# --------------------------------------------------------------------- #

def stencil3d_main(ctx):
    """Entry point: z-block Jacobi iteration with sibling halo exchange."""
    n = ctx.params.n
    iterations = ctx.params.iterations
    lo, hi = _plane_block(ctx.rank, ctx.size, n)
    full = make_initial_field(n)
    # Owned z-planes plus one halo plane on each side.
    block = np.zeros((hi - lo + 2, n, n))
    block[1:-1] = full[lo:hi]
    if lo > 0:
        block[0] = full[lo - 1]
    if hi < n:
        block[-1] = full[hi]
    it = 0
    while it < iterations:
        halo_exchange_z(ctx, block)
        inner = (
            block[:-2, 1:-1, 1:-1] + block[2:, 1:-1, 1:-1]
            + block[1:-1, :-2, 1:-1] + block[1:-1, 2:, 1:-1]
            + block[1:-1, 1:-1, :-2] + block[1:-1, 1:-1, 2:]
        ) / 6.0
        if ctx.params.compute_charge:
            ctx.compute(flops=7.0 * (hi - lo) * n * n)
        # Fixed boundary: global floor/ceiling planes and the side faces
        # keep their values; interior cells take the Jacobi average.
        update = block[1:-1].copy()
        zlo = 1 if lo == 0 else 0
        zhi = (hi - lo) - 1 if hi == n else (hi - lo)
        update[zlo:zhi, 1:-1, 1:-1] = inner[zlo:zhi, :, :]
        block[1:-1] = update
        it += 1
    owned = block[1:-1]
    return {
        "checksum": float(owned.sum()),
        "max": float(owned.max()),
        "planes": (lo, hi),
    }


# --------------------------------------------------------------------- #
# Harness glue.
# --------------------------------------------------------------------- #

_UNIT = None


def unit():
    global _UNIT
    if _UNIT is None:
        _UNIT = Precompiler(
            [stencil3d_main, halo_exchange_z], unit_name="stencil3d"
        ).compile()
    return _UNIT


def build(params: Stencil3DParams) -> PrecompiledApp:
    return PrecompiledApp(unit(), entry="stencil3d_main", params=params)


SPEC = register(
    AppSpec(
        name="stencil3d",
        factory=build,
        default_params=Stencil3DParams(),
        description="3D heat stencil (two-module gallery app)",
    )
)
