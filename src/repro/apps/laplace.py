"""Laplace solver (paper Section 6.1, second benchmark).

"A Laplace Solver, by Raghu Reddy from the Pittsburgh Supercomputing
Center.  This program uses a grid of numbers that is distributed by block
rows.  During each iteration every grid cell is updated to be the average
of the numbers contained by the neighboring cells (up, down, left, right)
in the previous iteration.  The communication comes from each processor
exchanging border rows with the processor 'above' it and the processor
'below' it."

Implementation: an ``n × n`` grid with fixed (Dirichlet) boundary values,
block-row distributed with one halo row on each interior edge.  Each
iteration sends the first/last owned rows to the neighbours (plain
point-to-point — this benchmark exercises the protocol's p2p path, where
dense CG and Neurosys exercise collectives), then performs the four-point
Jacobi average.  A ``potential_checkpoint()`` ends every iteration.

The paper notes this code's checkpointing overhead stays ≤ 2.1% because the
application state is small and the messages are large relative to the
piggyback word — the benchmark harness checks exactly that shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import AppSpec, register
from repro.precompiler.api import PrecompiledApp, Precompiler


@dataclass(frozen=True)
class LaplaceParams:
    """Paper sizes: 512², 1024², 2048² for 40000 iterations (scaled here)."""

    n: int = 64
    iterations: int = 40
    compute_charge: bool = True

    def state_bytes(self, nprocs: int) -> int:
        """Per-rank state (paper labels: 138 KB / 532 KB / 2.1 MB total)."""
        return (self.n // nprocs + 2) * self.n * 8


def _row_block(rank: int, size: int, n: int) -> tuple[int, int]:
    base = n // size
    extra = n % size
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def make_initial_grid(n: int) -> np.ndarray:
    """Deterministic initial condition: hot top edge, cold elsewhere."""
    grid = np.zeros((n, n))
    grid[0, :] = 100.0
    grid[-1, :] = -25.0
    grid[:, 0] = 50.0
    grid[:, -1] = 50.0
    return grid


def laplace_reference(n: int, iterations: int) -> np.ndarray:
    """Serial Jacobi reference for correctness tests."""
    grid = make_initial_grid(n)
    for _ in range(iterations):
        interior = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        new = grid.copy()
        new[1:-1, 1:-1] = interior
        grid = new
    return grid


# --------------------------------------------------------------------- #
# The parallel application (precompiled unit).
# --------------------------------------------------------------------- #

TAG_DOWN = 11  # data flowing to the rank below (higher row indices)
TAG_UP = 12    # data flowing to the rank above


def halo_exchange(ctx, block):
    """Exchange border rows with the neighbours above and below.

    ``block`` has one halo row at each end; owned rows are block[1:-1].
    """
    above = ctx.rank - 1
    below = ctx.rank + 1
    if above >= 0:
        ctx.mpi.send(block[1].copy(), above, tag=TAG_UP)
    if below < ctx.size:
        ctx.mpi.send(block[-2].copy(), below, tag=TAG_DOWN)
    if above >= 0:
        block[0] = ctx.mpi.recv(source=above, tag=TAG_DOWN)
    if below < ctx.size:
        block[-1] = ctx.mpi.recv(source=below, tag=TAG_UP)
    ctx.potential_checkpoint()


def laplace_main(ctx):
    """Entry point: block-row Jacobi iteration with halo exchange."""
    n = ctx.params.n
    iterations = ctx.params.iterations
    lo, hi = _row_block(ctx.rank, ctx.size, n)
    full = make_initial_grid(n)
    # Owned rows plus one halo row on each side.
    block = np.zeros((hi - lo + 2, n))
    block[1:-1] = full[lo:hi]
    if lo > 0:
        block[0] = full[lo - 1]
    if hi < n:
        block[-1] = full[hi]
    it = 0
    while it < iterations:
        halo_exchange(ctx, block)
        new_inner = 0.25 * (
            block[:-2, 1:-1] + block[2:, 1:-1] + block[1:-1, :-2] + block[1:-1, 2:]
        )
        if ctx.params.compute_charge:
            ctx.compute(flops=4.0 * (hi - lo) * n)
        # Fixed boundary: global first/last rows and the side columns keep
        # their values; interior cells take the Jacobi average.
        update = block[1:-1].copy()
        rlo = 1 if lo == 0 else 0
        rhi = (hi - lo) - 1 if hi == n else (hi - lo)
        update[rlo:rhi, 1:-1] = new_inner[rlo:rhi, :]
        block[1:-1] = update
        it += 1
    owned = block[1:-1]
    return {
        "checksum": float(owned.sum()),
        "max": float(owned.max()),
        "rows": (lo, hi),
    }


# --------------------------------------------------------------------- #
# Harness glue.
# --------------------------------------------------------------------- #

_UNIT = None


def unit():
    global _UNIT
    if _UNIT is None:
        _UNIT = Precompiler(
            [laplace_main, halo_exchange], unit_name="laplace"
        ).compile()
    return _UNIT


def build(params: LaplaceParams) -> PrecompiledApp:
    return PrecompiledApp(unit(), entry="laplace_main", params=params)


SPEC = register(
    AppSpec(
        name="laplace",
        factory=build,
        default_params=LaplaceParams(),
        description="Laplace Solver (Figure 8, middle chart)",
    )
)
