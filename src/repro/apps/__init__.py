"""The paper's three benchmark applications (Section 6.1)."""

from repro.apps.dense_cg import CGParams
from repro.apps.laplace import LaplaceParams
from repro.apps.neurosys import NeurosysParams
from repro.apps.stencil3d import Stencil3DParams
from repro.apps.workloads import (
    ALL_CHARTS,
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_NPROCS,
    DENSE_CG_POINTS,
    LAPLACE_POINTS,
    NEUROSYS_POINTS,
    PAPER_NPROCS,
    STENCIL3D_POINTS,
    WorkloadPoint,
)

__all__ = [
    "ALL_CHARTS",
    "CGParams",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_NPROCS",
    "DENSE_CG_POINTS",
    "LAPLACE_POINTS",
    "LaplaceParams",
    "NEUROSYS_POINTS",
    "NeurosysParams",
    "PAPER_NPROCS",
    "STENCIL3D_POINTS",
    "Stencil3DParams",
    "WorkloadPoint",
]
