"""Z-halo exchange for the 3D stencil app (the sibling-module half).

This module exists *separately* from :mod:`repro.apps.stencil3d` on
purpose: the pair is the gallery's demonstration that ``repro-check``'s
import-graph slicer verifies a multi-file application as one unit.
Checking ``stencil3d.py`` pulls :func:`halo_exchange_z` (and these tag
constants, scoped to this module) into the checked unit exactly as if
the two files were one.
"""

from __future__ import annotations

TAG_ZLO = 21  # data flowing to the rank below (lower z planes)
TAG_ZHI = 22  # data flowing to the rank above


def halo_exchange_z(ctx, block):
    """Exchange boundary z-planes with the neighbours below and above.

    ``block`` has one halo plane at each end; owned planes are
    ``block[1:-1]``.
    """
    below = ctx.rank - 1
    above = ctx.rank + 1
    if below >= 0:
        ctx.mpi.send(block[1].copy(), below, tag=TAG_ZLO)
    if above < ctx.size:
        ctx.mpi.send(block[-2].copy(), above, tag=TAG_ZHI)
    if below >= 0:
        block[0] = ctx.mpi.recv(source=below, tag=TAG_ZHI)
    if above < ctx.size:
        block[-1] = ctx.mpi.recv(source=above, tag=TAG_ZLO)
    ctx.potential_checkpoint()
