"""Workload catalogue: paper problem sizes and their scaled-down analogues.

The paper evaluated on 16 nodes of the Cornell Velocity cluster with a
30-second checkpoint interval.  A pure-Python simulator cannot turn the
same absolute sizes around in benchmark time, so every experiment runs a
scaled configuration chosen to preserve the *ratios* the paper's analysis
hinges on: application-state size relative to message volume (dense CG),
message size relative to piggyback size (Laplace), and collective count
relative to computation (Neurosys).  The mapping is recorded here so
EXPERIMENTS.md can cite it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import AppSpec
from repro.apps import dense_cg, laplace, neurosys, stencil3d
from repro.apps.dense_cg import CGParams
from repro.apps.laplace import LaplaceParams
from repro.apps.neurosys import NeurosysParams
from repro.apps.stencil3d import Stencil3DParams


@dataclass(frozen=True)
class WorkloadPoint:
    """One bar group of Figure 8: a problem size for one application."""

    app: str
    label: str            # the paper's x-axis label
    paper_state: str      # the paper's application-state annotation
    params: object        # scaled parameters actually run


#: Figure 8, left chart: dense CG at 4096², 8192², 16384² (500 iterations).
DENSE_CG_POINTS = (
    WorkloadPoint("dense_cg", "4096x4096", "8.2MB",
                  CGParams(n=128, iterations=60)),
    WorkloadPoint("dense_cg", "8192x8192", "33MB",
                  CGParams(n=256, iterations=60)),
    WorkloadPoint("dense_cg", "16384x16384", "131MB",
                  CGParams(n=512, iterations=60)),
)

#: Figure 8, middle chart: Laplace at 512², 1024², 2048² (40000 iterations).
LAPLACE_POINTS = (
    WorkloadPoint("laplace", "512x512", "138KB",
                  LaplaceParams(n=64, iterations=120)),
    WorkloadPoint("laplace", "1024x1024", "532KB",
                  LaplaceParams(n=128, iterations=120)),
    WorkloadPoint("laplace", "2048x2048", "2.1MB",
                  LaplaceParams(n=256, iterations=120)),
)

#: Figure 8, right chart: Neurosys at 16², 32², 64², 128² (3000 iterations).
#: The scaled grids are chosen so the largest point is genuinely
#: computation-dominated (the mechanism behind the paper's overhead decay):
#: at grid=64 each RK4 stage multiplies a 1024×4096 block.
NEUROSYS_POINTS = (
    WorkloadPoint("neurosys", "16x16", "18KB",
                  NeurosysParams(grid=8, iterations=40)),
    WorkloadPoint("neurosys", "32x32", "75KB",
                  NeurosysParams(grid=16, iterations=40)),
    WorkloadPoint("neurosys", "64x64", "308KB",
                  NeurosysParams(grid=32, iterations=40)),
    WorkloadPoint("neurosys", "128x128", "1.24MB",
                  NeurosysParams(grid=64, iterations=40)),
)

#: Gallery extra (not a Figure 8 chart): the 3D stencil extends the
#: Laplace communication pattern by a dimension and is deliberately
#: split across two source modules to exercise cross-module checking.
STENCIL3D_POINTS = (
    WorkloadPoint("stencil3d", "64x64x64", "4.2MB",
                  Stencil3DParams(n=16, iterations=12)),
    WorkloadPoint("stencil3d", "128x128x128", "33MB",
                  Stencil3DParams(n=24, iterations=12)),
)

ALL_CHARTS = {
    "dense_cg": DENSE_CG_POINTS,
    "laplace": LAPLACE_POINTS,
    "neurosys": NEUROSYS_POINTS,
}

#: The registered application catalogue (importing this module registers
#: every gallery application; :func:`repro.get_app` autoloads it).
APP_SPECS: dict[str, AppSpec] = {
    "dense_cg": dense_cg.SPEC,
    "laplace": laplace.SPEC,
    "neurosys": neurosys.SPEC,
    "stencil3d": stencil3d.SPEC,
}

#: The paper ran 16 processors (of the 64-node CMI cluster).
PAPER_NPROCS = 16

#: Simulator-scale default (collectives are power-of-two friendly).
DEFAULT_NPROCS = 4

#: The paper's checkpoint interval was 30 s of wall time; the simulated
#: interval is chosen so several waves complete within each benchmark run.
DEFAULT_CHECKPOINT_INTERVAL = 0.004

#: Storage-engine profile for the scaled runs (see :mod:`repro.ckpt`).
#: The scaled per-rank states are tens of KB where the paper's were MBs,
#: so the content-addressing granularity scales down with them — at the
#: default 64 KiB chunk a whole scaled checkpoint fits one chunk and the
#: delta engine has nothing to dedupe.
SCALED_CKPT_CHUNK_SIZE = 2048
#: Measured sweet spot for the scaled float-heavy states: zlib recovers
#: 25-60% of the bytes at tolerable serialisation cost (lzma compresses
#: harder but its latency distorts the overhead charts).
SCALED_CKPT_CODEC = "zlib"
