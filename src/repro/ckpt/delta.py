"""Incremental snapshots: content-addressed chunking of checkpoint payloads.

The delta strategy works at the byte level of the *single* pickle stream a
checkpoint serialises to.  That choice is deliberate: the rank's whole
state (stack frames, heap, globals, protocol records) must be pickled in
one stream so aliasing between objects survives restore (see
:mod:`repro.util.serialization`) — splitting the object graph into
separately-pickled parts would silently duplicate shared objects.  Instead
the stream is cut into fixed-size chunks, each addressed by a digest of
its decoded bytes; a generation whose chunk already exists in the backend
writes nothing for it.

Fixed-size chunking dedupes well here because scientific application
state is dominated by in-place-mutated arrays of stable shape (the dense
CG matrix block, the Laplace grid): successive generations produce pickle
streams of identical length whose unchanged regions land on identical
chunk boundaries.  For dense CG the constant matrix block — the bulk of
the paper's 8 MB–131 MB state — dedupes to zero bytes every wave.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Default chunk size: small enough that a partially-changed state saves
#: bytes, large enough that digest/lookup overhead stays negligible.
DEFAULT_CHUNK_SIZE = 64 * 1024


def chunk_digest(data: bytes) -> str:
    """Content address of one chunk (computed over *decoded* bytes)."""
    return hashlib.blake2b(data, digest_size=20).hexdigest()


def split_chunks(payload: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> list[bytes]:
    """Cut ``payload`` into fixed-size chunks (last one may be short)."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if not payload:
        return [b""]
    view = memoryview(payload)
    return [
        bytes(view[offset : offset + chunk_size])
        for offset in range(0, len(payload), chunk_size)
    ]


@dataclass
class DeltaStats:
    """What one generation's save actually moved."""

    chunks_total: int = 0
    chunks_written: int = 0
    chunks_reused: int = 0
    bytes_logical: int = 0   # decoded payload size
    bytes_stored: int = 0    # encoded bytes that hit the backend

    @property
    def reuse_fraction(self) -> float:
        return self.chunks_reused / self.chunks_total if self.chunks_total else 0.0
