"""repro.ckpt: the tiered checkpoint storage engine.

Checkpoint I/O dominates the paper's overhead tables once application
state grows; this package makes storage a first-class subsystem in the
lineage of the application-level checkpointing systems descended from C3
(SCR, VeloC):

* pluggable **backends** (in-memory, directory-on-disk) behind an atomic
  keyed-blob protocol (:mod:`repro.ckpt.backends`);
* a **codec registry** compressing chunks with zlib/lzma or nothing
  (:mod:`repro.ckpt.codecs`);
* **incremental snapshots** that content-address the pickled state stream
  so unchanged regions of the previous generation cost zero bytes
  (:mod:`repro.ckpt.delta`);
* **crash-consistent two-phase commit**: chunks first, then one atomic
  checksummed manifest — a failure mid-write never destroys the last good
  generation (:mod:`repro.ckpt.store`, :mod:`repro.ckpt.manifest`);
* **retention policies** (keep-last-K, keep-every-Nth) bounding disk use
  (:mod:`repro.ckpt.retention`).

:class:`repro.statesave.storage.Storage` — what the protocol layer and
recovery driver talk to — is implemented on this engine; the knobs are
surfaced as the ``ckpt_*`` fields of :class:`repro.runtime.config.RunConfig`.
"""

from repro.ckpt.backends import (
    Backend,
    DirectoryBackend,
    MemoryBackend,
    list_backends,
    make_backend,
    register_backend,
)
from repro.ckpt.codecs import (
    ChunkCodec,
    LzmaCodec,
    NullCodec,
    ZlibCodec,
    get_chunk_codec,
    list_chunk_codecs,
    register_chunk_codec,
)
from repro.ckpt.delta import DEFAULT_CHUNK_SIZE, DeltaStats, chunk_digest, split_chunks
from repro.ckpt.manifest import ChunkRef, GenerationManifest
from repro.ckpt.retention import RetentionPolicy
from repro.ckpt.store import CheckpointStore

__all__ = [
    "Backend",
    "CheckpointStore",
    "ChunkCodec",
    "ChunkRef",
    "DEFAULT_CHUNK_SIZE",
    "DeltaStats",
    "DirectoryBackend",
    "GenerationManifest",
    "LzmaCodec",
    "MemoryBackend",
    "NullCodec",
    "RetentionPolicy",
    "ZlibCodec",
    "chunk_digest",
    "get_chunk_codec",
    "list_backends",
    "list_chunk_codecs",
    "make_backend",
    "register_backend",
    "register_chunk_codec",
    "split_chunks",
]
