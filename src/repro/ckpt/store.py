"""The tiered checkpoint storage engine.

:class:`CheckpointStore` organises a backend's flat key space into three
regions::

    objects/<codec>/<d0d1>/<digest>         -- content-addressed chunks
    manifests/<stream>/gen<g>.mft           -- per-generation manifests
    refs/<name>                             -- small named records (COMMIT)

A *stream* is one logical sequence of generations (``rank0/state``,
``rank3/log``); a *generation* is one immutable snapshot within it,
indexed by epoch.  Saving a generation is a two-phase commit:

1. every chunk of the pickled payload is written (atomically, under its
   content address) — chunks are invisible until referenced;
2. the checksummed manifest is published with one atomic rename.

A crash anywhere in phase 1, or before phase 2's rename, leaves at most
orphaned chunks: the previous generation's manifest — and therefore the
previous generation — is untouched.  Per-commit GC (:meth:`collect`)
sweeps only the chunks of the generations it deletes; chunks orphaned by
torn writes are reclaimed by the full :meth:`sweep_orphans`, run off the
hot path (the recovery driver calls it after a failed attempt).

Incremental mode consults the backend before writing each chunk: a chunk
whose content address already exists (from any generation of any stream)
costs zero bytes.  Compression happens per chunk, after dedup, so the
codec never disturbs content addressing.
"""

from __future__ import annotations

import pickle
from dataclasses import replace
from typing import Any, Callable, Optional

from repro.ckpt.backends import Backend
from repro.ckpt.codecs import ChunkCodec, get_chunk_codec
from repro.ckpt.delta import DEFAULT_CHUNK_SIZE, DeltaStats, chunk_digest, split_chunks
from repro.ckpt.manifest import ChunkRef, GenerationManifest
from repro.ckpt.retention import RetentionPolicy
from repro.errors import StorageError
from repro.util.serialization import dumps_framed, loads_framed

#: Progress stages reported to a save hook (fault injection, tests).
STAGE_CHUNK = "chunk"
STAGE_MANIFEST = "manifest"

ProgressHook = Callable[[str, int, int], None]


class CheckpointStore:
    """Generations of checkpoints over a pluggable backend."""

    def __init__(
        self,
        backend: Backend,
        codec: str = "none",
        incremental: bool = True,
        retention: Optional[RetentionPolicy] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.backend = backend
        self.codec: ChunkCodec = get_chunk_codec(codec)
        self.incremental = incremental
        self.retention = retention or RetentionPolicy()
        self.chunk_size = chunk_size
        #: Cumulative encoded bytes that reached the backend.
        self.bytes_written = 0
        #: Cumulative decoded payload bytes saved (what a flat pickle store
        #: would have written); the benchmark's denominator.
        self.logical_bytes = 0
        self.chunks_written = 0
        self.chunks_reused = 0
        self.generations_saved = 0
        #: Every manifest this store instance has written, in save order —
        #: the bytes-per-generation record benchmarks report from.  (GC
        #: removes generations from the backend, not from this history.)
        self.history: list[GenerationManifest] = []
        #: Bumped whenever published data may have changed underneath a
        #: reader (deletes, GC, tampering helpers); validation caches use
        #: it as their invalidation stamp.
        self.mutations = 0
        self._decoders: dict[str, ChunkCodec] = {self.codec.name: self.codec}
        #: Optional :class:`repro.trace.TraceRecorder`; armed per run by the
        #: recovery driver (via the ``Storage`` facade).  Emission sites
        #: guard on this being None, so tracing off costs one attribute read.
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # Key layout.
    # ------------------------------------------------------------------ #

    @staticmethod
    def _chunk_key(digest: str, codec: str) -> str:
        # Chunks are keyed per codec: dedup must never hand a generation a
        # chunk whose bytes were encoded under a different codec than its
        # manifest records.
        return f"objects/{codec}/{digest[:2]}/{digest}"

    @staticmethod
    def _manifest_key(stream: str, generation: int) -> str:
        return f"manifests/{stream}/gen{generation:08d}.mft"

    @staticmethod
    def _record_key(name: str) -> str:
        return f"refs/{name}"

    def _decoder(self, name: str) -> ChunkCodec:
        if name not in self._decoders:
            self._decoders[name] = get_chunk_codec(name)
        return self._decoders[name]

    # ------------------------------------------------------------------ #
    # Save / load.
    # ------------------------------------------------------------------ #

    def save(
        self,
        stream: str,
        generation: int,
        obj: Any,
        progress: Optional[ProgressHook] = None,
        created_at: Optional[float] = None,
    ) -> GenerationManifest:
        """Write ``obj`` as ``stream``'s generation ``generation``.

        The ``progress`` hook fires before each chunk is processed and once
        more just before the manifest is published; raising from it models
        a crash mid-write (some chunks persisted, manifest never published).

        ``created_at`` stamps the manifest; callers pass *virtual* time (or
        any deterministic value).  The store never reads the host clock:
        wall-clock timestamps baked into persisted bytes would make two
        otherwise-identical runs produce different backends, poisoning
        byte-level rerun determinism and content-addressed result caches.
        """
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        # Overwrite awareness: a recovery attempt that re-takes an epoch's
        # checkpoint republishes (stream, generation).  Remember the old
        # manifest so the chunks only it referenced can be reclaimed after
        # the new one is published — otherwise every post-failure rewrite
        # strands the previous write's chunks as permanent orphans.
        old_manifest = None
        if self.backend.exists(self._manifest_key(stream, generation)):
            try:
                old_manifest = self.read_manifest(stream, generation, verify=False)
            except StorageError:
                old_manifest = None  # a torn/corrupt predecessor references nothing
        chunks = split_chunks(payload, self.chunk_size)
        stats = DeltaStats(chunks_total=len(chunks), bytes_logical=len(payload))
        refs: list[ChunkRef] = []
        for index, chunk in enumerate(chunks):
            if progress is not None:
                # Fires *before* chunk ``index`` is processed, so a hook
                # raising at index k leaves exactly k chunks persisted.
                progress(STAGE_CHUNK, index, len(chunks))
            digest = chunk_digest(chunk)
            key = self._chunk_key(digest, self.codec.name)
            if self.incremental and self.backend.exists(key):
                stats.chunks_reused += 1
                refs.append(ChunkRef(digest, len(chunk), self.backend.size(key)))
            else:
                encoded = self.codec.encode(chunk)
                self.backend.put(key, encoded)
                stats.chunks_written += 1
                stats.bytes_stored += len(encoded)
                refs.append(ChunkRef(digest, len(chunk), len(encoded)))
        manifest = GenerationManifest(
            stream=stream,
            generation=generation,
            codec=self.codec.name,
            chunk_size=self.chunk_size,
            payload_length=len(payload),
            chunks=tuple(refs),
            created_at=created_at if created_at is not None else 0.0,
            stored_bytes=stats.bytes_stored,
            reused_chunks=stats.chunks_reused,
        ).sealed()
        if progress is not None:
            progress(STAGE_MANIFEST, 0, 1)
        blob = dumps_framed(manifest)
        self.backend.put(self._manifest_key(stream, generation), blob)
        self.bytes_written += stats.bytes_stored + len(blob)
        self.logical_bytes += len(payload)
        self.chunks_written += stats.chunks_written
        self.chunks_reused += stats.chunks_reused
        self.generations_saved += 1
        self.history.append(manifest)
        if old_manifest is not None:
            # Only chunks the rewrite actually replaced are candidates; in
            # the common recovery case (same state re-taken, chunks dedupe)
            # this set is empty and the full reference scan is skipped —
            # keeping the write path on the targeted-GC cost model.
            candidates = {
                self._chunk_key(ref.digest, old_manifest.codec)
                for ref in old_manifest.chunks
            } - {self._chunk_key(ref.digest, manifest.codec) for ref in refs}
            if candidates:
                referenced = self._referenced_chunk_keys()
                for key in candidates - referenced:
                    self.backend.delete(key)
            # Published bytes changed underneath any cached validation.
            self.mutations += 1
        tr = self.tracer
        if tr is not None:
            # The manifest publish is the atomic point of two-phase commit;
            # one event here captures the whole generation write.
            tr.emit(
                "store", "publish", t=manifest.created_at,
                stream=stream, generation=generation,
                chunks_written=stats.chunks_written,
                chunks_reused=stats.chunks_reused,
                bytes_stored=stats.bytes_stored,
            )
        return manifest

    def load(self, stream: str, generation: int) -> Any:
        """Reassemble and deserialise one generation, verifying everything."""
        manifest = self.read_manifest(stream, generation)
        decoder = self._decoder(manifest.codec)
        parts: list[bytes] = []
        for ref in manifest.chunks:
            encoded = self.backend.get(self._chunk_key(ref.digest, manifest.codec))
            try:
                data = decoder.decode(encoded)
            except Exception as exc:
                raise StorageError(
                    f"chunk {ref.digest[:12]} of {stream!r} generation "
                    f"{generation} failed to decode: {exc}"
                ) from exc
            if len(data) != ref.length or chunk_digest(data) != ref.digest:
                raise StorageError(
                    f"chunk {ref.digest[:12]} of {stream!r} generation "
                    f"{generation} fails content verification"
                )
            parts.append(data)
        payload = b"".join(parts)
        if len(payload) != manifest.payload_length:
            raise StorageError(
                f"{stream!r} generation {generation}: reassembled "
                f"{len(payload)} bytes, manifest says {manifest.payload_length}"
            )
        return pickle.loads(payload)

    # ------------------------------------------------------------------ #
    # Manifests / generations.
    # ------------------------------------------------------------------ #

    def read_manifest(
        self, stream: str, generation: int, verify: bool = True
    ) -> GenerationManifest:
        blob = self.backend.get(self._manifest_key(stream, generation))
        manifest = loads_framed(blob)
        if not isinstance(manifest, GenerationManifest):
            raise StorageError(
                f"object at {self._manifest_key(stream, generation)!r} "
                "is not a manifest"
            )
        if verify:
            manifest.verify()
        return manifest

    def has_generation(self, stream: str, generation: int) -> bool:
        return self.backend.exists(self._manifest_key(stream, generation))

    def generations(self, stream: str) -> list[int]:
        prefix = f"manifests/{stream}/gen"
        out = []
        for key in self.backend.keys(prefix):
            tail = key[len(prefix):]
            if tail.endswith(".mft"):
                out.append(int(tail[: -len(".mft")]))
        return sorted(out)

    def streams(self) -> list[str]:
        seen = set()
        for key in self.backend.keys("manifests/"):
            stream, _sep, _leaf = key[len("manifests/"):].rpartition("/")
            if stream:
                seen.add(stream)
        return sorted(seen)

    def validate_generation(self, stream: str, generation: int) -> bool:
        """True iff the generation's manifest checks out and every chunk
        is present with matching content (a full read, used before trusting
        a generation for recovery)."""
        try:
            manifest = self.read_manifest(stream, generation)
            decoder = self._decoder(manifest.codec)
            total = 0
            for ref in manifest.chunks:
                encoded = self.backend.get(self._chunk_key(ref.digest, manifest.codec))
                data = decoder.decode(encoded)
                if len(data) != ref.length or chunk_digest(data) != ref.digest:
                    return False
                total += len(data)
            return total == manifest.payload_length
        except Exception:
            return False

    def corrupt_manifest(self, stream: str, generation: int) -> None:
        """Tamper with a published manifest *without* breaking its frame CRC
        (test/fault-injection helper): the inner checksum must catch it."""
        manifest = self.read_manifest(stream, generation, verify=False)
        # The checksum field rides along unchanged and no longer matches.
        tampered = replace(manifest, payload_length=manifest.payload_length + 1)
        self.backend.put(self._manifest_key(stream, generation), dumps_framed(tampered))
        self.mutations += 1

    def delete_generation(self, stream: str, generation: int) -> None:
        self.backend.delete(self._manifest_key(stream, generation))
        self.mutations += 1

    # ------------------------------------------------------------------ #
    # Named records (commit records and other small control data).
    # ------------------------------------------------------------------ #

    def put_record(self, name: str, obj: Any) -> None:
        blob = dumps_framed(obj)
        self.backend.put(self._record_key(name), blob)
        self.bytes_written += len(blob)

    def get_record(self, name: str) -> Any:
        return loads_framed(self.backend.get(self._record_key(name)))

    def has_record(self, name: str) -> bool:
        return self.backend.exists(self._record_key(name))

    # ------------------------------------------------------------------ #
    # Garbage collection.
    # ------------------------------------------------------------------ #

    def collect(
        self,
        pinned: Optional[int] = None,
        retention: Optional[RetentionPolicy] = None,
    ) -> int:
        """Apply retention to every stream, then sweep the chunks the
        deleted generations referenced.

        The sweep is *targeted*: only chunks named by the just-deleted
        manifests are checked against the live reference set, so per-wave
        GC cost scales with what was removed, not with store size.  Chunks
        orphaned without ever gaining a manifest (torn writes) are instead
        reclaimed by :meth:`sweep_orphans`, which the recovery driver runs
        off the hot path after a failed attempt.

        Returns the number of generation manifests removed (reclaimed
        chunks are not counted: they are storage internals, not
        checkpoint objects).
        """
        policy = retention or self.retention
        removed = 0
        candidates: set[str] = set()
        for stream in self.streams():
            gens = self.generations(stream)
            live = policy.live(gens, pinned=pinned)
            for generation in gens:
                if generation not in live:
                    try:
                        dead = self.read_manifest(stream, generation, verify=False)
                        candidates.update(
                            self._chunk_key(ref.digest, dead.codec)
                            for ref in dead.chunks
                        )
                    except StorageError:
                        pass  # unreadable manifest references nothing
                    self.delete_generation(stream, generation)
                    removed += 1
        if candidates:
            referenced = self._referenced_chunk_keys()
            for key in candidates - referenced:
                self.backend.delete(key)
        tr = self.tracer
        if tr is not None and removed:
            tr.emit("store", "gc", removed=removed, pinned=pinned)
        return removed

    def sweep_orphans(self) -> int:
        """Full mark-and-sweep: delete every chunk no manifest references.

        O(entire store); meant for off-hot-path moments — after a failed
        attempt (reclaiming a torn write's chunks) or administratively.
        """
        referenced = self._referenced_chunk_keys()
        swept = 0
        for key in self.backend.keys("objects/"):
            if key not in referenced:
                self.backend.delete(key)
                swept += 1
        tr = self.tracer
        if tr is not None and swept:
            tr.emit("store", "sweep_orphans", swept=swept)
        return swept

    def _referenced_chunk_keys(self) -> set[str]:
        referenced: set[str] = set()
        for stream in self.streams():
            for generation in self.generations(stream):
                try:
                    manifest = self.read_manifest(stream, generation, verify=False)
                except StorageError:
                    continue  # unreadable manifest references nothing
                referenced.update(
                    self._chunk_key(ref.digest, manifest.codec)
                    for ref in manifest.chunks
                )
        return referenced

    def wipe(self) -> None:
        self.backend.wipe()
        self.mutations += 1
