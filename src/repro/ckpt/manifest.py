"""Per-generation manifests: the unit of crash-consistent publication.

A generation (one rank's checkpoint of one epoch) becomes visible only
when its manifest exists and validates.  The manifest names every chunk
of the payload by content address and carries its own checksum over the
addressing data, so three failure modes are all detected at read time and
reported as storage errors rather than deserialised into garbage state:

* torn write — the crash happened before the manifest's atomic rename, so
  the manifest is simply absent and the previous generation is untouched;
* bit rot in a chunk — the chunk's digest no longer matches its address;
* bit rot (or tampering) in the manifest itself — the frame CRC or the
  manifest checksum fails (:class:`~repro.errors.ManifestCorruptError`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.errors import ManifestCorruptError


@dataclass(frozen=True)
class ChunkRef:
    """One chunk of a generation's payload."""

    digest: str         # content address of the decoded bytes
    length: int         # decoded size
    stored_length: int  # encoded size as written to the backend


@dataclass(frozen=True)
class GenerationManifest:
    """Index of one generation: which chunks, in which order, under which codec."""

    stream: str          # e.g. "rank0/state"
    generation: int      # the epoch this generation checkpoints
    codec: str
    chunk_size: int
    payload_length: int
    chunks: tuple[ChunkRef, ...]
    created_at: float = 0.0
    #: Chunk bytes this save actually wrote (0 for a fully-deduped save);
    #: observability only, excluded from the checksum.
    stored_bytes: int = 0
    reused_chunks: int = 0
    checksum: str = field(default="")

    # ------------------------------------------------------------------ #

    def _digest_material(self) -> bytes:
        parts = [
            self.stream,
            str(self.generation),
            self.codec,
            str(self.chunk_size),
            str(self.payload_length),
        ]
        parts.extend(
            f"{ref.digest}:{ref.length}:{ref.stored_length}" for ref in self.chunks
        )
        return "\n".join(parts).encode()

    def compute_checksum(self) -> str:
        return hashlib.sha256(self._digest_material()).hexdigest()

    def sealed(self) -> "GenerationManifest":
        """A copy with the checksum filled in (called once, at save time)."""
        return replace(self, checksum=self.compute_checksum())

    def verify(self) -> None:
        """Raise :class:`ManifestCorruptError` unless the checksum holds."""
        if not self.checksum or self.checksum != self.compute_checksum():
            raise ManifestCorruptError(
                f"manifest checksum mismatch for {self.stream!r} "
                f"generation {self.generation}"
            )

    # ------------------------------------------------------------------ #

    @property
    def logical_bytes(self) -> int:
        return self.payload_length

    def describe(self) -> str:
        return (
            f"gen(stream={self.stream}, g={self.generation}, codec={self.codec}, "
            f"chunks={len(self.chunks)}, reused={self.reused_chunks}, "
            f"logical={self.payload_length}B, stored={self.stored_bytes}B)"
        )
