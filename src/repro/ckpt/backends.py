"""Storage backends: where checkpoint bytes physically live.

A backend is a flat keyed blob namespace with atomic publication: ``put``
must expose either the whole new value or the previous one, never a torn
mixture.  The directory backend gets this from tmp-file + fsync + rename
(:func:`repro.util.serialization.atomic_write_bytes`); the memory backend
is trivially atomic (single assignment under the GIL).

Keys are ``/``-separated paths (``objects/ab/abcdef…``,
``manifests/rank0/state/gen00000003.mft``); the directory backend maps
them directly onto the filesystem.  The registry is open so experiments
can add tiers (e.g. a throttled "parallel filesystem" model for overhead
studies) via :func:`register_backend`.
"""

from __future__ import annotations

import os
from typing import Callable, Protocol

from repro.errors import ConfigError, StorageError
from repro.util.serialization import atomic_write_bytes


class Backend(Protocol):
    """Atomic keyed blob storage."""

    def put(self, key: str, data: bytes) -> None: ...

    def get(self, key: str) -> bytes: ...

    def exists(self, key: str) -> bool: ...

    def size(self, key: str) -> int: ...

    def delete(self, key: str) -> None: ...

    def keys(self, prefix: str = "") -> list[str]: ...

    def wipe(self) -> None: ...


class MemoryBackend:
    """In-process dict store for tests and fast benchmark cells."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        self._blobs[key] = bytes(data)

    def get(self, key: str) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise StorageError(f"missing stable-storage object {key!r}") from None

    def exists(self, key: str) -> bool:
        return key in self._blobs

    def size(self, key: str) -> int:
        return len(self.get(key))

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._blobs if k.startswith(prefix))

    def wipe(self) -> None:
        self._blobs.clear()


class DirectoryBackend:
    """One file per key under a root directory, published atomically."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, *key.split("/"))

    def put(self, key: str, data: bytes) -> None:
        atomic_write_bytes(self._path(key), data)

    def get(self, key: str) -> bytes:
        path = self._path(key)
        if not os.path.exists(path):
            raise StorageError(f"missing stable-storage object {key!r}")
        with open(path, "rb") as fh:
            return fh.read()

    def exists(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def size(self, key: str) -> int:
        path = self._path(key)
        if not os.path.exists(path):
            raise StorageError(f"missing stable-storage object {key!r}")
        return os.path.getsize(path)

    def delete(self, key: str) -> None:
        path = self._path(key)
        if os.path.exists(path):
            os.unlink(path)

    def keys(self, prefix: str = "") -> list[str]:
        # Walk only the subtree the prefix names: gc runs keys() many times
        # per commit and must not re-scan the whole store each time.
        prefix_dir, _sep, _leaf = prefix.rpartition("/")
        start = os.path.join(self.root, *prefix_dir.split("/")) if prefix_dir else self.root
        if not os.path.isdir(start):
            return []
        out = []
        for dirpath, _dirs, files in os.walk(start):
            for name in files:
                if ".tmp." in name:
                    continue  # in-flight atomic writes are not published keys
                full = os.path.join(dirpath, name)
                key = os.path.relpath(full, self.root).replace(os.sep, "/")
                if key.startswith(prefix):
                    out.append(key)
        return sorted(out)

    def wipe(self) -> None:
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                os.unlink(os.path.join(dirpath, name))


_REGISTRY: dict[str, Callable[..., Backend]] = {
    "memory": lambda path=None: MemoryBackend(),
    "directory": lambda path=None: DirectoryBackend(path),
}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = factory


def make_backend(name: str, path: str | None = None) -> Backend:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown checkpoint backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(path=path)


def list_backends() -> list[str]:
    return sorted(_REGISTRY)
