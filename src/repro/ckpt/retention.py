"""Retention policies: which generations survive garbage collection.

The paper assumes only the latest committed global checkpoint is kept
(``keep_last=1``, the default — matching the original flat store's GC).
Production checkpoint systems keep more: a window of recent generations
(so a corrupted newest generation still leaves a recovery point) and/or a
sparse archival trail (every Nth epoch, for post-mortem debugging and
restart-at-earlier-phase workflows).  Both knobs compose; the pinned
generation — the one the commit record names — is always retained
regardless of policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class RetentionPolicy:
    """``keep_last`` newest generations, plus every ``keep_every``-th epoch."""

    keep_last: int = 1
    keep_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise ConfigError(f"keep_last must be >= 1, got {self.keep_last}")
        if self.keep_every is not None and self.keep_every < 1:
            raise ConfigError(f"keep_every must be >= 1, got {self.keep_every}")

    def live(
        self, generations: Sequence[int], pinned: Optional[int] = None
    ) -> set[int]:
        """The subset of ``generations`` this policy retains."""
        ordered = sorted(set(generations))
        keep = set(ordered[-self.keep_last :]) if ordered else set()
        if self.keep_every is not None:
            keep.update(g for g in ordered if g % self.keep_every == 0)
        if pinned is not None:
            keep.add(pinned)
        return keep
