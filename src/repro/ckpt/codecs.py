"""Compression codecs for checkpoint chunks.

A codec transforms one chunk's bytes on the way to the backend and back.
The registry is open: experiments can plug in alternative compressors
(e.g. a numpy-aware delta filter) with :func:`register_chunk_codec` without
touching the store.  The stdlib provides two real compressors out of the
box — ``zlib`` (fast, moderate ratio; the paper-era default for
application-level checkpoint systems) and ``lzma`` (slow, strong ratio;
for archival tiers) — plus the identity codec ``none`` for hot paths where
serialisation dominates and compression would only add latency.

Chunk digests are computed over the *decoded* bytes, but chunks are keyed
per codec in the backend: a store re-opened with a different codec starts
a fresh dedup namespace (and can still read every generation written under
the old codec — each manifest remembers its own).
"""

from __future__ import annotations

import lzma
import zlib
from typing import Callable, Protocol

from repro.errors import ConfigError


class ChunkCodec(Protocol):
    """Byte-transform applied to each chunk before it reaches a backend."""

    name: str

    def encode(self, data: bytes) -> bytes: ...

    def decode(self, data: bytes) -> bytes: ...


class NullCodec:
    """Identity transform (the default: no CPU spent, no bytes saved)."""

    name = "none"

    def encode(self, data: bytes) -> bytes:
        return data

    def decode(self, data: bytes) -> bytes:
        return data


class ZlibCodec:
    """DEFLATE compression; level 6 balances ratio against checkpoint latency."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decode(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class LzmaCodec:
    """LZMA compression; preset 1 keeps the checkpoint path tolerable."""

    name = "lzma"

    def __init__(self, preset: int = 1) -> None:
        self.preset = preset

    def encode(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decode(self, data: bytes) -> bytes:
        return lzma.decompress(data)


_REGISTRY: dict[str, Callable[[], ChunkCodec]] = {
    "none": NullCodec,
    "zlib": ZlibCodec,
    "lzma": LzmaCodec,
}


def register_chunk_codec(name: str, factory: Callable[[], ChunkCodec]) -> None:
    """Register (or replace) a codec under ``name``."""
    _REGISTRY[name] = factory


def get_chunk_codec(name: str) -> ChunkCodec:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown checkpoint codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def list_chunk_codecs() -> list[str]:
    return sorted(_REGISTRY)
